"""CLI tests (driving ``repro.cli.main`` in-process)."""

import pytest

from repro.cli import main


SCALE = ["--scale", "0.01"]


class TestGenTraceAndStats:
    def test_gen_trace_writes_files(self, tmp_path, capsys):
        out = tmp_path / "trace"
        assert main(["gen-trace", str(out), "--scale", "0.01"]) == 0
        assert (tmp_path / "trace.apps.csv").exists()
        assert "applications" in capsys.readouterr().out

    def test_stats_prints_table(self, capsys):
        assert main(["stats", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "total applications" in out
        assert "anti-affinity" in out

    def test_stats_from_saved_trace(self, tmp_path, capsys):
        out = tmp_path / "t"
        main(["gen-trace", str(out), "--scale", "0.01"])
        assert main(["stats", "--load", str(out)]) == 0
        assert "total containers" in capsys.readouterr().out


class TestReplay:
    def test_replay_selected_schedulers(self, capsys):
        rc = main(["replay", *SCALE, "--schedulers", "Aladdin",
                   "--pool-factor", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Aladdin(16)+IL+DL" in out

    def test_replay_unknown_scheduler(self, capsys):
        rc = main(["replay", *SCALE, "--schedulers", "NotAScheduler"])
        assert rc == 2
        assert "unknown schedulers" in capsys.readouterr().err

    def test_replay_order_choice_validated(self):
        with pytest.raises(SystemExit):
            main(["replay", *SCALE, "--order", "bogus"])


class TestMinCluster:
    def test_min_cluster_runs(self, capsys):
        rc = main(["min-cluster", *SCALE, "--schedulers", "Aladdin"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "machines used" in out


class TestOnline:
    def test_online_runs(self, capsys):
        rc = main(["online", *SCALE, "--ticks", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "running containers over time" in out
        assert "peak machines" in out

    def test_online_unknown_scheduler(self, capsys):
        rc = main(["online", *SCALE, "--scheduler", "nope"])
        assert rc == 2


class TestFaults:
    def test_faults_runs(self, capsys):
        rc = main(["faults", *SCALE, "--failures", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "displaced" in out
        assert "violations after recovery: 0" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
