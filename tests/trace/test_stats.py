"""Workload statistics (Fig. 8) tests."""

from repro.cluster.container import Application
from repro.trace.schema import Trace, TraceConfig
from repro.trace.stats import container_count_cdf, workload_stats


def tiny_trace():
    apps = [
        Application(0, 1, 1.0, 2.0),
        Application(1, 1, 2.0, 4.0, anti_affinity_within=False,
                    conflicts=frozenset({2})),
        Application(2, 10, 4.0, 8.0, priority=1, anti_affinity_within=True,
                    conflicts=frozenset({1})),
        Application(3, 60, 1.0, 2.0),
    ]
    return Trace(config=TraceConfig(scale=0.01), applications=apps)


class TestStats:
    def test_counts(self):
        s = workload_stats(tiny_trace())
        assert s.n_apps == 4
        assert s.n_containers == 72
        assert s.n_anti_affinity_apps == 2
        assert s.n_priority_apps == 1

    def test_fractions(self):
        s = workload_stats(tiny_trace())
        assert s.frac_single_instance == 0.5
        assert s.frac_lt_50_containers == 0.75

    def test_weighted_mean_cpu(self):
        s = workload_stats(tiny_trace())
        expected = (1 + 2 + 10 * 4 + 60 * 1) / 72
        assert abs(s.mean_cpu_demand - expected) < 1e-9

    def test_degree(self):
        s = workload_stats(tiny_trace())
        # app 2: within (9 siblings) + app 1 (1 container) = 10
        assert s.max_anti_affinity_degree == 10

    def test_as_rows_complete(self):
        rows = workload_stats(tiny_trace()).as_rows()
        names = [r[0] for r in rows]
        assert "total applications" in names
        assert len(rows) == 11


class TestCdf:
    def test_cdf_monotone_and_bounded(self):
        cdf = container_count_cdf(tiny_trace())
        values = [v for _, v in cdf]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_cdf_at_explicit_points(self):
        cdf = dict(container_count_cdf(tiny_trace(), points=[1, 10, 60]))
        assert cdf[1] == 0.5
        assert cdf[10] == 0.75
        assert cdf[60] == 1.0
