"""Arrival ordering (CHP/CLP/CLA/CSA) tests."""

import pytest

from repro.trace import ArrivalOrder, generate_trace, order_containers
from repro.trace.arrival import anti_affinity_degree, order_applications


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=1)


class TestOrderings:
    @pytest.mark.parametrize("order", list(ArrivalOrder))
    def test_every_order_is_a_permutation(self, trace, order):
        containers = order_containers(trace, order)
        assert len(containers) == trace.n_containers
        assert {c.container_id for c in containers} == {
            c.container_id for c in trace.containers
        }

    @pytest.mark.parametrize("order", list(ArrivalOrder))
    def test_app_blocks_stay_contiguous(self, trace, order):
        containers = order_containers(trace, order)
        seen = set()
        current = None
        for c in containers:
            if c.app_id != current:
                assert c.app_id not in seen, "app block split"
                seen.add(c.app_id)
                current = c.app_id

    def test_chp_descending_priority(self, trace):
        apps = order_applications(trace, ArrivalOrder.CHP)
        priorities = [a.priority for a in apps]
        assert priorities == sorted(priorities, reverse=True)

    def test_clp_ascending_priority(self, trace):
        apps = order_applications(trace, ArrivalOrder.CLP)
        priorities = [a.priority for a in apps]
        assert priorities == sorted(priorities)

    def test_cla_descending_degree(self, trace):
        apps = order_applications(trace, ArrivalOrder.CLA)
        degrees = [anti_affinity_degree(a, trace) for a in apps]
        assert degrees == sorted(degrees, reverse=True)

    def test_csa_ascending_degree(self, trace):
        apps = order_applications(trace, ArrivalOrder.CSA)
        degrees = [anti_affinity_degree(a, trace) for a in apps]
        assert degrees == sorted(degrees)

    def test_trace_order_is_identity(self, trace):
        apps = order_applications(trace, ArrivalOrder.TRACE)
        assert [a.app_id for a in apps] == list(range(trace.n_apps))

    def test_orderings_are_stable(self, trace):
        """Equal keys preserve trace order (deterministic replays)."""
        apps = order_applications(trace, ArrivalOrder.CLP)
        zero = [a.app_id for a in apps if a.priority == 0]
        assert zero == sorted(zero)


class TestDegree:
    def test_within_counts_siblings(self, trace):
        for a in trace.applications:
            if a.anti_affinity_within and not a.conflicts:
                assert anti_affinity_degree(a, trace) == a.n_containers - 1
                break
        else:
            pytest.skip("no within-only app in this trace")

    def test_cross_counts_partner_containers(self, trace):
        for a in trace.applications:
            if a.conflicts and not a.anti_affinity_within:
                expected = sum(
                    trace.app(b).n_containers for b in a.conflicts
                )
                assert anti_affinity_degree(a, trace) == expected
                break
        else:
            pytest.skip("no cross-only app in this trace")
