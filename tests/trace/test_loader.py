"""CSV round-trip tests."""

import pytest

from repro.trace import generate_trace, load_trace, save_trace, workload_stats


class TestRoundTrip:
    def test_trace_survives_roundtrip(self, tmp_path):
        original = generate_trace(scale=0.02, seed=5)
        save_trace(original, tmp_path / "trace")
        loaded = load_trace(tmp_path / "trace")
        assert loaded.n_apps == original.n_apps
        assert loaded.n_containers == original.n_containers
        for a, b in zip(original.applications, loaded.applications):
            assert (a.app_id, a.n_containers, a.cpu, a.mem_gb) == (
                b.app_id,
                b.n_containers,
                b.cpu,
                b.mem_gb,
            )
            assert a.priority == b.priority
            assert a.anti_affinity_within == b.anti_affinity_within
            assert a.conflicts == b.conflicts

    def test_stats_identical_after_roundtrip(self, tmp_path):
        original = generate_trace(scale=0.02, seed=5)
        save_trace(original, tmp_path / "t")
        loaded = load_trace(tmp_path / "t")
        assert workload_stats(loaded) == workload_stats(original)

    def test_save_returns_both_paths(self, tmp_path):
        trace = generate_trace(scale=0.02, seed=0)
        apps_path, conflicts_path = save_trace(trace, tmp_path / "x")
        assert apps_path.exists() and conflicts_path.exists()
        assert apps_path.suffix == ".csv"

    def test_load_rejects_sparse_ids(self, tmp_path):
        trace = generate_trace(scale=0.02, seed=0)
        apps_path, _ = save_trace(trace, tmp_path / "bad")
        lines = apps_path.read_text().splitlines()
        del lines[1]  # drop app 0
        apps_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="dense"):
            load_trace(tmp_path / "bad")


class TestEdgeCases:
    def _saved(self, tmp_path):
        trace = generate_trace(scale=0.02, seed=1)
        apps_path, conflicts_path = save_trace(trace, tmp_path / "t")
        return trace, apps_path, conflicts_path

    def test_truncated_app_row_names_its_line(self, tmp_path):
        _, apps_path, _ = self._saved(tmp_path)
        lines = apps_path.read_text().splitlines()
        lines[3] = lines[3].split(",")[0]  # keep only app_id
        apps_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"\.apps\.csv:4: truncated"):
            load_trace(tmp_path / "t")

    def test_garbled_app_row_names_its_line(self, tmp_path):
        _, apps_path, _ = self._saved(tmp_path)
        lines = apps_path.read_text().splitlines()
        parts = lines[5].split(",")
        parts[2] = "many"  # cpu column
        lines[5] = ",".join(parts)
        apps_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"\.apps\.csv:6"):
            load_trace(tmp_path / "t")

    def test_garbled_conflict_row_names_its_line(self, tmp_path):
        _, _, conflicts_path = self._saved(tmp_path)
        with conflicts_path.open("a") as fh:
            fh.write("7,oops\n")
        with pytest.raises(ValueError, match=r"\.conflicts\.csv.*garbled"):
            load_trace(tmp_path / "t")

    def test_empty_trace_rejected(self, tmp_path):
        _, apps_path, _ = self._saved(tmp_path)
        header = apps_path.read_text().splitlines()[0]
        apps_path.write_text(header + "\n")
        with pytest.raises(ValueError, match="empty trace"):
            load_trace(tmp_path / "t")

    def test_out_of_order_rows_are_sorted(self, tmp_path):
        original, apps_path, _ = self._saved(tmp_path)
        lines = apps_path.read_text().splitlines()
        header, rows = lines[0], lines[1:]
        apps_path.write_text("\n".join([header] + rows[::-1]) + "\n")
        loaded = load_trace(tmp_path / "t")
        assert [a.app_id for a in loaded.applications] == list(
            range(original.n_apps)
        )
        assert loaded.applications == original.applications

    def test_config_attached_verbatim(self, tmp_path):
        from repro.trace import TraceConfig

        original, _, _ = self._saved(tmp_path)
        loaded = load_trace(
            tmp_path / "t", config=TraceConfig(scale=0.02, seed=1)
        )
        assert loaded.config == original.config
        assert loaded.config.n_machines == original.config.n_machines


class TestExtendedFields:
    def test_scope_and_affinities_roundtrip(self, tmp_path):
        from repro.cluster.container import Application
        from repro.trace.schema import Trace, TraceConfig

        apps = [
            Application(0, 2, 4.0, 8.0, anti_affinity_within=True,
                        anti_affinity_scope="rack"),
            Application(1, 1, 2.0, 4.0, affinities=frozenset({0})),
        ]
        trace = Trace(config=TraceConfig(scale=0.01), applications=apps)
        save_trace(trace, tmp_path / "x")
        loaded = load_trace(tmp_path / "x")
        assert loaded.applications[0].anti_affinity_scope == "rack"
        assert loaded.applications[1].affinities == frozenset({0})
        assert loaded.constraints.affinities_of(1) == frozenset({0})
