"""Property-based tests for the trace generator.

The generator's calibration invariants must hold for *any* valid
configuration, not just the defaults the benchmarks use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import TraceConfig, generate_trace, workload_stats
from repro.trace.arrival import anti_affinity_degree


@st.composite
def configs(draw):
    return TraceConfig(
        scale=draw(st.sampled_from([0.005, 0.01, 0.02, 0.03])),
        seed=draw(st.integers(0, 50)),
        frac_single=draw(st.sampled_from([0.5, 0.64, 0.7])),
        frac_anti_affinity=draw(st.sampled_from([0.5, 0.72])),
        frac_priority=draw(st.sampled_from([0.1, 0.16, 0.3])),
        noisy_container_frac=draw(st.sampled_from([0.3, 0.45])),
        victim_container_frac=draw(st.sampled_from([0.15, 0.22])),
    )


@settings(max_examples=20, deadline=None)
@given(configs())
def test_container_total_always_pinned(config):
    trace = generate_trace(config)
    assert trace.n_containers == config.target_containers
    assert trace.n_apps == config.n_apps


@settings(max_examples=20, deadline=None)
@given(configs())
def test_constraint_counts_track_config(config):
    trace = generate_trace(config)
    stats = workload_stats(trace)
    expected_aa = round(config.frac_anti_affinity * config.n_apps)
    expected_prio = round(config.frac_priority * config.n_apps)
    assert abs(stats.n_anti_affinity_apps - expected_aa) <= max(
        2, 0.02 * config.n_apps
    )
    assert abs(stats.n_priority_apps - expected_prio) <= 2


@settings(max_examples=20, deadline=None)
@given(configs())
def test_demands_within_paper_bounds(config):
    trace = generate_trace(config)
    for app in trace.applications:
        assert 1.0 <= app.cpu <= 16.0
        assert app.mem_gb <= 32.0
        assert app.n_containers >= 1
        assert app.priority >= 0


@settings(max_examples=15, deadline=None)
@given(configs())
def test_total_demand_below_cluster_capacity(config):
    """A trace must be schedulable in principle on its nominal cluster."""
    trace = generate_trace(config)
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    assert total_cpu <= 32 * config.n_machines * 1.02


@settings(max_examples=15, deadline=None)
@given(configs())
def test_conflict_graph_symmetric_and_irreflexive(config):
    trace = generate_trace(config)
    for app in trace.applications:
        assert app.app_id not in app.conflicts
        for other in app.conflicts:
            assert app.app_id in trace.app(other).conflicts


@settings(max_examples=15, deadline=None)
@given(configs())
def test_within_aa_never_wider_than_cluster(config):
    """No within-AA app may need more machines than the cluster has —
    the generator must not produce structurally unschedulable traces."""
    trace = generate_trace(config)
    for app in trace.applications:
        if app.anti_affinity_within:
            assert app.n_containers <= config.n_machines
