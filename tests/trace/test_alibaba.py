"""Tests for the open-source Alibaba trace-format parser."""

import pytest

from repro.trace.alibaba import (
    CONTAINER_META_COLUMNS,
    load_alibaba_trace,
    load_container_meta,
)


def write_meta(tmp_path, rows, header=False):
    path = tmp_path / "container_meta.csv"
    lines = []
    if header:
        lines.append(",".join(CONTAINER_META_COLUMNS))
    for row in rows:
        lines.append(",".join(str(v) for v in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def meta_row(cid, machine, app_du, cpu_centi, mem_gb):
    return (cid, machine, 0, app_du, "started", cpu_centi, cpu_centi, mem_gb)


SAMPLE = [
    meta_row("c_1", "m_1", "app_a", 400, 8),
    meta_row("c_2", "m_2", "app_a", 400, 8),
    meta_row("c_3", "m_3", "app_a", 400, 8),
    meta_row("c_4", "m_1", "app_b", 800, 16),
    meta_row("c_5", "m_4", "app_c", 100, 2),
]


class TestLoadContainerMeta:
    def test_groups_by_app_du(self, tmp_path):
        apps = load_container_meta(write_meta(tmp_path, SAMPLE))
        assert [a.name for a in apps] == ["app_a", "app_b", "app_c"]
        assert [a.n_containers for a in apps] == [3, 1, 1]

    def test_centicores_converted(self, tmp_path):
        apps = load_container_meta(write_meta(tmp_path, SAMPLE))
        assert apps[0].cpu == 4.0
        assert apps[1].cpu == 8.0

    def test_header_autodetected(self, tmp_path):
        apps_no = load_container_meta(write_meta(tmp_path, SAMPLE))
        apps_yes = load_container_meta(write_meta(tmp_path, SAMPLE, header=True))
        assert [a.n_containers for a in apps_no] == [
            a.n_containers for a in apps_yes
        ]

    def test_demand_clipping(self, tmp_path):
        rows = [meta_row("c", "m", "big", 12800, 512)]
        apps = load_container_meta(write_meta(tmp_path, rows))
        assert apps[0].cpu == 16.0
        assert apps[0].mem_gb == 32.0

    def test_zero_requests_defaulted(self, tmp_path):
        rows = [meta_row("c", "m", "z", 0, 0)]
        apps = load_container_meta(write_meta(tmp_path, rows))
        assert apps[0].cpu == 1.0
        assert apps[0].mem_gb == 2.0

    def test_mode_demand_for_heterogeneous_rows(self, tmp_path):
        rows = [
            meta_row("c1", "m", "a", 400, 8),
            meta_row("c2", "m", "a", 400, 8),
            meta_row("c3", "m", "a", 800, 16),
        ]
        apps = load_container_meta(write_meta(tmp_path, rows))
        assert apps[0].cpu == 4.0  # the mode, per the IL assumption

    def test_malformed_row_rejected(self, tmp_path):
        rows = [("c", "m", 0, "a", "started", "not-a-number", 0, 8)]
        with pytest.raises(ValueError, match="malformed"):
            load_container_meta(write_meta(tmp_path, rows))

    def test_rows_without_app_du_skipped(self, tmp_path):
        rows = SAMPLE + [("c_9", "m", 0, "", "started", 100, 100, 2)]
        apps = load_container_meta(write_meta(tmp_path, rows))
        assert sum(a.n_containers for a in apps) == 5


class TestLoadAlibabaTrace:
    def test_without_synthesis_no_constraints(self, tmp_path):
        trace = load_alibaba_trace(
            write_meta(tmp_path, SAMPLE), synthesize_constraints=False
        )
        assert trace.n_containers == 5
        assert len(trace.constraints) == 0

    def test_with_synthesis_constraints_appear(self, tmp_path):
        # Enough apps for the ratios to bite.
        rows = []
        for i in range(40):
            for j in range(3):
                rows.append(meta_row(f"c{i}_{j}", "m", f"app_{i:02d}", 200, 4))
        trace = load_alibaba_trace(write_meta(tmp_path, rows))
        assert len(trace.constraints) > 0
        assert trace.n_apps == 40

    def test_synthesis_deterministic(self, tmp_path):
        rows = [
            meta_row(f"c{i}", "m", f"app_{i % 7}", 100, 2) for i in range(30)
        ]
        path = write_meta(tmp_path, rows)
        a = load_alibaba_trace(path, seed=3)
        b = load_alibaba_trace(path, seed=3)
        assert a.constraints.conflicting_pairs() == b.constraints.conflicting_pairs()

    def test_loaded_trace_schedules(self, tmp_path):
        from repro import AladdinScheduler, Simulator

        rows = []
        for i in range(20):
            for j in range(2):
                rows.append(meta_row(f"c{i}_{j}", "m", f"app_{i:02d}", 400, 8))
        trace = load_alibaba_trace(write_meta(tmp_path, rows))
        sim = Simulator(trace, n_machines=20)
        result = sim.run(AladdinScheduler())
        assert result.metrics.violation_pct <= 5.0
