"""Azure Functions front-end: parser golden/fuzz + fallback determinism."""

import numpy as np
import pytest

from repro.trace.azure import (
    DEFAULT_DURATION_MS,
    DEFAULT_MEMORY_MB,
    MINUTES_PER_DAY,
    AzureDataset,
    AzureFunction,
    AzureTraceError,
    azure_dataset,
    load_azure_dataset,
    load_durations,
    load_invocations,
    load_memory,
    synthetic_azure_dataset,
)

MINUTE_COLS = ",".join(str(m) for m in range(1, MINUTES_PER_DAY + 1))


def write_invocations(path, rows):
    """Rows: (owner, app, function, trigger, counts-list-or-string)."""
    lines = [f"HashOwner,HashApp,HashFunction,Trigger,{MINUTE_COLS}"]
    for owner, app, fn, trig, counts in rows:
        if isinstance(counts, str):
            tail = counts
        else:
            tail = ",".join(str(c) for c in counts)
        lines.append(f"{owner},{app},{fn},{trig},{tail}")
    path.write_text("\n".join(lines) + "\n")


def dataset_dir(tmp_path, day=1):
    """A minimal real-format dataset directory with two functions."""
    root = tmp_path / "azure"
    root.mkdir()
    counts_a = [0] * MINUTES_PER_DAY
    counts_a[0], counts_a[719], counts_a[1439] = 3, 7, 1
    counts_b = [1] * MINUTES_PER_DAY
    write_invocations(
        root / f"invocations_per_function_md.anon.d{day:02d}.csv",
        [
            ("o1", "a1", "f1", "http", counts_a),
            ("o1", "a1", "f2", "timer", counts_b),
        ],
    )
    (root / f"function_durations_percentiles.anon.d{day:02d}.csv").write_text(
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o1,a1,f1,250.5,11,1,900\n"
    )
    (root / f"app_memory_percentiles.anon.d{day:02d}.csv").write_text(
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
        "o1,a1,4,312.0\n"
    )
    return root


class TestRealParser:
    def test_golden_parse(self, tmp_path):
        ds = load_azure_dataset(dataset_dir(tmp_path))
        assert ds.n_functions == 2
        f1 = next(f for f in ds.functions if f.function == "f1")
        f2 = next(f for f in ds.functions if f.function == "f2")
        assert f1.trigger == "http" and f1.daily_invocations == 11
        assert f1.invocations[0] == 3 and f1.invocations[719] == 7
        assert f1.duration_ms == 250.5
        # memory joins at (owner, app) granularity -> both functions
        assert f1.memory_mb == 312.0 and f2.memory_mb == 312.0
        # f2 has no duration row -> published-median default
        assert f2.duration_ms == DEFAULT_DURATION_MS
        assert ds.source.startswith("azure-2019:")

    def test_duration_memory_files_optional(self, tmp_path):
        root = dataset_dir(tmp_path)
        (root / "function_durations_percentiles.anon.d01.csv").unlink()
        (root / "app_memory_percentiles.anon.d01.csv").unlink()
        ds = load_azure_dataset(root, cache=False)
        assert all(f.duration_ms == DEFAULT_DURATION_MS for f in ds.functions)
        assert all(f.memory_mb == DEFAULT_MEMORY_MB for f in ds.functions)

    def test_missing_invocations_file_raises(self, tmp_path):
        with pytest.raises(AzureTraceError, match="missing"):
            load_azure_dataset(tmp_path)

    def test_truncated_row_raises_with_line(self, tmp_path):
        root = dataset_dir(tmp_path)
        path = root / "invocations_per_function_md.anon.d01.csv"
        with path.open("a") as fh:
            fh.write("o2,a2,f3,queue,1,2,3\n")  # only 3 minute columns
        with pytest.raises(AzureTraceError, match=r":4: truncated"):
            load_invocations(path)

    def test_garbled_count_raises_with_context(self, tmp_path):
        root = tmp_path
        counts = ["1"] * MINUTES_PER_DAY
        counts[5] = "oops"
        path = root / "invocations_per_function_md.anon.d01.csv"
        write_invocations(path, [("o", "a", "f", "http", ",".join(counts))])
        with pytest.raises(AzureTraceError, match="garbled minute 6"):
            load_invocations(path)

    def test_negative_count_raises(self, tmp_path):
        counts = [0] * MINUTES_PER_DAY
        counts[3] = -2
        path = tmp_path / "inv.csv"
        write_invocations(path, [("o", "a", "f", "http", counts)])
        with pytest.raises(AzureTraceError, match="negative"):
            load_invocations(path)

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "inv.csv"
        write_invocations(path, [])
        with pytest.raises(AzureTraceError, match="empty trace"):
            load_invocations(path)

    def test_missing_header_column_raises(self, tmp_path):
        path = tmp_path / "inv.csv"
        path.write_text("HashOwner,HashApp,Trigger\no,a,http\n")
        with pytest.raises(AzureTraceError, match="header lacks"):
            load_invocations(path)

    def test_garbled_duration_and_memory(self, tmp_path):
        dur = tmp_path / "dur.csv"
        dur.write_text(
            "HashOwner,HashApp,HashFunction,Average\no,a,f,not-a-number\n"
        )
        with pytest.raises(AzureTraceError, match="garbled Average"):
            load_durations(dur)
        mem = tmp_path / "mem.csv"
        mem.write_text("HashOwner,HashApp,AverageAllocatedMb\no,a,-5\n")
        with pytest.raises(AzureTraceError, match="negative"):
            load_memory(mem)


class TestCache:
    def test_cache_roundtrip_identical(self, tmp_path):
        root = dataset_dir(tmp_path)
        cold = load_azure_dataset(root)  # writes azure_d01.cache.npz
        assert (root / "azure_d01.cache.npz").exists()
        warm = load_azure_dataset(root)
        assert warm.source == cold.source
        assert warm.n_functions == cold.n_functions
        for a, b in zip(cold.functions, warm.functions):
            assert (a.owner, a.app, a.function, a.trigger) == (
                b.owner, b.app, b.function, b.trigger
            )
            assert (a.invocations == b.invocations).all()
            assert (a.duration_ms, a.memory_mb) == (b.duration_ms, b.memory_mb)

    def test_corrupt_cache_falls_back_to_parse(self, tmp_path):
        root = dataset_dir(tmp_path)
        load_azure_dataset(root)
        (root / "azure_d01.cache.npz").write_bytes(b"not an npz")
        ds = load_azure_dataset(root)
        assert ds.n_functions == 2

    def test_cache_disabled_leaves_no_file(self, tmp_path):
        root = dataset_dir(tmp_path)
        load_azure_dataset(root, cache=False)
        assert not (root / "azure_d01.cache.npz").exists()


class TestFallback:
    def test_deterministic_across_calls(self):
        a = synthetic_azure_dataset(seed=7, n_functions=60)
        b = synthetic_azure_dataset(seed=7, n_functions=60)
        for fa, fb in zip(a.functions, b.functions):
            assert fa.function == fb.function
            assert (fa.invocations == fb.invocations).all()
            assert fa.duration_ms == fb.duration_ms
            assert fa.memory_mb == fb.memory_mb

    @pytest.mark.parametrize("seed", range(5))
    def test_seeds_differ_and_self_agree(self, seed):
        first = synthetic_azure_dataset(seed=seed, n_functions=40)
        again = synthetic_azure_dataset(seed=seed, n_functions=40)
        other = synthetic_azure_dataset(seed=seed + 100, n_functions=40)
        assert np.array_equal(first.minute_curve(), again.minute_curve())
        assert not np.array_equal(first.minute_curve(), other.minute_curve())

    def test_published_distribution_shape(self):
        ds = synthetic_azure_dataset(seed=0, n_functions=400)
        triggers = [f.trigger for f in ds.functions]
        # HTTP dominates the trigger mix (ATC '20 Fig. 2).
        assert triggers.count("http") > triggers.count("timer") > 0
        daily = np.array([f.daily_invocations for f in ds.functions])
        # Heavy tail: the busiest function dwarfs the median.
        assert daily.max() > 50 * max(1, np.median(daily))
        durations = np.array([f.duration_ms for f in ds.functions])
        memory = np.array([f.memory_mb for f in ds.functions])
        assert (durations >= 1.0).all() and (durations <= 600_000.0).all()
        assert (memory >= 64.0).all() and (memory <= 1536.0).all()

    def test_diurnal_curve_has_peak_and_trough(self):
        ds = synthetic_azure_dataset(seed=1, n_functions=300)
        non_timer = [f for f in ds.functions if f.trigger != "timer"]
        curve = np.sum([f.invocations for f in non_timer], axis=0)
        # Smooth the minute noise into hourly means before comparing.
        hourly = curve.reshape(24, 60).mean(axis=1)
        assert hourly.max() > 1.5 * hourly.min()

    def test_timer_functions_fire_periodically(self):
        ds = synthetic_azure_dataset(seed=2, n_functions=200)
        timers = [f for f in ds.functions if f.trigger == "timer"]
        assert timers
        for f in timers:
            fired = np.flatnonzero(f.invocations)
            if fired.size > 1:
                gaps = np.diff(fired)
                assert (gaps == gaps[0]).all()  # metronomic

    def test_n_functions_validated(self):
        with pytest.raises(AzureTraceError):
            synthetic_azure_dataset(seed=0, n_functions=0)


class TestDispatcher:
    def test_none_selects_fallback(self):
        ds = azure_dataset(None, seed=3, n_functions=12)
        assert ds.source == "synthetic-fallback:seed=3"
        assert ds.n_functions == 12

    def test_path_without_csvs_raises(self, tmp_path):
        # A typo'd path must not silently fake a real-trace run.
        with pytest.raises(AzureTraceError):
            azure_dataset(tmp_path)

    def test_path_selects_real_data(self, tmp_path):
        ds = azure_dataset(dataset_dir(tmp_path))
        assert ds.source.startswith("azure-2019:")


class TestDatasetModel:
    def test_wrong_minute_shape_rejected(self):
        fn = AzureFunction(
            owner="o", app="a", function="f", trigger="http",
            invocations=np.ones(10, dtype=np.int64),
            duration_ms=100.0, memory_mb=128.0,
        )
        with pytest.raises(AzureTraceError, match="minute bins"):
            AzureDataset(functions=[fn])

    def test_minute_curve_and_top_functions(self):
        ds = synthetic_azure_dataset(seed=0, n_functions=30)
        assert ds.minute_curve().shape == (MINUTES_PER_DAY,)
        assert ds.minute_curve().sum() == ds.total_invocations
        top = ds.top_functions(5)
        assert len(top) == 5
        assert top[0].daily_invocations >= top[-1].daily_invocations

    def test_empty_dataset_curve(self):
        assert AzureDataset(functions=[]).minute_curve().sum() == 0
