"""Scenario families: build determinism, name-encoded schedules, replay."""

import numpy as np
import pytest

from repro.sim.online import OnlineConfig, OnlineSimulator, arrival_schedule
from repro.trace import (
    SCENARIOS,
    TraceConfig,
    build_scenario,
    generate_trace,
    load_trace,
    save_trace,
    scenario_config,
)
from repro.trace.scenarios import ScenarioConfig, decode_arrival

#: small-but-nontrivial build used across the module
TINY = dict(scale=0.008, seed=0, ticks=16, n_functions=64,
            lla_lifetime=(8, 24))


def tiny(name, **overrides):
    kw = dict(TINY)
    kw.update(overrides)
    return build_scenario(name, **kw)


class TestScenarioConfig:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_config("flashcrowd")
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioConfig(name="flashcrowd")

    def test_family_defaults_applied(self):
        assert scenario_config("churn-storm").force_lifetime == 1
        assert scenario_config("mixed-lla").lla_share == 0.5
        burst = scenario_config("burst", ticks=20)
        assert burst.burst_factor > 1.0
        assert burst.burst_ticks == (10, 11)

    def test_overrides_win(self):
        cfg = scenario_config("churn-storm", force_lifetime=2, scale=0.01)
        assert cfg.force_lifetime == 2 and cfg.scale == 0.01

    @pytest.mark.parametrize(
        "bad",
        [
            {"ticks": 1},
            {"peak_load": 0.0},
            {"peak_load": 1.5},
            {"lla_lifetime": (0, 5)},
            {"lla_arrival_span": 0.0},
            {"force_lifetime": 0},
            {"burst_ticks": (99,)},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ScenarioConfig(name="diurnal", **bad)


class TestBuild:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_family_builds(self, name):
        trace = tiny(name)
        assert trace.n_apps > 0 and trace.n_containers > 0
        assert trace.config == TraceConfig(scale=0.008, seed=0)
        # Mixed population: constrained LLAs plus short-lived functions.
        assert any(a.name.startswith("lla-") for a in trace.applications)
        assert any(a.name.startswith("fn-") for a in trace.applications)
        assert any(a.conflicts or a.anti_affinity_within
                   for a in trace.applications)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_build_is_deterministic(self, name):
        assert tiny(name).applications == tiny(name).applications

    def test_seeds_differ(self):
        a = tiny("diurnal")
        b = tiny("diurnal", seed=1)
        assert a.applications != b.applications

    def test_every_name_decodes(self):
        trace = tiny("diurnal")
        for app in trace.applications:
            t, life = decode_arrival(app.name)
            assert 0 <= t < 16 + 1
            assert life >= 1

    def test_churn_storm_forces_one_tick_lifetimes(self):
        trace = tiny("churn-storm")
        for app in trace.applications:
            if app.name.startswith("fn-"):
                assert decode_arrival(app.name)[1] == 1

    def test_burst_amplifies_its_window(self):
        plain = tiny("diurnal")
        burst = tiny("burst", burst_ticks=(8, 9), burst_factor=6.0)

        def arrivals_at(trace, ticks):
            return sum(
                a.n_containers for a in trace.applications
                if a.name.startswith("fn-")
                and decode_arrival(a.name)[0] in ticks
            )

        # Same divisor story is impossible to pin exactly (calibration
        # re-normalises), so compare the burst window's share of total.
        def share(trace):
            total = arrivals_at(trace, range(16))
            return arrivals_at(trace, {8, 9}) / total if total else 0.0

        assert share(burst) > 2.0 * share(plain)

    def test_peak_load_calibration(self):
        cfg = scenario_config("diurnal", **TINY)
        trace = build_scenario(cfg)
        capacity = 32.0 * trace.config.n_machines
        # Stack every app over its encoded lifetime: peak concurrent
        # demand must respect the calibration budget (with rounding
        # slack) and be a substantial share of it.
        horizon = max(decode_arrival(a.name)[0] + decode_arrival(a.name)[1]
                      for a in trace.applications) + 1
        curve = np.zeros(horizon)
        for a in trace.applications:
            t, life = decode_arrival(a.name)
            curve[t:t + life] += a.n_containers * a.cpu
        assert curve.max() <= 1.25 * cfg.peak_load * capacity
        assert curve.max() >= 0.25 * cfg.peak_load * capacity

    def test_max_block_caps_batches(self):
        trace = tiny("diurnal", max_block=64)
        assert all(
            a.n_containers <= 64 for a in trace.applications
            if a.name.startswith("fn-")
        )

    def test_config_or_overrides_not_both(self):
        cfg = scenario_config("diurnal")
        with pytest.raises(TypeError):
            build_scenario(cfg, scale=0.01)

    def test_empty_dataset_rejected(self):
        from repro.trace.azure import AzureDataset

        with pytest.raises(ValueError, match="empty dataset"):
            build_scenario("diurnal", AzureDataset(functions=[]))


class TestSchedule:
    def test_schedule_decodes_names(self):
        trace = tiny("diurnal")
        cfg = OnlineConfig(seed=0, scenario="diurnal")
        sched = arrival_schedule(trace, cfg)
        assert (np.diff(sched.arrival_tick) >= 0).all()
        assert set(sched.life_of) == {a.app_id for a in trace.applications}
        expected_horizon = max(
            decode_arrival(a.name)[0] + decode_arrival(a.name)[1]
            for a in trace.applications
        ) + 1
        assert sched.horizon == expected_horizon

    def test_non_scenario_trace_rejected(self):
        trace = generate_trace(scale=0.01, seed=0)
        cfg = OnlineConfig(seed=0, scenario="diurnal")
        with pytest.raises(ValueError, match="scenario suffix"):
            arrival_schedule(trace, cfg)

    def test_schedule_survives_csv_roundtrip(self, tmp_path):
        trace = tiny("mixed-lla")
        cfg = OnlineConfig(seed=0, scenario="mixed-lla")
        save_trace(trace, tmp_path / "mix")
        loaded = load_trace(tmp_path / "mix", config=trace.config)
        a = arrival_schedule(trace, cfg)
        b = arrival_schedule(loaded, cfg)
        assert (a.arrival_tick == b.arrival_tick).all()
        assert a.life_of == b.life_of and a.horizon == b.horizon


class TestOnlineRun:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_runs_end_to_end_and_drains(self, name):
        from repro.core import AladdinScheduler

        trace = tiny(name)
        cfg = OnlineConfig(seed=0, scenario=name)
        result = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        assert result.total_arrived > 0
        # Short-lived containers must actually depart: every placed
        # container leaves by the horizon.
        assert result.total_departed == result.total_arrived
        assert result.samples[-1].running_containers == 0
        assert result.failure_rate < 0.02

    def test_same_seed_byte_identical(self):
        from repro.core import AladdinScheduler

        trace = tiny("diurnal")
        cfg = OnlineConfig(seed=0, scenario="diurnal")
        one = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        two = OnlineSimulator(
            tiny("diurnal"), cfg
        ).run(AladdinScheduler())
        assert one.canonical_json() == two.canonical_json()

    def test_fingerprint_names_the_scenario(self):
        from repro.core import AladdinScheduler

        trace = tiny("burst")
        sim = OnlineSimulator(trace, OnlineConfig(seed=0, scenario="burst"))
        fp = sim._fingerprint(AladdinScheduler())
        assert fp["scenario"] == "burst"

    def test_cli_online_azure_scenario(self, capsys):
        from repro.cli import main

        rc = main([
            "online", "--trace", "azure", "--scenario", "diurnal",
            "--scale", "0.006", "--ticks", "10", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "workload: azure scenario=diurnal" in out

    def test_cli_scenario_requires_azure(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["online", "--scenario", "diurnal"])
