"""Trace generator calibration tests (the Fig. 8 statistics)."""

import numpy as np
import pytest

from repro.trace import TraceConfig, generate_trace, workload_stats
from repro.trace.arrival import anti_affinity_degree


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.05, seed=0)


@pytest.fixture(scope="module")
def stats(trace):
    return workload_stats(trace)


class TestHeadlineCounts:
    def test_app_count_scales(self, trace):
        assert trace.n_apps == round(13056 * 0.05)

    def test_container_total_pinned(self, trace):
        assert trace.n_containers == round(100_000 * 0.05)

    def test_anti_affinity_count(self, stats, trace):
        expected = round(9400 / 13056 * trace.n_apps)
        assert abs(stats.n_anti_affinity_apps - expected) <= 2

    def test_priority_count(self, stats, trace):
        expected = round(2088 / 13056 * trace.n_apps)
        assert abs(stats.n_priority_apps - expected) <= 2

    def test_single_instance_fraction(self, stats):
        assert 0.55 <= stats.frac_single_instance <= 0.70

    def test_most_apps_below_50_containers(self, stats):
        assert stats.frac_lt_50_containers >= 0.85

    def test_max_demand_caps(self, stats):
        assert stats.max_cpu_demand <= 16.0
        assert stats.max_mem_demand_gb <= 32.0

    def test_heavy_conflictors_present(self, trace, stats):
        """Several LLAs conflict with >= the scaled 5,000 containers."""
        target = trace.config.big_conflict_coverage
        heavy = [
            a
            for a in trace.applications
            if anti_affinity_degree(a, trace) >= target
        ]
        assert len(heavy) >= 3

    def test_giant_app_in_tail(self, stats, trace):
        """A few LLAs at the scaled equivalent of >2,000 containers."""
        assert stats.max_containers_per_app >= round(2000 * trace.config.scale)


class TestDeterminismAndScaling:
    def test_same_seed_same_trace(self):
        a = generate_trace(scale=0.02, seed=3)
        b = generate_trace(scale=0.02, seed=3)
        assert [x.n_containers for x in a.applications] == [
            x.n_containers for x in b.applications
        ]
        assert a.constraints.conflicting_pairs() == b.constraints.conflicting_pairs()

    def test_different_seed_different_trace(self):
        a = generate_trace(scale=0.02, seed=3)
        b = generate_trace(scale=0.02, seed=4)
        assert [x.n_containers for x in a.applications] != [
            x.n_containers for x in b.applications
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_demand_calibration_across_seeds(self, seed):
        """Total demand stays near the target share of the cluster."""
        tr = generate_trace(scale=0.05, seed=seed)
        total_cpu = sum(a.cpu * a.n_containers for a in tr.applications)
        cluster_cpu = tr.config.n_machines * 32
        assert 0.80 <= total_cpu / cluster_cpu <= 1.0

    def test_config_overrides(self):
        tr = generate_trace(scale=0.02, seed=0, frac_priority=0.5)
        stats = workload_stats(tr)
        assert stats.n_priority_apps == round(0.5 * tr.n_apps)

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(TypeError):
            generate_trace(TraceConfig(), scale=0.5)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(scale=0.0),
            dict(scale=1.5),
            dict(frac_single=1.2),
            dict(cpu_probs=(1.0,)),
            dict(priority_classes=((1, 0.5),)),
        ],
    )
    def test_rejects_invalid(self, kw):
        with pytest.raises(ValueError):
            TraceConfig(**kw)

    def test_derived_quantities(self):
        cfg = TraceConfig(scale=0.1)
        assert cfg.n_apps == 1306
        assert cfg.target_containers == 10_000
        assert cfg.n_machines == 1000
        assert cfg.big_conflict_coverage == 500


class TestInterferenceStructure:
    def test_noisy_pool_mass(self, trace):
        noisy = [
            a
            for a in trace.applications
            if a.cpu == 1.0 and a.has_anti_affinity and not a.anti_affinity_within
            and a.n_containers >= 2
        ]
        mass = sum(a.n_containers for a in noisy) / trace.n_containers
        assert mass >= 0.25

    def test_victims_have_large_demands(self, trace):
        """Apps conflicting with much of the pool demand >= 8 CPUs."""
        victims = [
            a
            for a in trace.applications
            if len(a.conflicts) >= 20 and a.cpu >= 8.0
        ]
        assert victims, "expected large-demand victim apps"

    def test_conflicts_are_symmetric(self, trace):
        for a in trace.applications:
            for b in a.conflicts:
                assert a.app_id in trace.app(b).conflicts
