"""Differential harness: engine variants under identical online churn.

The cross-round feasibility cache (:mod:`repro.core.feascache`) and the
batched placement kernel (:mod:`repro.core.batchkernel` over the
:mod:`repro.core.machindex` order) both claim to be pure optimisations:
for every query they return exactly what the from-scratch computation —
``state.feasible_mask``, the per-container packed-first walk — would
have produced.  This harness puts the claims under load.  Each replay
drives *multiple instances of the same engine* — cached vs cold,
batched vs per-container loop, parallel (rack-sharded worker
processes, :mod:`repro.core.parallel`) vs serial, and the full
product of those axes —
through an identical randomized churn stream of arrivals, departures,
machine failures and repairs (with the scheduler's own rescue
migrations and preemptions firing along the way), and asserts after
every tick that

* the scheduling round produced identical placements and identical
  failure verdicts,
* the two cluster states are indistinguishable (assignments and
  remaining capacity), and
* the optimised run actually exercised its optimisation (cache
  hit-rate > 0, kernel placements > 0), so the equivalence is not
  vacuous.

The replay logic never branches on engine output (all randomness comes
from one seeded generator), so any divergence is attributable to the
variant under test alone.
"""

import numpy as np
import pytest

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler, FlowPathSearch
from repro.sim.faults import fail_machines, repair_machines
from repro.telemetry import SchedulerTelemetry


def track_telemetry(engine):
    """Accumulate every round's counters on ``engine.total_telemetry``.

    ``churn_replay`` discards per-round results, but the rescue axis
    asserts *decision counters* (attempts, migrations, preemptions,
    machines scanned) stay bit-identical across variants — so wrap the
    engine's ``schedule`` to merge each round's telemetry first.
    """
    total = SchedulerTelemetry()
    original = engine.schedule

    def schedule(batch, state):
        result = original(batch, state)
        if result.telemetry is not None:
            total.merge(result.telemetry)
        return result

    engine.schedule = schedule
    engine.total_telemetry = total
    return engine


def random_apps(rng, n_apps):
    """A churn-shaped workload: mixed constrained/unconstrained apps.

    Demands are drawn from a small set so that unconstrained apps of
    equal shape recur — the signature sharing the cross-round cache
    feeds on.  Within-rules mix machine and rack scope to exercise the
    rack-widening invalidation path.
    """
    apps = []
    for i in range(n_apps):
        conflicts = frozenset(
            j for j in range(i) if rng.random() < 0.06
        )
        apps.append(
            Application(
                app_id=i,
                n_containers=int(rng.integers(1, 5)),
                cpu=float(rng.choice([1.0, 2.0, 4.0, 8.0])),
                mem_gb=float(rng.choice([2.0, 4.0, 8.0, 16.0])),
                priority=int(rng.integers(0, 3)),
                anti_affinity_within=bool(rng.random() < 0.35),
                anti_affinity_scope="rack" if rng.random() < 0.25 else "machine",
                conflicts=conflicts,
            )
        )
    return apps


def assert_states_agree(states, tick):
    first = states[0]
    for other in states[1:]:
        assert first.assignment == other.assignment, (
            f"assignments diverged at tick {tick}"
        )
        assert np.allclose(first.available, other.available), (
            f"remaining capacity diverged at tick {tick}"
        )


def churn_replay(seed, make_engines, ticks=12, n_machines=24):
    """Drive two engines through one identical randomized churn stream.

    Returns the (cached, cold) engine pair after the replay so callers
    can inspect cache statistics.
    """
    rng = np.random.default_rng(seed)
    n_apps = int(rng.integers(12, 22))
    apps = random_apps(rng, n_apps)
    constraints = ConstraintSet.from_applications(apps)
    containers = containers_of(apps)
    by_app = {}
    for c in containers:
        by_app.setdefault(c.app_id, []).append(c)

    engines = make_engines()
    states = [
        ClusterState(build_cluster(n_machines, machines_per_rack=4), constraints)
        for _ in engines
    ]
    try:
        return _churn_replay(
            rng, engines, states, apps, by_app, ticks, n_apps
        )
    finally:
        # Engines may hold external resources (the parallel sweep's
        # worker processes and shared memory); attribute reads on the
        # returned engines stay valid after close().
        for engine in engines:
            close = getattr(engine, "close", None)
            if callable(close):
                close()


def _churn_replay(rng, engines, states, apps, by_app, ticks, n_apps):

    arrival_tick = np.sort(rng.integers(0, ticks, n_apps))
    lifetimes = rng.integers(3, 10, n_apps)
    life_of = {app.app_id: int(lifetimes[i]) for i, app in enumerate(apps)}

    departures: dict[int, list[int]] = {}
    down: list[tuple[int, int]] = []  # (repair tick, machine id)
    idx = 0
    horizon = ticks + int(lifetimes.max()) + 1
    for tick in range(horizon):
        # 1. departures — the same container ids leave both clusters.
        for cid in departures.pop(tick, ()):
            for state in states:
                if cid in state.assignment:
                    state.evict(cid)

        # 2. repairs of machines whose outage has elapsed.
        while down and down[0][0] <= tick:
            _, machine = down.pop(0)
            for state in states:
                repair_machines(state, [machine])

        # 3. an occasional machine failure; the displaced containers are
        # resubmitted with this tick's arrivals.  The victim is drawn
        # from the first state only — legal because the states were
        # asserted identical at the end of the previous tick.
        requeue = []
        if rng.random() < 0.30:
            pool = np.flatnonzero(states[0].container_count > 0)
            if pool.size:
                victim = int(rng.choice(pool))
                displaced_ids = None
                for state in states:
                    report = fail_machines(state, [victim])
                    ids = sorted(c.container_id for c in report.displaced)
                    if displaced_ids is None:
                        displaced_ids = ids
                        requeue = sorted(
                            report.displaced,
                            key=lambda c: (-c.priority, c.container_id),
                        )
                    else:
                        assert ids == displaced_ids, (
                            f"fault displaced different containers at tick {tick}"
                        )
                down.append((tick + int(rng.integers(2, 5)), victim))
                down.sort()

        # 4. arrivals.
        batch = list(requeue)
        while idx < n_apps and arrival_tick[idx] <= tick:
            batch.extend(by_app[apps[idx].app_id])
            idx += 1

        if batch:
            rounds = [engine.schedule(list(batch), state)
                      for engine, state in zip(engines, states)]
            first = rounds[0]
            for other in rounds[1:]:
                assert other.placements == first.placements, (
                    f"placements diverged at tick {tick}"
                )
                assert other.undeployed == first.undeployed, (
                    f"failure verdicts diverged at tick {tick}"
                )
            for c in batch:
                if c.container_id in first.placements:
                    end = tick + life_of[c.app_id]
                    departures.setdefault(end, []).append(c.container_id)

        assert_states_agree(states, tick)
        if idx >= n_apps and not departures and not down:
            break
    return engines


def aladdin_pair():
    return [
        AladdinScheduler(),  # cache on by default
        AladdinScheduler(AladdinConfig(enable_feasibility_cache=False)),
    ]


def aladdin_batch_pair():
    return [
        AladdinScheduler(),  # batch kernel on by default
        AladdinScheduler(AladdinConfig(enable_batch_kernel=False)),
    ]


def aladdin_grid():
    """The batched×cached product of the vectorised engine."""
    return [
        AladdinScheduler(AladdinConfig(
            enable_batch_kernel=batch, enable_feasibility_cache=cache,
        ))
        for batch in (True, False)
        for cache in (True, False)
    ]


def flowpath_pair():
    return [
        FlowPathSearch(),
        FlowPathSearch(AladdinConfig(enable_feasibility_cache=False)),
    ]


def aladdin_parallel_pair(workers=2):
    return [
        AladdinScheduler(),  # serial (workers=1 default)
        AladdinScheduler(AladdinConfig(workers=workers)),
    ]


def aladdin_parallel_grid():
    """The workers×batched×cached product of the vectorised engine.

    The parallel sweep only activates with the whole cache+kernel
    pipeline enabled, so the degraded variants double as a check that
    the gating falls back to the serial path rather than diverging.
    """
    return [
        AladdinScheduler(AladdinConfig(
            workers=workers,
            enable_batch_kernel=batch,
            enable_feasibility_cache=cache,
        ))
        for workers in (1, 2, 3)
        for batch in (True, False)
        for cache in (True, False)
    ]


def flowpath_parallel_pair():
    return [
        FlowPathSearch(),
        FlowPathSearch(AladdinConfig(workers=2)),
    ]


@pytest.mark.parametrize("seed", range(20))
def test_aladdin_cached_matches_cold(seed):
    """≥ 20 randomized churn replays: the cached production engine and a
    cold-start twin agree on every placement at every tick, and the
    cache is demonstrably in play (hit-rate > 0)."""
    cached, cold = churn_replay(seed, aladdin_pair)
    assert cached.feas_cache.hits > 0, "replay never hit the cache"
    assert cached.feas_cache.hit_rate > 0.0
    assert cold.feas_cache.hits == 0, "cold engine must not touch its cache"


@pytest.mark.parametrize("seed", range(5))
def test_flowpath_cached_matches_cold(seed):
    """The reference flow-network engine honours the same contract."""
    cached, cold = churn_replay(seed, flowpath_pair)
    assert cached.feas_cache.hits > 0
    assert cold.feas_cache.hits == 0


@pytest.mark.parametrize("seed", range(20))
def test_aladdin_batched_matches_loop(seed):
    """≥ 20 randomized churn replays across the batched×loop axis: the
    default engine (batch kernel on) and its per-container-loop twin
    agree on every placement at every tick, and the kernel is
    demonstrably in play on the batched side only."""
    batched, loop = churn_replay(seed, aladdin_batch_pair)
    assert batched.batch_placed > 0, "replay never exercised the kernel"
    assert loop.batch_placed == 0, "loop engine must not batch"


@pytest.mark.parametrize("seed", [3, 11, 17])
def test_engine_grid_agrees_under_churn(seed):
    """The full batched×loop×cached×engine grid — four Aladdin variants
    plus the reference flow engine with the cache on and off — replays
    one churn stream with identical placements throughout."""
    engines = churn_replay(seed, lambda: aladdin_grid() + flowpath_pair())
    assert engines[0].batch_placed > 0
    assert all(e.batch_placed == 0 for e in engines[2:4])


@pytest.mark.parametrize("seed", range(20))
def test_aladdin_parallel_matches_serial(seed):
    """≥ 20 randomized churn replays across the workers axis: the
    rack-sharded parallel sweep and the serial engine agree on every
    placement at every tick, and the sweep is demonstrably in play on
    the parallel side only."""
    serial, parallel = churn_replay(seed, aladdin_parallel_pair)
    assert parallel.parallel is not None
    assert parallel.parallel.sweeps > 0, "replay never exercised the sweep"
    assert serial.parallel is None, "serial engine must not shard"


@pytest.mark.parametrize("seed", [2, 9, 14])
def test_aladdin_parallel_grid_agrees_under_churn(seed):
    """The workers×batched×cached product — twelve engine variants,
    including degraded configs where the sweep's gating must fall back
    to the serial path — replays one churn stream with identical
    placements throughout."""
    engines = churn_replay(seed, aladdin_parallel_grid)
    active = [e for e in engines if e.parallel is not None]
    assert active, "grid contains no live parallel variant"
    assert all(e.parallel.sweeps > 0 for e in active)
    # Gating: the sweep must not have been built for degraded configs.
    for e in engines:
        cfg = e.config
        expect = (
            cfg.workers > 1
            and cfg.enable_batch_kernel
            and cfg.enable_feasibility_cache
        )
        assert (e.parallel is not None) == expect


@pytest.mark.parametrize("seed", range(5))
def test_flowpath_parallel_matches_serial(seed):
    """The reference flow-network engine honours the same workers
    contract on its cached k=1 queries."""
    serial, parallel = churn_replay(seed, flowpath_parallel_pair)
    assert parallel.parallel is not None
    assert parallel.parallel.sweeps > 0
    assert serial.parallel is None


def aladdin_rescue_pair():
    return [
        track_telemetry(AladdinScheduler()),  # rescue kernel on by default
        track_telemetry(
            AladdinScheduler(AladdinConfig(enable_rescue_kernel=False))
        ),
    ]


def flowpath_rescue_pair():
    return [
        track_telemetry(FlowPathSearch()),
        track_telemetry(
            FlowPathSearch(AladdinConfig(enable_rescue_kernel=False))
        ),
    ]


def aladdin_rescue_grid():
    """The rescue×batched×cached product of the vectorised engine."""
    return [
        AladdinScheduler(AladdinConfig(
            enable_rescue_kernel=rescue,
            enable_batch_kernel=batch,
            enable_feasibility_cache=cache,
        ))
        for rescue in (True, False)
        for batch in (True, False)
        for cache in (True, False)
    ]


RESCUE_DECISION_COUNTERS = (
    "rescue_attempts",
    "rescue_migrations",
    "rescue_preemptions",
    "rescue_machines_scanned",
)


def assert_rescue_decisions_agree(kernel, legacy):
    """The kernel may change *costs* (explored, cache hits) but never
    *decisions*: the rescue-decision counters must match the legacy
    loop exactly, and every kernel-side attempt must have gone through
    the kernel (none silently fell back to the loop)."""
    for name in RESCUE_DECISION_COUNTERS:
        assert getattr(kernel.total_telemetry, name) == getattr(
            legacy.total_telemetry, name
        ), f"{name} diverged across the rescue axis"
    assert (
        kernel.total_telemetry.rescue_kernel_invocations
        == kernel.total_telemetry.rescue_attempts
    )
    assert legacy.total_telemetry.rescue_kernel_invocations == 0


@pytest.mark.parametrize("seed", range(20))
def test_aladdin_rescue_kernel_matches_loop(seed):
    """≥ 20 randomized churn replays on a deliberately tight cluster
    (rescues actually fire there): the vectorized rescue kernel and the
    legacy per-machine loop agree on every placement at every tick, and
    the rescue decision counters are bit-identical."""
    kernel, legacy = churn_replay(
        seed, aladdin_rescue_pair, n_machines=10
    )
    assert_rescue_decisions_agree(kernel, legacy)
    assert legacy.rescue_kernel is None, "legacy engine must not build a kernel"


@pytest.mark.parametrize("seed", range(5))
def test_flowpath_rescue_kernel_matches_loop(seed):
    """The reference flow-network engine honours the same contract —
    its rescues route through the identical planner."""
    kernel, legacy = churn_replay(
        seed, flowpath_rescue_pair, n_machines=10
    )
    assert_rescue_decisions_agree(kernel, legacy)


@pytest.mark.parametrize("seed", [2, 5, 13])
def test_rescue_grid_agrees_under_churn(seed):
    """The rescue×batched×cached product — eight Aladdin variants —
    replays one tight-cluster churn stream with identical placements
    throughout, so the kernel composes with every other optimisation
    axis rather than merely with the default configuration."""
    engines = churn_replay(seed, aladdin_rescue_grid, n_machines=10)
    for e in engines:
        assert (e.rescue_kernel is not None) == e.config.enable_rescue_kernel


@pytest.mark.parametrize("seed", [2, 7])
def test_cross_engine_rescue_agrees_on_tight_cluster(seed):
    """Both engines, kernel on and off, on the tight cluster where the
    flow engine's requeue pass used to drop victims the vectorised
    engine migrated — the four-way replay pins the shared
    ``drain_requeue``/``final_repair`` semantics."""
    churn_replay(
        seed,
        lambda: [
            AladdinScheduler(),
            AladdinScheduler(AladdinConfig(enable_rescue_kernel=False)),
            FlowPathSearch(),
            FlowPathSearch(AladdinConfig(enable_rescue_kernel=False)),
        ],
        n_machines=10,
    )


def test_rescue_kernel_demonstrably_in_play():
    """The tight-cluster replays must actually exercise the kernel —
    aggregate invocations across the seed range are positive, so the
    rescue-axis equivalence above is not vacuous."""
    total = 0
    for seed in range(8):
        kernel, _ = churn_replay(seed, aladdin_rescue_pair, n_machines=10)
        total += kernel.rescue_kernel.invocations
        assert (
            kernel.rescue_kernel.invocations
            == kernel.total_telemetry.rescue_kernel_invocations
        )
    assert total > 0, "no replay ever invoked the rescue kernel"


# ----------------------------------------------------------------------
# checkpoint × batched × cached × workers axis: a run killed at tick k
# and restored from its snapshot finishes bit-identical (canonical JSON,
# including telemetry counters) to the uninterrupted run.
# ----------------------------------------------------------------------
class _Interrupt(Exception):
    """Simulated crash raised from the on_checkpoint hook."""


_ONLINE_TRACE = None


def _online_trace():
    global _ONLINE_TRACE
    if _ONLINE_TRACE is None:
        from repro.trace import generate_trace

        _ONLINE_TRACE = generate_trace(scale=0.02, seed=0)
    return _ONLINE_TRACE


def checkpoint_resume_canonical(seed, make_scheduler, tmp_path, every):
    """(uninterrupted, resumed) canonical JSON for one churn stream.

    The interrupted run dies — via an exception from the crash hook —
    immediately after its first snapshot hits the disk; a fresh
    simulator plus a *fresh* scheduler instance then restores from that
    snapshot and runs to completion.
    """
    from repro.sim.online import OnlineConfig, OnlineSimulator

    trace = _online_trace()
    cfg = OnlineConfig(ticks=15, seed=seed)
    full = OnlineSimulator(trace, cfg).run(make_scheduler()).canonical_json()

    path = str(tmp_path / f"ckpt-{seed}.bin")

    def crash(tick, _path):
        raise _Interrupt

    with pytest.raises(_Interrupt):
        OnlineSimulator(trace, cfg).run(
            make_scheduler(), checkpoint_every=every, checkpoint_path=path,
            on_checkpoint=crash,
        )
    resumed = (
        OnlineSimulator(trace, cfg)
        .run(make_scheduler(), restore_from=path)
        .canonical_json()
    )
    return full, resumed


@pytest.mark.parametrize("seed", range(20))
def test_checkpoint_resume_bit_identical(seed, tmp_path):
    """≥ 20 randomized churn streams, each killed right after a
    seed-dependent checkpoint tick and restored: the resumed run's
    canonical JSON — totals, telemetry counters and every per-tick
    sample — equals the uninterrupted run's exactly."""
    full, resumed = checkpoint_resume_canonical(
        seed, AladdinScheduler, tmp_path, every=5 + 11 * (seed % 9)
    )
    assert resumed == full


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "variant",
    ["no-batch", "no-cache", "no-batch-no-cache", "no-rescue-kernel"],
)
def test_checkpoint_resume_across_ablation_grid(seed, variant, tmp_path):
    """The checkpoint axis composes with the batched×cached×rescue
    ablations: every degraded engine restores bit-identically too."""
    cfg = AladdinConfig(
        enable_batch_kernel="no-batch" not in variant,
        enable_feasibility_cache="no-cache" not in variant,
        enable_rescue_kernel=variant != "no-rescue-kernel",
    )
    full, resumed = checkpoint_resume_canonical(
        seed, lambda: AladdinScheduler(cfg), tmp_path, every=20 + 13 * seed
    )
    assert resumed == full


@pytest.mark.parametrize("seed", [0, 3])
def test_checkpoint_resume_with_workers(seed, tmp_path):
    """workers=2: the restored run re-spawns the shard workers, adopts
    the restored ``available`` into fresh shared memory, reloads each
    worker's shard-local watermark, and still finishes bit-identical."""
    full, resumed = checkpoint_resume_canonical(
        seed,
        lambda: AladdinScheduler(AladdinConfig(workers=2)),
        tmp_path,
        every=25 + 10 * seed,
    )
    assert resumed == full


@pytest.mark.parametrize("seed", [0, 4])
def test_checkpoint_resume_flowpath_engine(seed, tmp_path):
    """The reference flow-network engine honours the same contract."""
    full, resumed = checkpoint_resume_canonical(
        seed, FlowPathSearch, tmp_path, every=30 + 8 * seed
    )
    assert resumed == full


def test_checkpoint_fingerprint_mismatch_rejected(tmp_path):
    """A snapshot cannot be restored into a run with a different seed,
    tick count or scheduler — the fingerprint check fails loudly
    instead of silently splicing incompatible histories."""
    from repro.cluster.snapshot import SnapshotError
    from repro.sim.online import OnlineConfig, OnlineSimulator

    trace = _online_trace()
    path = str(tmp_path / "ckpt.bin")

    def crash(tick, _path):
        raise _Interrupt

    with pytest.raises(_Interrupt):
        OnlineSimulator(trace, OnlineConfig(ticks=15, seed=1)).run(
            AladdinScheduler(), checkpoint_every=10, checkpoint_path=path,
            on_checkpoint=crash,
        )
    with pytest.raises(SnapshotError, match="fingerprint"):
        OnlineSimulator(trace, OnlineConfig(ticks=15, seed=2)).run(
            AladdinScheduler(), restore_from=path
        )
    with pytest.raises(SnapshotError, match="fingerprint"):
        OnlineSimulator(trace, OnlineConfig(ticks=15, seed=1)).run(
            FlowPathSearch(), restore_from=path
        )


def test_replay_exercises_mixed_churn():
    """The harness itself must generate the mix the ISSUE demands:
    across the replay seeds there are departures, faults, repairs and
    rescue activity — not just a pure arrival stream."""
    total_hits = 0
    for seed in range(6):
        cached, _ = churn_replay(seed, aladdin_pair)
        total_hits += cached.feas_cache.hits
    # Rescue evidence: a deliberately tight cluster must trigger the
    # migration/preemption/overflow machinery the replays rely on.
    rng = np.random.default_rng(1234)
    apps = random_apps(rng, 16)
    constraints = ConstraintSet.from_applications(apps)
    state = ClusterState(build_cluster(10, machines_per_rack=5), constraints)
    engine = AladdinScheduler()
    result = engine.schedule(containers_of(apps), state)
    saw_migration_or_preemption = (
        result.migrations > 0 or result.preemptions > 0 or result.n_undeployed > 0
    )
    assert total_hits > 0
    assert saw_migration_or_preemption, (
        "workload too easy: no rescue/preemption/overflow pressure at all"
    )


# ----------------------------------------------------------------------
# serving axis: the same seeded arrival/departure schedule, replayed
# through a live `repro serve` server and through the in-process
# OnlineSimulator, must produce bit-identical canonical JSON — the
# served run IS the simulated run, window for window, across the
# batched×cached×workers axes.
# ----------------------------------------------------------------------
SERVE_VARIANTS = {
    "default": AladdinConfig(),
    "no-batch": AladdinConfig(enable_batch_kernel=False),
    "no-cache": AladdinConfig(enable_feasibility_cache=False),
    "workers-2": AladdinConfig(workers=2),
}


def _served_canonical(make_scheduler, trace, cfg):
    """Canonical JSON of ``trace``'s schedule served over a live socket."""
    import os
    import shutil
    import tempfile

    from repro.serve import (
        PlacementServer,
        ServeClient,
        ServerThread,
        replay_online_schedule,
    )
    from repro.sim.online import pool_topology

    topology = pool_topology(trace, cfg)
    server = PlacementServer(
        make_scheduler(), ClusterState(topology, trace.constraints)
    )
    # Unix socket paths are capped around 100 chars — short /tmp dir,
    # not pytest's deeply nested tmp_path.
    d = tempfile.mkdtemp(prefix="ald", dir="/tmp")
    try:
        with ServerThread(server, os.path.join(d, "s.sock")):
            with ServeClient(os.path.join(d, "s.sock")) as client:
                replay_online_schedule(client, trace, cfg)
                return client.result()
    finally:
        shutil.rmtree(d, ignore_errors=True)


@pytest.mark.parametrize("variant", sorted(SERVE_VARIANTS))
def test_served_decisions_match_simulated(variant):
    """One request per simulated tick through the serving stack: the
    server's coalesced windows reproduce the simulator's run exactly —
    totals, per-tick samples and telemetry counters all bit-identical,
    for the default engine and its batched/cached/workers ablations."""
    from repro.sim.online import OnlineConfig, OnlineSimulator

    sched_cfg = SERVE_VARIANTS[variant]
    trace = _online_trace()
    cfg = OnlineConfig(ticks=20, seed=3)
    simulated = (
        OnlineSimulator(trace, cfg)
        .run(AladdinScheduler(sched_cfg))
        .canonical_json()
    )
    served = _served_canonical(
        lambda: AladdinScheduler(sched_cfg), trace, cfg
    )
    assert served == simulated


def test_served_replay_is_deterministic():
    """Two independent served replays of the same schedule produce the
    same canonical JSON — the serving loop adds no hidden state."""
    from repro.sim.online import OnlineConfig

    trace = _online_trace()
    cfg = OnlineConfig(ticks=12, seed=9)
    first = _served_canonical(AladdinScheduler, trace, cfg)
    second = _served_canonical(AladdinScheduler, trace, cfg)
    assert first == second


# ----------------------------------------------------------------------
# Azure-fallback scenario workloads: the serverless churn differential
#
# The scenario families of repro.trace.scenarios put orders of magnitude
# more arrival/departure churn through the engines than the LLA-only
# stream above — short-lived function containers cycling every few
# ticks over a resident constrained-LLA base.  Every bit-identity
# contract proven on the synthetic trace must hold here too, on a
# workload whose schedule is decoded from application names rather than
# sampled from the config seed.
# ----------------------------------------------------------------------
_SCENARIO_FAMILIES = ["diurnal", "burst", "churn-storm", "mixed-lla"]
_SCENARIO_CACHE: dict = {}


def _scenario_workload(seed):
    """(trace, OnlineConfig) for one tiny azure-fallback scenario.

    Seeds rotate through the four families, so a 20-seed sweep covers
    every family five times on five different fallback datasets.
    """
    from repro.sim.online import OnlineConfig
    from repro.trace import build_scenario

    name = _SCENARIO_FAMILIES[seed % len(_SCENARIO_FAMILIES)]
    key = (name, seed)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_scenario(
            name, scale=0.005, seed=seed, ticks=10, n_functions=40,
            lla_lifetime=(6, 16),
        )
    return _SCENARIO_CACHE[key], OnlineConfig(seed=seed, scenario=name)


def scenario_churn_replay(seed, make_engines):
    """Drive engine variants through one identical scenario stream.

    Same per-tick contract as ``churn_replay`` — identical placements,
    identical failure verdicts, indistinguishable states — but the
    stream is the scenario's name-encoded arrival/departure plan
    instead of a randomized one.
    """
    from repro.sim.online import arrival_schedule, pool_topology

    trace, cfg = _scenario_workload(seed)
    sched = arrival_schedule(trace, cfg)
    engines = make_engines()
    states = [
        ClusterState(pool_topology(trace, cfg), trace.constraints)
        for _ in engines
    ]
    try:
        departures: dict[int, list[int]] = {}
        idx = 0
        for tick in range(sched.horizon):
            for cid in departures.pop(tick, ()):
                for state in states:
                    if cid in state.assignment:
                        state.evict(cid)
            batch = []
            while idx < len(sched.apps) and sched.arrival_tick[idx] <= tick:
                batch.extend(sched.by_app[sched.apps[idx].app_id])
                idx += 1
            if batch:
                rounds = [
                    engine.schedule(list(batch), state)
                    for engine, state in zip(engines, states)
                ]
                first = rounds[0]
                for other in rounds[1:]:
                    assert other.placements == first.placements, (
                        f"placements diverged at tick {tick}"
                    )
                    assert other.undeployed == first.undeployed, (
                        f"failure verdicts diverged at tick {tick}"
                    )
                for c in batch:
                    if c.container_id in first.placements:
                        end = tick + sched.life_of[c.app_id]
                        departures.setdefault(end, []).append(c.container_id)
            assert_states_agree(states, tick)
            if idx >= len(sched.apps) and not departures:
                break
        return engines
    finally:
        for engine in engines:
            close = getattr(engine, "close", None)
            if callable(close):
                close()


@pytest.mark.parametrize("seed", range(20))
def test_azure_scenario_cached_matches_cold(seed):
    """20 azure-fallback scenario replays (every family × five seeds):
    the cached engine and its cold twin agree on every placement at
    every tick of the serverless churn, and the cache is demonstrably
    in play on the cached side only."""
    cached, cold = scenario_churn_replay(seed, aladdin_pair)
    assert cached.feas_cache.hits > 0, "scenario replay never hit the cache"
    assert cold.feas_cache.hits == 0, "cold engine must not touch its cache"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_azure_scenario_batched_matches_loop(seed):
    """The batched×loop axis holds on every scenario family too."""
    batched, loop = scenario_churn_replay(seed, aladdin_batch_pair)
    assert batched.batch_placed > 0
    assert loop.batch_placed == 0


@pytest.mark.parametrize("seed", [1, 2])
def test_azure_scenario_parallel_matches_serial(seed):
    """The workers axis holds under serverless churn."""
    serial, parallel = scenario_churn_replay(seed, aladdin_parallel_pair)
    assert parallel.parallel is not None and parallel.parallel.sweeps > 0
    assert serial.parallel is None


@pytest.mark.parametrize("name", ["diurnal", "churn-storm"])
def test_azure_scenario_served_matches_simulated(name):
    """A served scenario replay is bit-identical to the simulated run:
    the replay client recomputes the name-encoded schedule through the
    same ``arrival_schedule`` dispatch the simulator uses."""
    from repro.sim.online import OnlineConfig, OnlineSimulator
    from repro.trace import build_scenario

    trace = build_scenario(
        name, scale=0.005, seed=2, ticks=10, n_functions=40,
        lla_lifetime=(6, 16),
    )
    cfg = OnlineConfig(seed=2, scenario=name)
    simulated = (
        OnlineSimulator(trace, cfg).run(AladdinScheduler()).canonical_json()
    )
    served = _served_canonical(AladdinScheduler, trace, cfg)
    assert served == simulated


@pytest.mark.parametrize("seed", [0, 5, 10, 15])
def test_azure_scenario_checkpoint_resume_bit_identical(seed, tmp_path):
    """A scenario run killed after a checkpoint and restored finishes
    bit-identical: the restore path re-decodes the schedule from the
    trace names, and the fingerprint pins the scenario."""
    from repro.sim.online import OnlineSimulator

    trace, cfg = _scenario_workload(seed)
    full = OnlineSimulator(trace, cfg).run(AladdinScheduler()).canonical_json()

    path = str(tmp_path / f"scn-{seed}.bin")

    def crash(tick, _path):
        raise _Interrupt

    with pytest.raises(_Interrupt):
        OnlineSimulator(trace, cfg).run(
            AladdinScheduler(), checkpoint_every=4, checkpoint_path=path,
            on_checkpoint=crash,
        )
    resumed = (
        OnlineSimulator(trace, cfg)
        .run(AladdinScheduler(), restore_from=path)
        .canonical_json()
    )
    assert resumed == full


def test_azure_scenario_fingerprint_rejects_other_scenario(tmp_path):
    """A snapshot from one scenario must not restore into another."""
    from repro.cluster.snapshot import SnapshotError
    from repro.sim.online import OnlineConfig, OnlineSimulator
    from repro.trace import build_scenario

    trace = build_scenario(
        "diurnal", scale=0.005, seed=0, ticks=10, n_functions=40,
        lla_lifetime=(6, 16),
    )
    path = str(tmp_path / "fp.bin")
    OnlineSimulator(trace, OnlineConfig(seed=0, scenario="diurnal")).run(
        AladdinScheduler(), checkpoint_every=4, checkpoint_path=path
    )
    with pytest.raises(SnapshotError, match="fingerprint"):
        OnlineSimulator(trace, OnlineConfig(seed=0, scenario="burst")).run(
            AladdinScheduler(), restore_from=path
        )
