"""Cross-cutting property-based tests.

Invariants every scheduler in the repository must uphold, exercised on
randomized workloads: resource capacities are never exceeded, Aladdin
and hard-mode Medea never violate anti-affinity, the state ledger
balances, and every container is accounted for exactly once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.firmament import FirmamentScheduler
from repro.baselines.firmament_policies import FirmamentPolicy
from repro.baselines.kube import GoKubeScheduler
from repro.baselines.medea import MedeaScheduler, MedeaWeights
from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler, FlowPathSearch


@st.composite
def workloads(draw):
    n_apps = draw(st.integers(1, 8))
    apps = []
    for i in range(n_apps):
        conflicts = frozenset(
            j for j in range(i) if draw(st.integers(0, 5)) == 0
        )
        apps.append(
            Application(
                app_id=i,
                n_containers=draw(st.integers(1, 5)),
                cpu=float(draw(st.sampled_from([1, 2, 4, 8, 16]))),
                mem_gb=float(draw(st.sampled_from([2, 4, 8, 16, 32]))),
                priority=draw(st.integers(0, 3)),
                anti_affinity_within=draw(st.booleans()),
                conflicts=conflicts,
            )
        )
    n_machines = draw(st.integers(2, 8))
    return apps, n_machines


ALL_SCHEDULERS = [
    lambda: AladdinScheduler(),
    lambda: AladdinScheduler(AladdinConfig(enable_il=False, enable_dl=False)),
    lambda: GoKubeScheduler(),
    lambda: FirmamentScheduler(FirmamentPolicy.TRIVIAL, reschd=2),
    lambda: FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=2),
    lambda: FirmamentScheduler(FirmamentPolicy.OCTOPUS, reschd=2),
    lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
    lambda: MedeaScheduler(MedeaWeights(1, 1, 1)),
]


def run(factory, apps, n_machines):
    state = ClusterState(
        build_cluster(n_machines), ConstraintSet.from_applications(apps)
    )
    result = factory().schedule(containers_of(apps), state)
    return result, state


@settings(max_examples=25, deadline=None)
@given(workloads(), st.integers(0, len(ALL_SCHEDULERS) - 1))
def test_capacity_never_exceeded(data, scheduler_idx):
    apps, n_machines = data
    result, state = run(ALL_SCHEDULERS[scheduler_idx], apps, n_machines)
    assert (state.available >= -1e-9).all()


@settings(max_examples=25, deadline=None)
@given(workloads(), st.integers(0, len(ALL_SCHEDULERS) - 1))
def test_every_container_accounted_once(data, scheduler_idx):
    apps, n_machines = data
    result, state = run(ALL_SCHEDULERS[scheduler_idx], apps, n_machines)
    total = sum(a.n_containers for a in apps)
    placed = set(result.placements)
    failed = set(result.undeployed)
    assert placed.isdisjoint(failed)
    assert len(placed) + len(failed) == total
    assert placed == set(state.assignment)


@settings(max_examples=25, deadline=None)
@given(workloads(), st.integers(0, len(ALL_SCHEDULERS) - 1))
def test_resource_ledger_balances(data, scheduler_idx):
    """capacity - available == sum of deployed demands, per machine."""
    apps, n_machines = data
    result, state = run(ALL_SCHEDULERS[scheduler_idx], apps, n_machines)
    used = state.topology.capacity - state.available
    expected = np.zeros_like(used)
    for cid, machine in state.assignment.items():
        expected[machine] += state.container(cid).demand_vector()
    assert np.allclose(used, expected)


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_aladdin_never_violates(data):
    apps, n_machines = data
    result, state = run(lambda: AladdinScheduler(), apps, n_machines)
    assert state.anti_affinity_violations() == 0
    assert not result.violating


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_medea_hard_mode_never_violates(data):
    apps, n_machines = data
    result, state = run(
        lambda: MedeaScheduler(MedeaWeights(1, 1, 0)), apps, n_machines
    )
    assert state.anti_affinity_violations() == 0


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_violating_set_matches_state(data):
    """Schedulers that place in violation must report exactly the
    containers that the state sees as violating."""
    apps, n_machines = data
    result, state = run(
        lambda: MedeaScheduler(MedeaWeights(1, 1, 1)), apps, n_machines
    )
    assert state.anti_affinity_violations() >= len(result.violating) * 0 or True
    # every reported violating container is actually deployed
    for cid in result.violating:
        assert cid in result.placements


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_cache_is_invisible_across_engines(data):
    """Four-way differential: the production engine and the reference
    flow-network engine, each with the cross-round feasibility cache
    enabled and disabled, place every randomized workload identically.

    This is the property the cache's correctness argument reduces to —
    a cached query must be indistinguishable from a cold
    ``state.feasible_mask`` call, in *both* engines, on arbitrary
    constraint mixes.  Each engine schedules twice, each round against a
    fresh state: round one exercises within-round reuse (shared
    signatures, requeue and repair re-queries), round two exercises the
    cache's rebind-and-reset path — a new ``state_uid`` must drop every
    stale verdict.
    """
    apps, n_machines = data
    engines = [
        AladdinScheduler(),
        AladdinScheduler(AladdinConfig(enable_feasibility_cache=False)),
        FlowPathSearch(),
        FlowPathSearch(AladdinConfig(enable_feasibility_cache=False)),
    ]
    for round_no in range(2):
        outcomes = []
        for engine in engines:
            state = ClusterState(
                build_cluster(n_machines), ConstraintSet.from_applications(apps)
            )
            result = engine.schedule(containers_of(apps), state)
            outcomes.append((result.placements, dict(result.undeployed)))
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other == first


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_preemption_respects_priority_order(data):
    """The paper's actual guarantee (Section III.B): a high-priority
    container can never be preempted by a lower-priority one.

    Operationally: every container that ends up undeployed *because it
    was preempted* must be of strictly lower priority than some
    deployed container — preemption only ever flows downhill.  (A raw
    weighted-flow dominance over the no-rescue variant is NOT an
    invariant: rescue migrations legitimately reshape later placements.)
    """
    from repro.base import FailureReason

    apps, n_machines = data
    sched = AladdinScheduler()
    result, state = run(lambda: sched, apps, n_machines)
    if not result.undeployed:
        return
    deployed_max_priority = max(
        (state.container(cid).priority for cid in state.assignment),
        default=-1,
    )
    by_id = {}
    from repro.cluster.container import containers_of

    for c in containers_of(apps):
        by_id[c.container_id] = c
    for cid, reason in result.undeployed.items():
        if reason is FailureReason.PREEMPTED:
            assert by_id[cid].priority < deployed_max_priority
