"""Simulated Kubernetes API server tests."""

import pytest

from repro.kube.api import Binding, KubeApiServer, Node, Pod, PodPhase


def pod(name="p0", app="a", cpu=4.0):
    return Pod(name=name, app=app, cpu=cpu, mem_gb=cpu * 2)


class TestObjects:
    def test_duplicate_node_rejected(self):
        api = KubeApiServer()
        api.add_node(Node("n0", 32, 64))
        with pytest.raises(ValueError):
            api.add_node(Node("n0", 32, 64))

    def test_duplicate_pod_rejected(self):
        api = KubeApiServer()
        api.create_pod(pod())
        with pytest.raises(ValueError):
            api.create_pod(pod())

    def test_phase_filtering(self):
        api = KubeApiServer()
        api.add_node(Node("n0", 32, 64))
        api.create_pod(pod("p0"))
        api.create_pod(pod("p1"))
        api.bind(Binding("p0", "n0"))
        assert [p.name for p in api.pods(PodPhase.PENDING)] == ["p1"]
        assert [p.name for p in api.pods(PodPhase.SCHEDULED)] == ["p0"]


class TestBinding:
    def test_bind_moves_pod(self):
        api = KubeApiServer()
        api.add_node(Node("n0", 32, 64))
        api.create_pod(pod())
        api.bind(Binding("p0", "n0"))
        assert api.pods()[0].node_name == "n0"
        assert api.bindings == [Binding("p0", "n0")]

    def test_bind_to_unknown_node_rejected(self):
        api = KubeApiServer()
        api.create_pod(pod())
        with pytest.raises(KeyError):
            api.bind(Binding("p0", "missing"))

    def test_double_bind_rejected(self):
        api = KubeApiServer()
        api.add_node(Node("n0", 32, 64))
        api.create_pod(pod())
        api.bind(Binding("p0", "n0"))
        with pytest.raises(ValueError):
            api.bind(Binding("p0", "n0"))

    def test_fail_pod(self):
        api = KubeApiServer()
        api.create_pod(pod())
        api.fail_pod("p0")
        assert api.pods()[0].phase is PodPhase.FAILED


class TestWatch:
    def test_watchers_see_events(self):
        api = KubeApiServer()
        events = []
        api.watch(lambda e: events.append(e.kind))
        api.add_node(Node("n0", 32, 64))
        api.create_pod(pod())
        api.bind(Binding("p0", "n0"))
        assert events == ["ADDED", "ADDED", "MODIFIED"]

    def test_delete_emits_event(self):
        api = KubeApiServer()
        api.create_pod(pod())
        events = []
        api.watch(lambda e: events.append(e.kind))
        api.delete_pod("p0")
        assert events == ["DELETED"]
