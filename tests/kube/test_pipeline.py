"""EHC / MA / RE pipeline tests (the Fig. 6 co-design architecture)."""

import pytest

from repro.kube.adaptor import ModelAdaptor
from repro.kube.api import KubeApiServer, Node, Pod, PodPhase
from repro.kube.ehc import EventsHandlingCenter
from repro.kube.resolver import SchedulingLoop


def cluster(api, n=4, cpu=32.0):
    for i in range(n):
        api.add_node(Node(f"node-{i}", cpu=cpu, mem_gb=cpu * 2))


class TestEhc:
    def test_drain_groups_by_app(self):
        api = KubeApiServer()
        ehc = EventsHandlingCenter(api)
        api.create_pod(Pod("a-0", "a", 1, 2))
        api.create_pod(Pod("b-0", "b", 1, 2))
        api.create_pod(Pod("a-1", "a", 1, 2))
        pods, _ = ehc.drain()
        assert [p.name for p in pods] == ["a-0", "a-1", "b-0"]

    def test_drain_clears_queue(self):
        api = KubeApiServer()
        ehc = EventsHandlingCenter(api)
        api.create_pod(Pod("p", "a", 1, 2))
        ehc.drain()
        assert ehc.n_pending == 0
        assert ehc.drain() == ([], [])

    def test_preexisting_objects_picked_up(self):
        api = KubeApiServer()
        cluster(api, 2)
        api.create_pod(Pod("p", "a", 1, 2))
        ehc = EventsHandlingCenter(api)  # created after the objects
        pods, nodes = ehc.drain()
        assert len(pods) == 1 and len(nodes) == 2

    def test_scheduled_pod_leaves_queue(self):
        api = KubeApiServer()
        cluster(api, 1)
        ehc = EventsHandlingCenter(api)
        api.create_pod(Pod("p", "a", 1, 2))
        from repro.kube.api import Binding

        api.bind(Binding("p", "node-0"))
        assert ehc.n_pending == 0


class TestAdaptor:
    def test_heterogeneous_nodes_supported(self):
        """Mixed node shapes build a heterogeneous topology (the
        paper's Section VII future work, implemented here)."""
        adaptor = ModelAdaptor()
        adaptor.add_nodes([Node("a", 32, 64), Node("b", 16, 32)])
        state = adaptor.state()
        assert state.topology.capacity[0].tolist() == [32.0, 64.0]
        assert state.topology.capacity[1].tolist() == [16.0, 32.0]
        assert not state.topology.is_homogeneous

    def test_no_nodes_rejected(self):
        with pytest.raises(RuntimeError):
            ModelAdaptor().state()

    def test_anti_affinity_labels_translate(self):
        adaptor = ModelAdaptor()
        adaptor.add_nodes([Node("a", 32, 64)])
        pods = [
            Pod("w-0", "web", 4, 8, anti_affinity=("web", "db")),
            Pod("d-0", "db", 4, 8),
        ]
        containers = adaptor.to_containers(pods)
        state = adaptor.state()
        web, db = containers[0].app_id, containers[1].app_id
        assert state.constraints.has_within(web)
        assert state.constraints.violates(web, db)

    def test_container_ids_stable_across_calls(self):
        adaptor = ModelAdaptor()
        p = Pod("x", "a", 1, 2)
        c1 = adaptor.to_containers([p])[0]
        c2 = adaptor.to_containers([p])[0]
        assert c1.container_id == c2.container_id
        assert adaptor.pod_name(c1.container_id) == "x"


class TestEndToEnd:
    def test_anti_affine_pods_on_distinct_nodes(self):
        api = KubeApiServer()
        cluster(api, 4)
        for i in range(3):
            api.create_pod(Pod(f"w-{i}", "web", 8, 16, anti_affinity=("web",)))
        loop = SchedulingLoop(api)
        result = loop.run_once()
        assert result.n_deployed == 3
        nodes = {p.node_name for p in api.pods(PodPhase.SCHEDULED)}
        assert len(nodes) == 3

    def test_unschedulable_pod_marked_failed(self):
        api = KubeApiServer()
        cluster(api, 1, cpu=8.0)
        api.create_pod(Pod("big", "a", 32, 64))
        loop = SchedulingLoop(api)
        loop.run_once()
        assert api.pods()[0].phase is PodPhase.FAILED

    def test_incremental_rounds(self):
        api = KubeApiServer()
        cluster(api, 2)
        loop = SchedulingLoop(api)
        api.create_pod(Pod("p0", "a", 4, 8))
        r1 = loop.run_once()
        api.create_pod(Pod("p1", "b", 4, 8))
        r2 = loop.run_once()
        assert r1.n_deployed == 1 and r2.n_deployed == 1
        assert len(api.bindings) == 2
