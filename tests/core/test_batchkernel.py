"""The batched block placement kernel against its sequential oracle.

:func:`repro.core.batchkernel.block_plan` claims its quota prefix-sum
reads off exactly the machine sequence the per-container packed-first
walk would produce.  The oracle here *is* that walk, written naively:
take the first candidate that still fits, decrement its remaining
capacity, honour within-anti-affinity by dropping used machines (or
whole racks).  Every property test compares the two on randomized
clusters.
"""

import numpy as np
import pytest

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.batchkernel import block_plan


def fresh_state(n_machines=8, apps=(), machines_per_rack=4):
    return ClusterState(
        build_cluster(n_machines, machines_per_rack=machines_per_rack),
        ConstraintSet.from_applications(list(apps)),
    )


def deploy(state, app_id, machine_id, cpu=4.0, mem=8.0):
    deploy._next = getattr(deploy, "_next", 0) + 1
    c = Container(container_id=30_000 + deploy._next, app_id=app_id,
                  instance=0, cpu=cpu, mem_gb=mem)
    state.deploy(c, machine_id)


def sequential_oracle(state, demand, candidates, k, within_scope):
    """The per-container walk, literally: first fitting candidate wins."""
    avail = state.available[candidates].copy()
    used_machines: set[int] = set()
    used_racks: set[int] = set()
    out = []
    for _ in range(k):
        chosen = None
        for j, m in enumerate(candidates):
            if within_scope == "machine" and int(m) in used_machines:
                continue
            if within_scope == "rack" and (
                int(state.topology.rack_of[m]) in used_racks
            ):
                continue
            if (avail[j] >= demand).all():
                chosen = j
                break
        if chosen is None:
            break
        out.append(int(candidates[chosen]))
        avail[chosen] -= demand
        used_machines.add(int(candidates[chosen]))
        used_racks.add(int(state.topology.rack_of[candidates[chosen]]))
    return out


class TestBlockPlan:
    def test_empty_candidates_or_zero_k(self):
        state = fresh_state()
        demand = np.array([4.0, 8.0])
        empty = np.empty(0, dtype=np.int64)
        assert block_plan(state, demand, empty, 3, None).size == 0
        ids = np.arange(4, dtype=np.int64)
        assert block_plan(state, demand, ids, 0, None).size == 0

    def test_fill_then_spill_in_candidate_order(self):
        # 32 CPU machines, 8-CPU containers: 4 per machine, then spill.
        state = fresh_state(n_machines=3)
        demand = np.array([8.0, 8.0])
        cands = np.array([2, 0, 1], dtype=np.int64)
        plan = block_plan(state, demand, cands, 10, None)
        assert plan.tolist() == [2, 2, 2, 2, 0, 0, 0, 0, 1, 1]

    def test_partial_fit_prefix_when_quotas_run_dry(self):
        state = fresh_state(n_machines=2)
        deploy(state, 0, 0, cpu=28.0, mem=8.0)   # machine 0: 4 CPU left
        deploy(state, 0, 1, cpu=24.0, mem=8.0)   # machine 1: 8 CPU left
        demand = np.array([4.0, 4.0])
        cands = np.array([0, 1], dtype=np.int64)
        plan = block_plan(state, demand, cands, 5, None)
        assert plan.tolist() == [0, 1, 1]  # 3 of 5; remainder overflows

    def test_machine_scope_takes_one_per_machine(self):
        state = fresh_state(n_machines=4)
        demand = np.array([4.0, 8.0])
        cands = np.array([3, 1, 0, 2], dtype=np.int64)
        plan = block_plan(state, demand, cands, 3, "machine")
        assert plan.tolist() == [3, 1, 0]

    def test_rack_scope_takes_first_machine_per_rack(self):
        # 8 machines, 4 per rack: candidates interleave racks; the plan
        # keeps the first representative of each rack in order.
        state = fresh_state(n_machines=8, machines_per_rack=4)
        demand = np.array([4.0, 8.0])
        cands = np.array([1, 0, 5, 2, 6], dtype=np.int64)  # racks 0,0,1,0,1
        plan = block_plan(state, demand, cands, 4, "rack")
        assert plan.tolist() == [1, 5]

    def test_fractional_demand_quota_floors(self):
        state = fresh_state(n_machines=1)
        demand = np.array([5.0, 5.0])  # floor(32/5)=6, floor(64/5)=12 → 6
        cands = np.array([0], dtype=np.int64)
        plan = block_plan(state, demand, cands, 10, None)
        assert plan.tolist() == [0] * 6

    def test_zero_demand_dimension_does_not_divide_by_zero(self):
        state = fresh_state(n_machines=1)
        demand = np.array([4.0, 0.0])
        cands = np.array([0], dtype=np.int64)
        plan = block_plan(state, demand, cands, 3, None)
        assert plan.tolist() == [0, 0, 0]

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("scope", [None, "machine", "rack"])
    def test_matches_sequential_oracle(self, seed, scope):
        rng = np.random.default_rng(seed)
        state = fresh_state(n_machines=12, machines_per_rack=3)
        # Pre-load random machines so quotas vary.
        for m in range(12):
            load = float(rng.choice([0.0, 8.0, 16.0, 24.0, 28.0]))
            if load:
                deploy(state, 0, m, cpu=load, mem=load)
        demand = np.array([float(rng.choice([2.0, 4.0, 8.0]))] * 2)
        # Candidates: the feasible machines in a random preference order
        # (block_plan's contract: every candidate fits ≥ 1 container).
        feasible = np.flatnonzero((state.available >= demand).all(axis=1))
        cands = rng.permutation(feasible).astype(np.int64)
        k = int(rng.integers(1, 20))
        plan = block_plan(state, demand, cands, k, scope)
        assert plan.tolist() == sequential_oracle(state, demand, cands, k, scope)
