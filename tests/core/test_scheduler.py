"""AladdinScheduler behaviour tests."""

import numpy as np
import pytest

from repro.base import FailureReason
from repro.cluster.machine import MachineSpec
from repro.core import AladdinConfig, AladdinScheduler

from tests.conftest import containers_for, make_apps, state_for


def run(apps, n_machines=4, config=None, machine=None):
    sched = AladdinScheduler(config or AladdinConfig())
    state = state_for(apps, n_machines=n_machines, machine=machine)
    result = sched.schedule(containers_for(apps), state)
    return result, state


class TestBasicPlacement:
    def test_places_everything_with_room(self):
        apps = make_apps((3, 4.0, 0, False, ()), (2, 8.0, 0, False, ()))
        result, state = run(apps)
        assert result.n_deployed == 5
        assert result.n_undeployed == 0
        assert state.anti_affinity_violations() == 0

    def test_packs_most_packed_first(self):
        """Containers stack on one machine before opening a second."""
        apps = make_apps((4, 4.0, 0, False, ()))
        result, state = run(apps)
        assert state.used_machines() == 1

    def test_within_anti_affinity_spreads(self):
        apps = make_apps((3, 4.0, 0, True, ()))
        result, state = run(apps)
        machines = {result.placements[c.container_id] for c in containers_for(apps)}
        assert len(machines) == 3

    def test_within_app_needs_enough_machines(self):
        apps = make_apps((5, 1.0, 0, True, ()))
        result, state = run(apps, n_machines=4)
        assert result.n_deployed == 4
        assert result.n_undeployed == 1
        reason = list(result.undeployed.values())[0]
        assert reason is FailureReason.ANTI_AFFINITY

    def test_cross_app_conflict_respected(self):
        apps = make_apps((1, 4.0, 0, False, (1,)), (1, 4.0, 0, False, ()))
        result, state = run(apps, n_machines=2)
        m0 = result.placements[0]
        m1 = result.placements[1]
        assert m0 != m1

    def test_resource_exhaustion_reported(self):
        apps = make_apps((3, 32.0, 0, False, ()))
        result, _ = run(apps, n_machines=2)
        assert result.n_undeployed == 1
        assert list(result.undeployed.values())[0] is FailureReason.RESOURCES


class TestPriorityOrdering:
    def test_high_priority_wins_contended_slot(self):
        """Both apps fit only on the single free machine; the
        high-priority app must get it even when submitted last."""
        apps = make_apps(
            (1, 32.0, 0, False, ()),  # low priority, submitted first
            (1, 32.0, 3, False, ()),  # high priority, submitted last
        )
        result, _ = run(apps, n_machines=1, config=AladdinConfig(final_repair=False))
        assert 1 in result.placements
        assert 0 in result.undeployed

    def test_weights_derived_for_stream(self):
        apps = make_apps((1, 4.0, 0, False, ()), (1, 2.0, 2, False, ()))
        sched = AladdinScheduler()
        state = state_for(apps)
        sched.schedule(containers_for(apps), state)
        assert sched.last_weights[0] == 1.0
        assert sched.last_weights[2] >= 16.0

    def test_priority_only_reorders_within_window(self):
        """Across windows the arrival stream is authoritative."""
        apps = make_apps(
            (1, 32.0, 0, False, ()),
            (1, 32.0, 3, False, ()),
        )
        cfg = AladdinConfig(
            window_apps=1, enable_preemption=False, enable_migration=False,
            final_repair=False,
        )
        result, _ = run(apps, n_machines=1, config=cfg)
        # Window 1 holds only the low-priority app: it takes the machine.
        assert 0 in result.placements
        assert 1 in result.undeployed


class TestIlDlInvariance:
    @pytest.mark.parametrize("il", [True, False])
    @pytest.mark.parametrize("dl", [True, False])
    def test_prunings_do_not_change_placements(self, il, dl, small_trace):
        from repro.trace.arrival import ArrivalOrder, order_containers
        from repro.cluster.state import ClusterState
        from repro.cluster.topology import build_cluster

        containers = order_containers(small_trace, ArrivalOrder.TRACE)
        baseline_cfg = AladdinConfig(enable_il=True, enable_dl=True)
        variant_cfg = AladdinConfig(enable_il=il, enable_dl=dl)
        placements = []
        for cfg in (baseline_cfg, variant_cfg):
            topo = build_cluster(small_trace.config.n_machines)
            state = ClusterState(topo, small_trace.constraints)
            result = AladdinScheduler(cfg).schedule(containers, state)
            placements.append(result.placements)
        assert placements[0] == placements[1]

    def test_il_explores_less(self, small_trace):
        from repro.trace.arrival import ArrivalOrder, order_containers
        from repro.cluster.state import ClusterState
        from repro.cluster.topology import build_cluster

        containers = order_containers(small_trace, ArrivalOrder.TRACE)
        explored = {}
        for il in (True, False):
            topo = build_cluster(small_trace.config.n_machines)
            state = ClusterState(topo, small_trace.constraints)
            cfg = AladdinConfig(enable_il=il)
            result = AladdinScheduler(cfg).schedule(containers, state)
            explored[il] = result.explored
        assert explored[True] < explored[False]


class TestStateConsistency:
    def test_placements_match_state(self, small_trace):
        from repro.sim import Simulator

        sim = Simulator(small_trace)
        result = sim.run(AladdinScheduler())
        # Simulator._check_consistency already asserts; double-check here.
        assert set(result.schedule.placements) == set(result.state.assignment)

    def test_no_anti_affinity_violations_ever(self, small_trace):
        from repro.sim import Simulator

        sim = Simulator(small_trace)
        result = sim.run(AladdinScheduler())
        assert result.state.anti_affinity_violations() == 0
        assert result.metrics.n_violating_placements == 0

    def test_weight_base_sweep_same_outcomes(self, small_trace):
        """The paper's 16/32/64/128 sweep (Fig. 9a-d): any compliant
        weight base yields the same placement quality — individual
        rescue decisions may differ (the Equation-9 guard scales with
        the weights) but violations and undeployed counts must not."""
        from repro.sim import Simulator

        sim = Simulator(small_trace)
        outcomes = set()
        for base in (16, 32, 64, 128):
            r = sim.run(AladdinScheduler(AladdinConfig(priority_weight_base=base)))
            outcomes.add(
                (r.metrics.n_undeployed, r.metrics.n_violating_placements)
            )
        assert len(outcomes) == 1
