"""Priority weight (Equations 3–5) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.container import Application
from repro.core.weights import (
    classify_by_priority,
    derive_priority_weights,
    verify_no_inversion,
    weighted_flow_value,
)


def app(i, cpu, prio):
    return Application(app_id=i, n_containers=1, cpu=cpu, mem_gb=cpu * 2, priority=prio)


class TestClassification:
    def test_partitions_by_priority(self):
        apps = [app(0, 1, 0), app(1, 2, 0), app(2, 4, 1)]
        classes = classify_by_priority(apps)
        assert sorted(classes) == [0, 1]
        assert len(classes[0]) == 2


class TestDerivation:
    def test_lowest_class_weight_is_one(self):
        weights = derive_priority_weights([app(0, 4, 0), app(1, 8, 2)])
        assert weights[0] == 1.0

    def test_base_floor_matches_paper_setting(self):
        """Paper: max demand 16 CPUs -> weights 16 with base 16."""
        apps = [app(0, 16, 0), app(1, 1, 1)]
        weights = derive_priority_weights(apps, base=16)
        assert weights[1] >= 16.0

    def test_ratio_exceeds_demand_ratio(self):
        # prev class max demand 16, next class min demand 1:
        # ratio must exceed 16 to prevent inversion.
        apps = [app(0, 16, 0), app(1, 1, 1)]
        weights = derive_priority_weights(apps, base=1)
        assert weights[1] * 1 > weights[0] * 16

    def test_chained_classes_monotone(self):
        apps = [app(i, 2**i, i) for i in range(4)]
        weights = derive_priority_weights(apps)
        values = [weights[i] for i in range(4)]
        assert values == sorted(values)
        assert verify_no_inversion(weights, apps)

    def test_empty_workload(self):
        assert derive_priority_weights([]) == {}

    def test_rejects_base_below_one(self):
        with pytest.raises(ValueError):
            derive_priority_weights([app(0, 1, 0)], base=0.5)

    def test_sparse_priority_levels(self):
        apps = [app(0, 4, 0), app(1, 4, 7)]
        weights = derive_priority_weights(apps)
        assert set(weights) == {0, 7}
        assert verify_no_inversion(weights, apps)


class TestWeightedFlow:
    def test_scales_flow(self):
        assert weighted_flow_value({0: 1.0, 1: 16.0}, 1, 4.0) == 64.0

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError, match="priority class 9"):
            weighted_flow_value({0: 1.0}, 9, 1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from([1, 2, 4, 8, 16]), st.integers(0, 3)),
        min_size=1,
        max_size=12,
    ),
    st.sampled_from([1.0, 16.0, 32.0, 64.0, 128.0]),
)
def test_no_inversion_for_any_workload_and_base(specs, base):
    """Equation 5's guarantee holds for every demand mix and any base,
    including the paper's 16/32/64/128 sweep."""
    apps = [app(i, cpu, prio) for i, (cpu, prio) in enumerate(specs)]
    weights = derive_priority_weights(apps, base=base)
    assert verify_no_inversion(weights, apps)
