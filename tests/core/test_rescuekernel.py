"""Vectorized rescue kernel vs the legacy per-machine loop.

Every test builds one scenario twice and runs the rescue once through
the legacy :class:`~repro.core.migration.RescuePlanner` loop and once
through the :class:`~repro.core.rescuekernel.RescueKernel`, then
asserts the *decisions* are bit-identical: same success verdict, same
freed machine, same victims in the same order, same failure
classification, same post-rescue cluster state.  Costs (``explored``)
legitimately differ — the kernel answers admit masks from its
dominance cache — but the per-strategy machine-visit count
(``scanned``) must match, since both paths walk the same candidate
orders.

The churn-level form of the same contract lives in
``tests/test_differential.py`` (the rescue axis); these are the
small-oracle versions where the expected decision is hand-checkable.
"""

import numpy as np

from repro.base import FailureReason
from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.config import AladdinConfig
from repro.core.migration import RescuePlanner
from repro.core.rescuekernel import RescueKernel


def container(cid, app, cpu, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


def make_state(rules, n_machines=2, cpu=32.0, machines_per_rack=None):
    kwargs = {"machine": MachineSpec(cpu=cpu, mem_gb=cpu * 2)}
    if machines_per_rack is not None:
        kwargs["machines_per_rack"] = machines_per_rack
    topo = build_cluster(n_machines, **kwargs)
    constraints = rules if isinstance(rules, ConstraintSet) else ConstraintSet(rules)
    return ClusterState(topo, constraints)


def run_pair(build_state, blocked, config=None, weights=None, **rescue_kw):
    """Run one scenario through the loop and the kernel; assert parity.

    Returns ``(legacy_outcome, kernel_outcome, kernel)`` so tests can
    add scenario-specific assertions on top of the parity checks.
    """
    config = config or AladdinConfig()
    outcomes = []
    states = []
    kernel = RescueKernel()
    for use_kernel in (False, True):
        state = build_state()
        planner = RescuePlanner(
            state, config, weights=weights,
            kernel=kernel if use_kernel else None,
        )
        demand = blocked.demand_vector(state.topology.resources)
        outcomes.append(planner.rescue(blocked, demand, **rescue_kw))
        states.append(state)
    legacy, kern = outcomes
    assert kern.ok == legacy.ok
    assert kern.machine_id == legacy.machine_id
    assert kern.migrations == legacy.migrations
    assert [c.container_id for c in kern.preempted] == [
        c.container_id for c in legacy.preempted
    ], "victim sets or their order diverged"
    assert kern.failure == legacy.failure
    assert kern.scanned == legacy.scanned, "strategy-loop visit counts diverged"
    assert states[0].assignment == states[1].assignment
    assert np.array_equal(states[0].available, states[1].available)
    assert kernel.invocations == 1
    return legacy, kern, kernel


class TestBlockerMigration:
    def test_fig3b_blocker_migrates(self):
        """Fig. 3(b): the anti-affinity blocker moves to make room."""
        def build():
            state = make_state([AntiAffinityRule(0, 1)], n_machines=2)
            state.deploy(container(0, app=0, cpu=4, prio=1), 0)
            state.deploy(container(9, app=5, cpu=28), 1)
            return state

        b = container(1, app=1, cpu=20, prio=0)
        legacy, kern, _ = run_pair(build, b)
        assert kern.ok and kern.machine_id == 0
        assert kern.migrations == 1

    def test_blocker_constraints_respected(self):
        """Migration fails identically when the blocker's own rules
        forbid every relocation target."""
        def build():
            state = make_state(
                [AntiAffinityRule(0, 1), AntiAffinityRule(0, 2)], n_machines=2
            )
            state.deploy(container(0, app=0, cpu=4), 0)
            state.deploy(container(1, app=2, cpu=4), 1)
            state.deploy(container(3, app=5, cpu=10), 1)
            return state

        b = container(2, app=1, cpu=20)
        legacy, kern, _ = run_pair(build, b)
        assert not kern.ok
        assert kern.failure is FailureReason.ANTI_AFFINITY


class TestConsolidation:
    def test_fig7_fragmented_small_tasks_consolidate(self):
        def build():
            state = make_state([], n_machines=2, cpu=8.0)
            state.deploy(container(0, app=0, cpu=3), 0)
            state.deploy(container(1, app=1, cpu=3), 1)
            return state

        big = container(2, app=2, cpu=6)
        legacy, kern, _ = run_pair(build, big)
        assert kern.ok
        assert kern.migrations == 1

    def test_mover_limit_respected(self):
        """Needing more movers than ``max_migrations_per_container``
        fails in both paths; raising the limit succeeds in both."""
        def build():
            state = make_state([], n_machines=2, cpu=8.0)
            for i in range(4):
                state.deploy(container(i, app=i, cpu=1), 0)
            state.deploy(container(9, app=9, cpu=5), 1)
            return state

        big = container(10, app=10, cpu=7)
        tight = AladdinConfig(
            max_migrations_per_container=1, enable_preemption=False
        )
        legacy, kern, _ = run_pair(build, big, config=tight)
        assert not kern.ok
        roomy = AladdinConfig(
            max_migrations_per_container=4, enable_preemption=False
        )
        legacy, kern, _ = run_pair(build, big, config=roomy)
        assert kern.ok


class TestPreemption:
    def test_victim_order_matches(self):
        """Several lower-priority residents must go: the kernel evicts
        the same victims in the same (priority, cpu) order."""
        def build():
            state = make_state([AntiAffinityRule(0, 9)], n_machines=1, cpu=16.0)
            state.deploy(container(0, app=9, cpu=2, prio=0), 0)
            state.deploy(container(1, app=8, cpu=6, prio=1), 0)
            state.deploy(container(2, app=7, cpu=6, prio=0), 0)
            return state

        high = container(3, app=0, cpu=12, prio=2)
        legacy, kern, _ = run_pair(build, high)
        assert kern.ok
        assert len(kern.preempted) >= 2

    def test_low_never_displaces_high(self):
        def build():
            state = make_state([AntiAffinityRule(0, 1)], n_machines=1)
            state.deploy(container(0, app=1, cpu=4, prio=2), 0)
            return state

        low = container(1, app=0, cpu=4, prio=0)
        legacy, kern, _ = run_pair(build, low)
        assert not kern.ok

    def test_relocation_preferred_over_eviction(self):
        def build():
            state = make_state([AntiAffinityRule(0, 1)], n_machines=2)
            state.deploy(container(0, app=1, cpu=4, prio=0), 0)
            state.deploy(container(9, app=5, cpu=8), 1)
            state.deploy(container(8, app=6, cpu=24), 0)
            state.deploy(container(7, app=7, cpu=20), 1)
            return state

        high = container(1, app=0, cpu=4, prio=2)
        legacy, kern, _ = run_pair(build, high)
        assert kern.ok and kern.machine_id == 0
        assert kern.preempted == []
        assert kern.migrations == 1

    def test_equation9_guard(self):
        """The weighted-flow guard (Equation 9) vetoes a preemption
        whose victims carry at least the preemptor's weighted flow —
        in both paths, with the identical weight arithmetic."""
        def build():
            state = make_state([AntiAffinityRule(0, 1)], n_machines=1, cpu=8.0)
            state.deploy(container(0, app=1, cpu=4, prio=0), 0)
            state.deploy(container(9, app=5, cpu=4, prio=3), 0)
            return state

        high = container(1, app=0, cpu=4, prio=2)
        # Victim flow 1.0 * 4 >= preemptor flow 1.0 * 4: guard trips.
        legacy, kern, _ = run_pair(
            build, high, weights={0: 1.0, 2: 1.0, 3: 4.0}
        )
        assert not kern.ok
        # Preemptor weight high enough: the same preemption is allowed.
        legacy, kern, _ = run_pair(
            build, high, weights={0: 1.0, 2: 2.0, 3: 8.0}
        )
        assert kern.ok
        assert [c.container_id for c in kern.preempted] == [0]


class TestRackScopedRules:
    def test_blocker_relocates_to_free_rack(self):
        """A rack-scoped within-rule blocker may only move to a rack
        not already hosting its application; with rack 1 free of app 7
        the migration lands there and both paths pick machine 0."""
        def build():
            cs = ConstraintSet([AntiAffinityRule(1, 7)])
            cs.add_rule(AntiAffinityRule(7, 7), scope="rack")
            state = make_state(
                cs, n_machines=4, cpu=8.0, machines_per_rack=2
            )
            state.deploy(container(0, app=7, cpu=2), 0)   # rack 0
            state.deploy(container(10, app=6, cpu=7), 1)  # rack 0
            state.deploy(container(11, app=6, cpu=7), 2)  # rack 1
            state.deploy(container(12, app=5, cpu=3), 3)  # rack 1
            return state

        b = container(1, app=1, cpu=6)
        legacy, kern, _ = run_pair(build, b)
        assert kern.ok and kern.machine_id == 0
        assert kern.migrations == 1

    def test_occupied_rack_blocks_relocation(self):
        """With every roomy machine in a rack that already hosts the
        blocker's application, the within-rack rule kills the move —
        and no other strategy can rescue."""
        def build():
            cs = ConstraintSet(
                [AntiAffinityRule(1, 7), AntiAffinityRule(5, 7)]
            )
            cs.add_rule(AntiAffinityRule(7, 7), scope="rack")
            state = make_state(
                cs, n_machines=4, cpu=8.0, machines_per_rack=2
            )
            state.deploy(container(0, app=7, cpu=2), 0)   # rack 0
            state.deploy(container(10, app=6, cpu=7), 1)  # rack 0
            state.deploy(container(2, app=7, cpu=1), 2)   # rack 1: app 7 too
            state.deploy(container(11, app=6, cpu=6), 2)
            state.deploy(container(12, app=5, cpu=3), 3)  # rack 1
            return state

        b = container(1, app=1, cpu=6)
        legacy, kern, _ = run_pair(build, b)
        assert not kern.ok
        assert kern.failure is FailureReason.ANTI_AFFINITY


class TestKernelBookkeeping:
    def test_ledger_rows_reused_across_attempts(self):
        """A second rescue on untouched machines answers resident
        summaries from the ledger instead of rebuilding them."""
        state = make_state([AntiAffinityRule(0, 1), AntiAffinityRule(2, 1)],
                           n_machines=3, cpu=8.0)
        state.deploy(container(0, app=0, cpu=2), 0)
        state.deploy(container(1, app=2, cpu=2), 1)
        state.deploy(container(9, app=5, cpu=7), 2)
        kernel = RescueKernel()
        planner = RescuePlanner(state, AladdinConfig(), kernel=kernel)
        b = container(2, app=1, cpu=7)
        first = planner.rescue(b, b.demand_vector(state.topology.resources))
        builds_after_first = kernel.ledger.builds
        if first.ok:
            state.deploy(b, first.machine_id)
        b2 = container(3, app=1, cpu=7)
        planner.rescue(b2, b2.demand_vector(state.topology.resources))
        assert kernel.invocations == 2
        # Machines untouched by the first rescue keep their rows.
        assert kernel.ledger.builds < 2 * builds_after_first
