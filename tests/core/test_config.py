"""AladdinConfig validation and naming."""

import pytest

from repro.core.config import AladdinConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(priority_weight_base=0.5),
            dict(window_apps=0),
            dict(migration_candidates=-1),
            dict(max_migrations_per_container=-1),
        ],
    )
    def test_rejects_invalid(self, kw):
        with pytest.raises(ValueError):
            AladdinConfig(**kw)

    def test_frozen(self):
        cfg = AladdinConfig()
        with pytest.raises(AttributeError):
            cfg.window_apps = 5


class TestVariantName:
    def test_full_name(self):
        assert AladdinConfig().variant_name() == "Aladdin(16)+IL+DL"

    def test_without_prunings(self):
        cfg = AladdinConfig(enable_il=False, enable_dl=False)
        assert cfg.variant_name() == "Aladdin(16)"

    def test_il_only(self):
        cfg = AladdinConfig(enable_dl=False)
        assert cfg.variant_name() == "Aladdin(16)+IL"

    def test_base_in_name(self):
        assert "128" in AladdinConfig(priority_weight_base=128).variant_name()
