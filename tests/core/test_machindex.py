"""The incrementally maintained packed-first machine index.

:class:`repro.core.machindex.MachineIndex` promises its candidate order
is *bit-identical* to sorting ``flatnonzero(mask)`` by the schedulers'
``_scores`` — the contract that lets the batch kernel claim
placement-identical results.  These tests check the order against that
scratch-built ground truth after every kind of state mutation, and pin
down the dirty-log protocol the resync rides on: each mutation dirties
exactly the touched machines.
"""

import numpy as np
import pytest

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import (
    MachineSpec,
    build_cluster,
    build_heterogeneous_cluster,
)
from repro.core.machindex import MachineIndex, affinity_tier, packing_keys
from repro.core.scheduler import _scores
from repro.sim.faults import fail_machines


def fresh_state(n_machines=8, apps=(), machines_per_rack=4):
    return ClusterState(
        build_cluster(n_machines, machines_per_rack=machines_per_rack),
        ConstraintSet.from_applications(list(apps)),
    )


def deploy(state, app_id, machine_id, cpu=4.0, mem=8.0, cid=None):
    if cid is None:
        deploy._next = getattr(deploy, "_next", 0) + 1
        cid = 20_000 + deploy._next
    c = Container(container_id=cid, app_id=app_id, instance=0, cpu=cpu, mem_gb=mem)
    state.deploy(c, machine_id)
    return cid


def ground_truth(state, mask=None, affinity=None):
    """The scratch-built order both engines would compute."""
    ids = (
        np.flatnonzero(mask)
        if mask is not None
        else np.arange(state.n_machines, dtype=np.int64)
    )
    return ids[np.argsort(_scores(state, ids, affinity), kind="stable")]


# ----------------------------------------------------------------------
# dirty-log protocol: every mutation dirties exactly the touched machines
# ----------------------------------------------------------------------
class TestDirtyArraySince:
    def test_deploy_dirties_exactly_the_target(self):
        state = fresh_state()
        v = state.version
        deploy(state, app_id=0, machine_id=5)
        assert state.dirty_array_since(v).tolist() == [5]

    def test_evict_dirties_exactly_the_host(self):
        state = fresh_state()
        cid = deploy(state, app_id=0, machine_id=3)
        v = state.version
        state.evict(cid)
        assert state.dirty_array_since(v).tolist() == [3]

    def test_migrate_dirties_exactly_source_and_target(self):
        state = fresh_state()
        cid = deploy(state, app_id=0, machine_id=6)
        v = state.version
        state.migrate(cid, 1)
        assert state.dirty_array_since(v).tolist() == [1, 6]

    def test_fault_dirties_exactly_the_failed_machine(self):
        state = fresh_state()
        deploy(state, app_id=0, machine_id=2)
        deploy(state, app_id=1, machine_id=2)
        v = state.version
        fail_machines(state, [2])
        assert state.dirty_array_since(v).tolist() == [2]

    def test_no_mutation_yields_the_empty_array(self):
        state = fresh_state()
        dirty = state.dirty_array_since(state.version)
        assert isinstance(dirty, np.ndarray) and dirty.size == 0

    def test_compaction_yields_none(self):
        state = fresh_state(n_machines=2)
        v0 = state.version
        for _ in range(state._log_limit + 10):
            state.touch(0)
        assert state.dirty_array_since(v0) is None

    def test_agrees_with_dirty_since(self):
        state = fresh_state()
        v = state.version
        deploy(state, app_id=0, machine_id=1)
        cid = deploy(state, app_id=0, machine_id=4)
        state.migrate(cid, 7)
        assert set(state.dirty_array_since(v).tolist()) == state.dirty_since(v)


# ----------------------------------------------------------------------
# order maintenance
# ----------------------------------------------------------------------
class TestMachineIndexOrder:
    def test_initial_order_matches_scratch_argsort(self):
        state = fresh_state()
        index = MachineIndex()
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        assert index.rebuilds == 1

    def test_resync_after_each_mutation_kind(self):
        state = fresh_state()
        index = MachineIndex()
        index.candidates(state)
        cid = deploy(state, app_id=0, machine_id=5)
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        state.migrate(cid, 2)
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        state.evict(cid)
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        fail_machines(state, [0])
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        assert index.rebuilds == 1, "mutations must resync, not rebuild"
        assert index.resyncs >= 3

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_churn_stays_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        state = fresh_state(n_machines=16, machines_per_rack=4)
        index = MachineIndex()
        live = []
        for _ in range(60):
            op = rng.random()
            if op < 0.55 or not live:
                m = int(rng.integers(0, 16))
                cpu = float(rng.choice([1.0, 2.0, 4.0]))
                if state.fits(np.array([cpu, cpu * 2]), m):
                    live.append(deploy(state, 0, m, cpu=cpu, mem=cpu * 2))
            elif op < 0.8:
                cid = live.pop(int(rng.integers(0, len(live))))
                state.evict(cid)
            else:
                cid = live[int(rng.integers(0, len(live)))]
                target = int(rng.integers(0, 16))
                demand = state.container(cid).demand_vector(
                    state.topology.resources
                )
                if state.fits(demand, target) and state.assignment[cid] != target:
                    state.migrate(cid, target)
            assert (
                index.candidates(state).tolist()
                == ground_truth(state).tolist()
            )

    def test_mask_restricts_without_reordering(self):
        state = fresh_state()
        deploy(state, app_id=0, machine_id=2, cpu=8.0)
        deploy(state, app_id=0, machine_id=6, cpu=2.0)
        index = MachineIndex()
        mask = np.zeros(state.n_machines, dtype=bool)
        mask[[1, 2, 6]] = True
        assert (
            index.candidates(state, mask).tolist()
            == ground_truth(state, mask).tolist()
        )

    def test_affinity_promotes_affine_hosts_first(self):
        apps = [Application(0, 2, 4.0, 8.0, affinities=frozenset({1})),
                Application(1, 1, 4.0, 8.0)]
        state = fresh_state(apps=apps)
        deploy(state, app_id=1, machine_id=7)
        index = MachineIndex()
        affinity = state.affinity_mask(0)
        got = index.candidates(state, affinity=affinity)
        assert got.tolist() == ground_truth(state, affinity=affinity).tolist()
        assert got[0] == 7

    def test_heterogeneous_cluster_falls_back_to_exact_scoring(self):
        # A machine with more than the homogeneous 32 CPUs breaks the
        # tier-dominance shortcut; the index must detect it and re-score
        # exactly rather than return a subtly different partition.
        topo = build_heterogeneous_cluster(
            [(1, MachineSpec(cpu=64.0, mem_gb=128.0)),
             (3, MachineSpec(cpu=8.0, mem_gb=16.0))],
            machines_per_rack=2,
        )
        apps = [Application(0, 2, 4.0, 8.0, affinities=frozenset({1})),
                Application(1, 1, 4.0, 8.0)]
        state = ClusterState(topo, ConstraintSet.from_applications(apps))
        deploy(state, app_id=1, machine_id=1)
        index = MachineIndex()
        affinity = state.affinity_mask(0)
        assert (
            index.candidates(state, affinity=affinity).tolist()
            == ground_truth(state, affinity=affinity).tolist()
        )

    def test_key_collision_ties_break_by_machine_id(self):
        # Two machines with identical remaining capacity must keep the
        # ascending-id order through an incremental reinsertion.
        state = fresh_state()
        index = MachineIndex()
        index.candidates(state)
        deploy(state, app_id=0, machine_id=6, cpu=4.0)
        deploy(state, app_id=0, machine_id=3, cpu=4.0)
        got = index.candidates(state)
        assert got.tolist() == ground_truth(state).tolist()
        assert list(got[:2]) == [3, 6]

    def test_rebind_to_new_state_rebuilds(self):
        state_a = fresh_state()
        state_b = fresh_state()
        deploy(state_b, app_id=0, machine_id=0)
        index = MachineIndex()
        index.candidates(state_a)
        got = index.candidates(state_b)
        assert got.tolist() == ground_truth(state_b).tolist()
        assert index.rebuilds == 2

    def test_compacted_log_rebuilds_not_stales(self):
        state = fresh_state(n_machines=2)
        index = MachineIndex()
        index.candidates(state)
        for _ in range(state._log_limit + 10):
            state.touch(0)
        assert index.candidates(state).tolist() == ground_truth(state).tolist()
        assert index.rebuilds == 2

    def test_keys_helpers_match_scores(self):
        state = fresh_state()
        deploy(state, app_id=0, machine_id=1, cpu=3.0)
        ids = np.arange(state.n_machines, dtype=np.int64)
        assert np.array_equal(packing_keys(state, ids), _scores(state, ids, None))
        assert affinity_tier(state.n_machines) > packing_keys(state, ids).max()
