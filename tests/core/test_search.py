"""FlowPathSearch: the reference flow-network engine.

The key property: on any workload, the literal Algorithm-1 path search
over the layered network produces exactly the same placements as the
vectorised production engine, and its accumulated augmenting paths form
a valid flow.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler, FlowPathSearch


def run_both(apps, n_machines=6, config=None):
    config = config or AladdinConfig()
    results = []
    for engine_cls in (AladdinScheduler, FlowPathSearch):
        topo = build_cluster(n_machines, machines_per_rack=3)
        state = ClusterState(topo, ConstraintSet.from_applications(apps))
        engine = engine_cls(config)
        result = engine.schedule(containers_of(apps), state)
        results.append((engine, result, state))
    return results


class TestEngineEquivalence:
    def test_simple_workload(self):
        apps = [
            Application(0, 3, 4.0, 8.0, anti_affinity_within=True),
            Application(1, 2, 8.0, 16.0),
            Application(2, 1, 16.0, 32.0, conflicts=frozenset({1})),
        ]
        (_, r_vec, _), (_, r_flow, _) = run_both(apps)
        assert r_vec.placements == r_flow.placements
        assert set(r_vec.undeployed) == set(r_flow.undeployed)

    def test_flow_validates(self):
        apps = [Application(0, 4, 4.0, 8.0, anti_affinity_within=True)]
        topo = build_cluster(6, machines_per_rack=3)
        state = ClusterState(topo, ConstraintSet.from_applications(apps))
        engine = FlowPathSearch()
        engine.schedule(containers_of(apps), state)
        engine.validate()  # Equations 1-2 hold on the layered network

    def test_validate_requires_a_run(self):
        with pytest.raises(RuntimeError):
            FlowPathSearch().validate()


@st.composite
def workloads(draw):
    n_apps = draw(st.integers(1, 6))
    apps = []
    for i in range(n_apps):
        conflicts = frozenset(
            j for j in range(i) if draw(st.booleans()) and draw(st.booleans())
        )
        apps.append(
            Application(
                app_id=i,
                n_containers=draw(st.integers(1, 4)),
                cpu=float(draw(st.sampled_from([1, 2, 4, 8, 16]))),
                mem_gb=2.0 * draw(st.sampled_from([1, 2, 4, 8, 16])),
                priority=draw(st.integers(0, 2)),
                anti_affinity_within=draw(st.booleans()),
                conflicts=conflicts,
            )
        )
    return apps


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_engines_agree_on_random_workloads(apps):
    (_, r_vec, s_vec), (_, r_flow, s_flow) = run_both(apps)
    assert r_vec.placements == r_flow.placements
    assert set(r_vec.undeployed) == set(r_flow.undeployed)
    assert s_vec.anti_affinity_violations() == 0
    assert s_flow.anti_affinity_violations() == 0


@settings(max_examples=20, deadline=None)
@given(workloads())
def test_flow_engine_never_violates(apps):
    topo = build_cluster(5, machines_per_rack=5)
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    FlowPathSearch().schedule(containers_of(apps), state)
    assert state.anti_affinity_violations() == 0
