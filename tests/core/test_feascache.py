"""The cross-round feasibility cache and the dirty-log that feeds it.

Unit coverage for :class:`repro.core.feascache.FeasibilityCache` and
:class:`repro.cluster.state.ClusterState` change tracking, plus the
regression scenarios the ISSUE singles out: cache invalidation under
preemption and under rescue migration — the ``core/scheduler.py`` path
where "the isomorphism cache is rebuilt from live state" after a rescue
mutates machines mid-block.
"""

import numpy as np
import pytest

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, Container, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler
from repro.core.feascache import FeasibilityCache


def fresh_state(n_machines=6, apps=(), machines_per_rack=3):
    return ClusterState(
        build_cluster(n_machines, machines_per_rack=machines_per_rack),
        ConstraintSet.from_applications(list(apps)),
    )


def deploy(state, app_id, machine_id, cpu=4.0, mem=8.0, cid=None):
    if cid is None:
        deploy._next = getattr(deploy, "_next", 0) + 1
        cid = 10_000 + deploy._next
    c = Container(container_id=cid, app_id=app_id, instance=0, cpu=cpu, mem_gb=mem)
    state.deploy(c, machine_id)
    return cid


# ----------------------------------------------------------------------
# ClusterState change tracking
# ----------------------------------------------------------------------
class TestDirtyLog:
    def test_every_mutation_bumps_version_and_logs_machine(self):
        state = fresh_state()
        v0 = state.version
        cid = deploy(state, app_id=0, machine_id=2)
        assert state.version == v0 + 1
        assert state.dirty_since(v0) == {2}
        state.evict(cid)
        assert state.version == v0 + 2
        assert state.dirty_since(v0) == {2}

    def test_migrate_dirties_source_and_target(self):
        state = fresh_state()
        cid = deploy(state, app_id=0, machine_id=1)
        v = state.version
        state.migrate(cid, 4)
        assert state.dirty_since(v) == {1, 4}

    def test_dirty_since_current_version_is_empty(self):
        state = fresh_state()
        deploy(state, app_id=0, machine_id=0)
        assert state.dirty_since(state.version) == set()

    def test_touch_records_out_of_band_mutations(self):
        state = fresh_state()
        v = state.version
        state.available[3] = 0.0
        state.touch(3)
        assert state.dirty_since(v) == {3}

    def test_compaction_returns_none_for_ancient_consumers(self):
        state = fresh_state(n_machines=2)
        v0 = state.version
        for _ in range(state._log_limit + 10):
            state.touch(0)
        assert state.dirty_since(v0) is None
        # A consumer synced after compaction still gets exact answers.
        v_recent = state.version
        state.touch(1)
        assert state.dirty_since(v_recent) == {1}

    def test_snapshot_starts_a_fresh_identity(self):
        state = fresh_state()
        deploy(state, app_id=0, machine_id=0)
        clone = state.snapshot()
        assert clone.state_uid != state.state_uid
        assert clone.version == 0
        assert clone.dirty_since(0) == set()


# ----------------------------------------------------------------------
# FeasibilityCache unit behaviour
# ----------------------------------------------------------------------
UNCONSTRAINED = [
    Application(0, 2, 4.0, 8.0),
    Application(1, 2, 4.0, 8.0),  # same shape as app 0, also unconstrained
    Application(2, 1, 8.0, 16.0),
]
CONSTRAINED = [
    Application(3, 2, 4.0, 8.0, anti_affinity_within=True),
    Application(4, 1, 4.0, 8.0, conflicts=frozenset({3})),
    Application(5, 2, 4.0, 8.0, anti_affinity_within=True,
                anti_affinity_scope="rack"),
]
DEMAND = np.array([4.0, 8.0])


class TestFeasibilityCache:
    def test_reuse_gate_stores_on_first_recurrence_then_hits(self):
        # Adaptive insertion: the first sighting of a shape computes
        # without storing; the second stores; the third is a pure hit.
        state = fresh_state(apps=UNCONSTRAINED + CONSTRAINED)
        cache = FeasibilityCache()
        n = state.n_machines
        mask = cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.misses == n and cache.hits == 0
        assert len(cache) == 0, "a one-shot shape must not allocate"
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 0))
        again = cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.misses == 2 * n and cache.hits == 0
        assert len(cache) == 1
        assert np.array_equal(again, mask)
        third = cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.hits == n
        assert np.array_equal(third, mask)

    def test_returned_mask_is_a_private_copy(self):
        state = fresh_state(apps=UNCONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        second = cache.feasible_mask(state, DEMAND, app_id=0)  # stored now
        second[:] = False
        third = cache.feasible_mask(state, DEMAND, app_id=0)
        assert third.any(), "caller mutation corrupted the cached entry"

    def test_only_dirty_machines_recompute(self):
        state = fresh_state(apps=UNCONSTRAINED + CONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)  # entry stored
        deploy(state, app_id=2, machine_id=3, cpu=8.0, mem=16.0)
        cache.misses = cache.hits = 0
        mask = cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.misses == 1  # machine 3 only
        assert cache.hits == state.n_machines - 1
        assert cache.last_recomputed == 1
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 0))

    def test_unconstrained_apps_share_one_entry(self):
        state = fresh_state(apps=UNCONSTRAINED + CONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)  # entry stored
        assert len(cache) == 1
        cache.hits = 0
        mask = cache.feasible_mask(state, DEMAND, app_id=1)  # pure hit
        assert len(cache) == 1
        assert cache.hits == state.n_machines
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 1))

    def test_constrained_apps_share_the_dominance_entry(self):
        # The cached term (capacity dominance) is app-independent, so
        # constrained apps share it too; their blacklists are applied
        # live on top.  Three same-shape apps -> one entry, stored on
        # the shape's first recurrence.
        state = fresh_state(apps=UNCONSTRAINED + CONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=3)
        cache.feasible_mask(state, DEMAND, app_id=4)
        cache.feasible_mask(state, DEMAND, app_id=0)
        assert len(cache) == 1
        assert cache.hits == state.n_machines  # the third query only
        for app_id in (3, 4, 0):
            assert np.array_equal(
                cache.feasible_mask(state, DEMAND, app_id),
                state.feasible_mask(DEMAND, app_id),
            )

    def test_constrained_verdicts_track_blacklist_changes(self):
        apps = UNCONSTRAINED + CONSTRAINED
        state = fresh_state(apps=apps)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=4)
        # App 3 lands on machine 2: machine 2 is now forbidden for the
        # conflicting app 4, and the dirty-machine sync must see it.
        deploy(state, app_id=3, machine_id=2)
        mask = cache.feasible_mask(state, DEMAND, app_id=4)
        assert not mask[2]
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 4))

    def test_rack_scope_needs_no_invalidation_at_all(self):
        apps = UNCONSTRAINED + CONSTRAINED
        state = fresh_state(n_machines=6, apps=apps, machines_per_rack=3)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=5)
        cache.feasible_mask(state, DEMAND, app_id=5)  # entry stored
        # One container of rack-scoped app 5 lands on machine 1: every
        # machine of rack 0 (machines 0-2) becomes infeasible for its
        # sibling even though only machine 1 is in the dirty log — the
        # rack-wide prohibition comes from the live blacklist term, so
        # only the dirty machine's *dominance* verdict recomputes.
        deploy(state, app_id=5, machine_id=1)
        mask = cache.feasible_mask(state, DEMAND, app_id=5)
        assert cache.last_recomputed == 1  # dominance: machine 1 only
        assert not mask[:3].any()
        assert mask[3:].all()
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 5))

    def test_rebinding_to_a_new_state_resets(self):
        state_a = fresh_state(apps=UNCONSTRAINED)
        state_b = fresh_state(apps=UNCONSTRAINED)
        deploy(state_b, app_id=2, machine_id=0, cpu=8.0, mem=16.0)
        cache = FeasibilityCache()
        cache.feasible_mask(state_a, DEMAND, app_id=0)
        cache.feasible_mask(state_a, DEMAND, app_id=0)  # stored for a
        assert len(cache) == 1
        mask = cache.feasible_mask(state_b, DEMAND, app_id=0)
        assert np.array_equal(mask, state_b.feasible_mask(DEMAND, 0))
        assert len(cache) == 0  # state_a's entry and sightings dropped
        cache.feasible_mask(state_b, DEMAND, app_id=0)
        assert len(cache) == 1  # the recurrence re-stores against b

    def test_compacted_log_degrades_to_full_recompute(self):
        state = fresh_state(n_machines=2, apps=UNCONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)  # entry stored
        for _ in range(state._log_limit + 10):
            state.touch(0)
        cache.invalidations = 0
        mask = cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.invalidations == state.n_machines
        assert cache.last_recomputed == state.n_machines
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 0))

    def test_hit_rate(self):
        cache = FeasibilityCache()
        assert cache.hit_rate == 0.0
        state = fresh_state(apps=UNCONSTRAINED)
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_gap_cost_model_recomputes_wholesale(self):
        # An entry whose version gap exceeds the cost-model threshold
        # (max(SYNC_GAP_FLOOR, n/8)) is recomputed from scratch
        # (misses = invalidations = n) instead of slicing and deduping
        # the dirty log — and the verdicts stay exact either way.
        state = fresh_state(n_machines=4, apps=UNCONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        cache.feasible_mask(state, DEMAND, app_id=0)  # entry stored
        cid = deploy(state, app_id=2, machine_id=3, cpu=8.0, mem=16.0)
        threshold = max(
            FeasibilityCache.SYNC_GAP_FLOOR, state.n_machines >> 3
        )
        for _ in range(threshold):  # push the gap past the threshold
            state.touch(0)
        cache.hits = cache.misses = cache.invalidations = 0
        mask = cache.feasible_mask(state, DEMAND, app_id=0)
        n = state.n_machines
        assert (cache.hits, cache.misses, cache.invalidations) == (0, n, n)
        assert np.array_equal(mask, state.feasible_mask(DEMAND, 0))
        # A small gap still syncs incrementally.
        state.evict(cid)
        cache.hits = cache.misses = 0
        cache.feasible_mask(state, DEMAND, app_id=0)
        assert cache.misses == 1 and cache.hits == n - 1

    def test_checkpoint_preserves_reuse_sightings(self):
        # A shape seen once before the checkpoint must store on its
        # first sighting after restore, exactly as the uninterrupted
        # cache would — otherwise resumed runs drift observably.
        state = fresh_state(apps=UNCONSTRAINED)
        cache = FeasibilityCache()
        cache.feasible_mask(state, DEMAND, app_id=0)
        assert len(cache) == 0
        back = FeasibilityCache()
        back.restore(cache.checkpoint(), state.state_uid)
        back.feasible_mask(state, DEMAND, app_id=0)
        assert len(back) == 1


# ----------------------------------------------------------------------
# Regression: invalidation under preemption and rescue migration
# ----------------------------------------------------------------------
def run_rounds(engine, apps_by_round, n_machines, constraints_apps):
    """Schedule successive rounds on one persistent state."""
    state = fresh_state(n_machines=n_machines, apps=constraints_apps,
                        machines_per_rack=n_machines)
    results = []
    next_cid = 0
    for apps in apps_by_round:
        batch = containers_of(apps, start_id=next_cid)
        next_cid += len(batch)
        results.append(engine.schedule(batch, state))
    return results, state


class TestRescueInvalidation:
    """The scheduler's mid-block cache rebuild after a rescue must serve
    verdicts that reflect the rescue's mutations — cached and cold
    engines agree even when preemption/migration fire."""

    def compare_engines(self, apps_by_round, n_machines, constraints_apps):
        cached = AladdinScheduler()
        cold = AladdinScheduler(
            AladdinConfig(enable_feasibility_cache=False)
        )
        res_cached, state_cached = run_rounds(
            cached, apps_by_round, n_machines, constraints_apps
        )
        res_cold, state_cold = run_rounds(
            cold, apps_by_round, n_machines, constraints_apps
        )
        for rc, rf in zip(res_cached, res_cold):
            assert rc.placements == rf.placements
            assert rc.undeployed == rf.undeployed
        assert state_cached.assignment == state_cold.assignment
        assert np.allclose(state_cached.available, state_cold.available)
        return res_cached, cached

    def test_preemption_invalidates_cached_verdicts(self):
        # Round 1 fills both machines with low-priority containers;
        # round 2's high-priority within-anti-affinity pair must preempt
        # on each machine, rebuilding the IL cache after each rescue.
        # (The tiny low-priority app in round 2 puts both priority
        # classes into the round's Equation-5 guard weights, so the
        # high class's weighted flow strictly dominates its victims'.)
        low = [Application(0, 4, 16.0, 32.0, priority=0)]
        high = [
            Application(1, 2, 16.0, 32.0, priority=2,
                        anti_affinity_within=True),
            Application(2, 1, 1.0, 2.0, priority=0),
        ]
        results, engine = self.compare_engines(
            [low, high], n_machines=2, constraints_apps=low + high
        )
        assert results[1].preemptions >= 2
        placed_hi = {
            m for cid, m in results[1].placements.items() if cid < 6
        }
        assert len(placed_hi) == 2  # anti-affinity honoured through rescue
        assert engine.feas_cache.invalidations > 0
        assert engine.feas_cache.hits > 0

    def test_rescue_migration_invalidates_cached_verdicts(self):
        # m0 hosts apps 0 and 1 (free 20 CPU); m1 hosts app 2 (free 16)
        # because it conflicts with app 0.  A 24-CPU arrival fits
        # nowhere; the only rescue is consolidating app 1's small
        # container from m0 onto m1 (app 0 itself cannot move there —
        # the conflict blocks it), and the post-migration cache sync
        # must see m0's recovered capacity.
        round1 = [
            Application(0, 1, 8.0, 16.0),
            Application(1, 1, 4.0, 8.0),
            Application(2, 1, 16.0, 32.0, conflicts=frozenset({0})),
        ]
        round2 = [Application(3, 1, 24.0, 48.0)]
        results, engine = self.compare_engines(
            [round1, round2], n_machines=2,
            constraints_apps=round1 + round2,
        )
        assert results[1].migrations >= 1
        assert results[1].n_undeployed == 0
        # Under the reuse gate the 24/48 arrival's shape is one-shot:
        # its post-rescue re-query is the shape's second sighting, a
        # *fresh* recompute rather than an invalidation — the rescue's
        # mutations are seen either way, which the zero-failure outcome
        # and the cached ≡ cold comparison above prove.
        assert engine.feas_cache.misses > 0
