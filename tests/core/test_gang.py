"""Gang (all-or-nothing) application placement tests."""

import pytest

from repro.base import FailureReason
from repro.core import AladdinConfig, AladdinScheduler

from tests.conftest import containers_for, make_apps, state_for


def run(apps, n_machines=4, **cfg_kw):
    cfg = AladdinConfig(gang_scheduling=True, **cfg_kw)
    state = state_for(apps, n_machines=n_machines)
    return AladdinScheduler(cfg).schedule(containers_for(apps), state), state


class TestGangSemantics:
    def test_full_fit_deploys_normally(self):
        apps = make_apps((3, 4.0, 0, True, ()))
        result, state = run(apps)
        assert result.n_deployed == 3
        assert result.n_undeployed == 0

    def test_partial_fit_rolls_back_whole_app(self):
        # Five within-AA replicas, four machines: without gangs four
        # deploy; with gangs the whole application must be absent.
        apps = make_apps((5, 1.0, 0, True, ()))
        result, state = run(apps, n_machines=4)
        assert result.n_deployed == 0
        assert result.n_undeployed == 5
        assert state.used_machines() == 0

    def test_rollback_reason_propagates(self):
        apps = make_apps((5, 1.0, 0, True, ()))
        result, _ = run(apps, n_machines=4)
        assert set(result.undeployed.values()) == {FailureReason.ANTI_AFFINITY}

    def test_other_apps_unaffected_by_rollback(self):
        apps = make_apps(
            (5, 1.0, 0, True, ()),  # cannot fully fit -> rolled back
            (2, 4.0, 0, False, ()),  # must still deploy
        )
        result, state = run(apps, n_machines=4)
        placed_apps = {
            state.container(cid).app_id for cid in state.assignment
        }
        assert placed_apps == {1}
        assert result.n_deployed == 2

    def test_rollback_frees_capacity_for_later_apps(self):
        # The gang app would consume the whole cluster before failing;
        # its rollback must leave room for the next application.
        apps = make_apps(
            (5, 32.0, 0, True, ()),  # needs 5 machines, only 4 exist
            (4, 32.0, 0, False, ()),  # exactly fills the cluster
        )
        result, state = run(apps, n_machines=4)
        assert result.n_deployed == 4
        assert all(
            state.container(cid).app_id == 1 for cid in state.assignment
        )

    def test_default_config_is_partial(self):
        apps = make_apps((5, 1.0, 0, True, ()))
        state = state_for(apps, n_machines=4)
        result = AladdinScheduler().schedule(containers_for(apps), state)
        assert result.n_deployed == 4  # the paper's partial behaviour

    def test_gang_with_final_repair_stays_atomic(self):
        apps = make_apps(
            (2, 32.0, 0, True, ()),
            (5, 1.0, 0, True, ()),
        )
        result, state = run(apps, n_machines=4, final_repair=True)
        # Whatever the repair manages, no application may be partial.
        by_app = {}
        for cid in result.placements:
            c = state.container(cid)
            by_app.setdefault(c.app_id, 0)
            by_app[c.app_id] += 1
        for app_id, count in by_app.items():
            assert count == apps[app_id].n_containers
