"""Unit tests for the rack-sharded parallel sweep (repro.core.parallel).

The differential churn harness (tests/test_differential.py) proves the
end-to-end bit-identity claim; these tests pin the pieces it is built
from — the rack-aligned shard partition, the worker-local dirty-log
view, the serial-exact candidate merge, and the coordinator's
shared-memory lifecycle (adopt, rebind, restore on close).
"""

import numpy as np
import pytest

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState, ShardView
from repro.cluster.topology import (
    MachineSpec,
    build_cluster,
    build_heterogeneous_cluster,
)


def _hetero_cluster(per_rack):
    return build_heterogeneous_cluster(
        [
            (8, MachineSpec(cpu=8.0, mem_gb=16.0)),
            (4, MachineSpec(cpu=64.0, mem_gb=128.0)),
        ],
        machines_per_rack=per_rack,
    )
from repro.core import AladdinConfig, AladdinScheduler
from repro.core.batchkernel import block_plan
from repro.core.feascache import FeasibilityCache
from repro.core.machindex import MachineIndex
from repro.core.parallel import (
    ParallelSweep,
    _is_rack_partition,
    merge_candidates,
    rack_work_weights,
    shard_bounds,
)
from repro.core.scheduler import _scores


# ----------------------------------------------------------------------
# shard_bounds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_machines", [1, 7, 24, 40, 163, 4000])
@pytest.mark.parametrize("per_rack", [1, 4, 40])
@pytest.mark.parametrize("workers", [1, 2, 3, 8])
def test_shard_bounds_partition_and_rack_alignment(
    n_machines, per_rack, workers
):
    bounds = shard_bounds(n_machines, per_rack, workers)
    n_racks = -(-n_machines // per_rack)
    assert len(bounds) == min(workers, n_racks)
    # Exact partition of [0, n_machines).
    assert bounds[0][0] == 0
    assert bounds[-1][1] == n_machines
    for (lo_a, hi_a), (lo_b, _) in zip(bounds, bounds[1:]):
        assert hi_a == lo_b
        assert lo_a < hi_a
    # Rack alignment: no rack spans two shards.
    for lo, hi in bounds:
        assert lo % per_rack == 0
    # Near-even rack split: shard sizes differ by at most one rack.
    rack_sizes = [(hi - lo + per_rack - 1) // per_rack for lo, hi in bounds]
    assert max(rack_sizes) - min(rack_sizes) <= 1


def test_shard_bounds_rejects_zero_workers():
    with pytest.raises(ValueError):
        shard_bounds(10, 2, 0)


# ----------------------------------------------------------------------
# work-weighted shard sizing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("workers", [1, 2, 3, 8])
def test_weighted_shard_bounds_keep_partition_invariants(seed, workers):
    """Random non-negative weights never break the properties the
    merge's determinism proof needs: rack-aligned, non-empty,
    contiguous, exact partition."""
    rng = np.random.default_rng(seed)
    n_machines, per_rack = 52, 4
    n_racks = -(-n_machines // per_rack)
    weights = rng.exponential(5.0, n_racks) * (rng.random(n_racks) < 0.7)
    bounds = shard_bounds(n_machines, per_rack, workers, weights)
    assert _is_rack_partition(bounds, n_machines, per_rack)
    assert len(bounds) == min(workers, n_racks)


def test_weighted_shard_bounds_none_matches_legacy_exactly():
    """``rack_weights=None`` must reproduce the historical even split
    bit-for-bit — the opt-out path of the rebalance satellite."""
    for n_machines, per_rack, workers in [
        (24, 4, 3), (40, 4, 8), (163, 40, 2), (7, 1, 3),
    ]:
        assert shard_bounds(n_machines, per_rack, workers) == shard_bounds(
            n_machines, per_rack, workers, None
        )


def test_weighted_shard_bounds_move_toward_the_load():
    """Heavily loaded leading racks shrink the first shard: the cut
    equalises cumulative work, not rack count."""
    even = shard_bounds(32, 4, 2)
    skewed = shard_bounds(32, 4, 2, np.array([9.0, 9.0, 0, 0, 0, 0, 0, 0]))
    assert even == [(0, 16), (16, 32)]
    assert skewed == [(0, 8), (8, 32)]
    assert skewed[0][1] < even[0][1]
    # All-zero weights fall back to the baseline unit per rack — the
    # even split again, so the cuts stay defined on an idle cluster.
    assert shard_bounds(32, 4, 2, np.zeros(8)) == even


def test_weighted_shard_bounds_validation():
    with pytest.raises(ValueError, match="one entry per rack"):
        shard_bounds(32, 4, 2, np.ones(3))
    with pytest.raises(ValueError, match="non-negative"):
        shard_bounds(32, 4, 2, np.array([1.0, -1.0, 1, 1, 1, 1, 1, 1]))


def test_rack_work_weights_counts_residents_per_rack():
    apps = [Application(app_id=0, n_containers=5, cpu=1.0, mem_gb=1.0)]
    state = ClusterState(
        build_cluster(12, machines_per_rack=4),
        ConstraintSet.from_applications(apps),
    )
    cs = containers_of(apps)
    for c, machine in zip(cs, [0, 1, 1, 5, 8]):
        state.deploy(c, machine)
    assert rack_work_weights(state).tolist() == [3.0, 1.0, 1.0]
    state.evict(cs[0].container_id)
    assert rack_work_weights(state).tolist() == [2.0, 1.0, 1.0]


def test_is_rack_partition_rejects_malformed_bounds():
    assert _is_rack_partition([(0, 8), (8, 16)], 16, 4)
    assert not _is_rack_partition([], 16, 4)
    assert not _is_rack_partition([(0, 8)], 16, 4)          # short
    assert not _is_rack_partition([(0, 8), (12, 16)], 16, 4)  # gap
    assert not _is_rack_partition([(0, 8), (8, 8)], 16, 4)  # empty shard
    assert not _is_rack_partition([(0, 6), (6, 16)], 16, 4)  # unaligned


# ----------------------------------------------------------------------
# live rebalance: decisions unchanged, layout moved, checkpoint carries it
# ----------------------------------------------------------------------
def test_rebalance_moves_bounds_and_keeps_plans_serial_identical():
    apps = [Application(app_id=0, n_containers=12, cpu=2.0, mem_gb=4.0)]
    constraints = ConstraintSet.from_applications(apps)
    sweep = ParallelSweep(2)
    try:
        state = ClusterState(build_cluster(32, machines_per_rack=4), constraints)
        ref = ClusterState(build_cluster(32, machines_per_rack=4), constraints)
        demand = np.array([2.0, 4.0])
        by_app = containers_of(apps)
        # Pack the leading racks so density skews the weighted cut.
        for i, c in enumerate(by_app[:8]):
            for s in (state, ref):
                s.deploy(c, i % 4)
        sweep.plan_block(state, demand, 0, 1, None)  # attach
        before = list(sweep._bounds)
        moved = sweep.rebalance(state, rack_work_weights(state))
        assert moved
        assert sweep.rebalances == 1
        assert sweep._bounds != before
        assert _is_rack_partition(sweep._bounds, 32, 4)
        # A no-op re-cut with the same weights reports False.
        assert not sweep.rebalance(state, rack_work_weights(state))
        assert sweep.rebalances == 1
        # Decisions after the rebalance still equal the serial plan.
        machines, _, _ = sweep.plan_block(state, demand, 0, 4, None)
        expected = _serial_plan(ref, demand, 0, 4, None)
        assert machines.tolist() == expected.tolist()
    finally:
        sweep.close()


def test_checkpoint_carries_rebalanced_bounds_through_restore():
    constraints = ConstraintSet()
    sweep = ParallelSweep(2)
    restored = ParallelSweep(2)
    try:
        state = ClusterState(build_cluster(32, machines_per_rack=4), constraints)
        sweep.plan_block(state, np.array([1.0, 1.0]), 0, 1, None)
        weights = np.array([9.0, 9.0, 0, 0, 0, 0, 0, 0])
        assert sweep.rebalance(state, weights)
        rebalanced = list(sweep._bounds)
        payload = sweep.checkpoint()
        assert payload is not None
        assert [tuple(b) for b in payload["bounds"]] == rebalanced
        assert payload["rebalances"] == 1

        state2 = ClusterState(build_cluster(32, machines_per_rack=4), constraints)
        restored.restore(state2, payload)
        assert restored._bounds == rebalanced
        assert restored.rebalances == 1
        # The restored layout still produces serial-identical plans.
        machines, _, _ = restored.plan_block(
            state2, np.array([1.0, 1.0]), 0, 3, None
        )
        ref = ClusterState(build_cluster(32, machines_per_rack=4), constraints)
        expected = _serial_plan(ref, np.array([1.0, 1.0]), 0, 3, None)
        assert machines.tolist() == expected.tolist()
    finally:
        sweep.close()
        restored.close()


def test_scheduler_rebalance_shards_is_opt_in():
    apps = [Application(app_id=0, n_containers=6, cpu=2.0, mem_gb=4.0)]
    constraints = ConstraintSet.from_applications(apps)
    off = AladdinScheduler(AladdinConfig(workers=2))
    on = AladdinScheduler(AladdinConfig(workers=2, shard_rebalance=True))
    serial = AladdinScheduler()
    try:
        states = [
            ClusterState(build_cluster(32, machines_per_rack=4), constraints)
            for _ in range(3)
        ]
        batch = containers_of(apps)
        rounds = [
            e.schedule(list(batch), s)
            for e, s in zip((off, on, serial), states)
        ]
        assert rounds[0].placements == rounds[2].placements
        assert rounds[1].placements == rounds[2].placements
        # Gating: disabled config refuses, enabled one answers honestly.
        assert off.rebalance_shards(states[0]) is False
        assert off.parallel.rebalances == 0
        on.rebalance_shards(states[1])
        # Whatever the verdict, the next round still matches serial.
        more = containers_of(apps, start_id=100)
        again = [
            e.schedule(list(more), s)
            for e, s in zip((off, on, serial), states)
        ]
        assert again[0].placements == again[2].placements
        assert again[1].placements == again[2].placements
        # Serial engines expose the hook too, as a no-op.
        assert serial.rebalance_shards(states[2]) is False
    finally:
        off.close()
        on.close()
        serial.close()


# ----------------------------------------------------------------------
# ShardView dirty-log semantics
# ----------------------------------------------------------------------
def test_shard_view_tracks_and_dedupes_dirty_ids():
    view = ShardView(np.ones((6, 2)))
    v0 = view.version
    view.advance(np.array([3, 1]))
    view.advance(np.array([1, 4]))
    assert view.version == v0 + 2
    assert list(view.dirty_array_since(v0)) == [1, 3, 4]
    assert list(view.dirty_array_since(v0 + 1)) == [1, 4]
    assert view.dirty_array_since(view.version).size == 0
    assert view.dirty_since(v0) == {1, 3, 4}


def test_shard_view_full_resync_and_compaction_report_none():
    view = ShardView(np.ones((4, 2)))
    v0 = view.version
    view.advance(np.array([2]))
    view.advance(None)  # coordinator-reported full resync
    assert view.dirty_array_since(v0) is None
    assert view.dirty_since(v0) is None
    # After the reset, incremental tracking resumes.
    v1 = view.version
    view.advance(np.array([0]))
    assert list(view.dirty_array_since(v1)) == [0]


def test_shard_view_compacts_old_segments():
    view = ShardView(np.ones((4, 2)))
    v0 = view.version
    for i in range(ShardView.MAX_SEGMENTS + 1):
        view.advance(np.array([i % 4]))
    assert view.dirty_array_since(v0) is None, "old history must compact"
    assert view.dirty_array_since(view.version - 1) is not None


def test_shard_view_constraints_are_empty():
    view = ShardView(np.ones((4, 2)))
    assert not view.constraints.has_within(0)
    assert not view.constraints.has_conflicts(0)


# ----------------------------------------------------------------------
# merge_candidates vs the serial total order
# ----------------------------------------------------------------------
def _serial_order(state, mask, affinity):
    ids = np.flatnonzero(mask)
    return ids[np.argsort(_scores(state, ids, affinity), kind="stable")]


@pytest.mark.parametrize("seed", range(8))
def test_merge_candidates_matches_serial_order(seed):
    rng = np.random.default_rng(seed)
    state = ClusterState(build_cluster(20, machines_per_rack=4), ConstraintSet())
    # Randomize packing levels, with deliberate ties.
    state.available[:, 0] = rng.choice([4.0, 8.0, 16.0], size=20)
    mask = rng.random(20) < 0.7
    affinity = rng.random(20) < 0.3 if seed % 2 else None
    serial = _serial_order(state, mask, affinity)

    ids = np.flatnonzero(mask).astype(np.int64)
    keys = state.available[ids, 0] * (state.n_machines + 1) + ids.astype(
        np.float64
    )
    aff = affinity[ids] if affinity is not None else None
    merged = merge_candidates(ids, keys, aff, state.n_machines)
    assert merged.tolist() == serial.tolist()


def test_merge_candidates_heterogeneous_fallback_matches_serial():
    """Keys large enough to cross the affinity tier force the exact
    rescoring branch; the merged order must still equal the serial one."""
    state = ClusterState(_hetero_cluster(4), ConstraintSet())
    state.available[:, 0] = np.linspace(1.0, 10_000.0, 12)
    mask = np.ones(12, dtype=bool)
    affinity = np.zeros(12, dtype=bool)
    affinity[[1, 10, 11]] = True
    serial = _serial_order(state, mask, affinity)
    ids = np.arange(12, dtype=np.int64)
    keys = state.available[ids, 0] * (state.n_machines + 1) + ids.astype(
        np.float64
    )
    merged = merge_candidates(ids, keys, affinity, state.n_machines)
    assert merged.tolist() == serial.tolist()


def test_merge_candidates_empty():
    out = merge_candidates(
        np.empty(0, dtype=np.int64), np.empty(0), None, 10
    )
    assert out.size == 0


# ----------------------------------------------------------------------
# plan_block vs the serial pipeline
# ----------------------------------------------------------------------
def _apps_for_scopes():
    return [
        Application(app_id=0, n_containers=4, cpu=2.0, mem_gb=4.0),
        Application(
            app_id=1, n_containers=3, cpu=2.0, mem_gb=4.0,
            anti_affinity_within=True, anti_affinity_scope="machine",
        ),
        Application(
            app_id=2, n_containers=3, cpu=2.0, mem_gb=4.0,
            anti_affinity_within=True, anti_affinity_scope="rack",
            conflicts=frozenset({0}),
        ),
        Application(
            app_id=3, n_containers=2, cpu=1.0, mem_gb=2.0,
            affinities=frozenset({0}),
        ),
    ]


def _serial_plan(state, demand, app_id, k, scope):
    cache = FeasibilityCache()
    index = MachineIndex()
    mask = cache.feasible_mask(state, demand, app_id)
    order = index.candidates(state, mask, state.affinity_mask(app_id))
    return block_plan(state, demand, order, k, scope)


@pytest.mark.parametrize("workers", [2, 3])
def test_plan_block_matches_serial_across_scopes(workers):
    apps = _apps_for_scopes()
    constraints = ConstraintSet.from_applications(apps)
    by_app: dict[int, list] = {}
    for c in containers_of(apps):
        by_app.setdefault(c.app_id, []).append(c)
    sweep = ParallelSweep(workers)
    try:
        state = ClusterState(build_cluster(16, machines_per_rack=4), constraints)
        ref = ClusterState(build_cluster(16, machines_per_rack=4), constraints)
        for app in apps:
            demand = np.array([app.cpu, app.mem_gb])
            scope = (
                constraints.within_scope(app.app_id)
                if constraints.has_within(app.app_id)
                else None
            )
            k = app.n_containers
            machines, recomputed, admitted = sweep.plan_block(
                state, demand, app.app_id, k, scope
            )
            expected = _serial_plan(ref, demand, app.app_id, k, scope)
            assert machines.tolist() == expected.tolist(), app.app_id
            assert admitted > 0
            # Deploy on both states so the next app sees churned state
            # (exercises the incremental dirty propagation).
            for i, m in enumerate(machines):
                for s in (state, ref):
                    s.deploy(by_app[app.app_id][i], int(m), demand)
    finally:
        sweep.close()


def test_plan_block_heterogeneous_matches_serial():
    sweep = ParallelSweep(2)
    try:
        state = ClusterState(_hetero_cluster(3), ConstraintSet())
        ref = state.snapshot()
        demand = np.array([2.0, 4.0])
        machines, _, _ = sweep.plan_block(state, demand, 0, 5, None)
        expected = _serial_plan(ref, demand, 0, 5, None)
        assert machines.tolist() == expected.tolist()
    finally:
        sweep.close()


# ----------------------------------------------------------------------
# lifecycle: shared-memory adoption, rebind, close
# ----------------------------------------------------------------------
def test_close_restores_private_available_and_is_restartable():
    sweep = ParallelSweep(2)
    state = ClusterState(build_cluster(8, machines_per_rack=4), ConstraintSet())
    demand = np.array([1.0, 1.0])
    sweep.plan_block(state, demand, 0, 1, None)
    adopted = state.available
    before = np.array(adopted)
    sweep.close()
    # close() must hand back an equal-valued private array the state can
    # keep using (the shared segment is gone).
    assert state.available is not adopted
    assert np.array_equal(state.available, before)
    state.available[0, 0] -= 1.0  # writable, not a dead shm view
    # close() is idempotent and the sweep is restartable.
    sweep.close()
    machines, _, _ = sweep.plan_block(state, demand, 0, 1, None)
    assert machines.size == 1
    sweep.close()


def test_rebind_to_second_state():
    sweep = ParallelSweep(2)
    try:
        demand = np.array([1.0, 1.0])
        state_a = ClusterState(
            build_cluster(8, machines_per_rack=4), ConstraintSet()
        )
        ma, _, _ = sweep.plan_block(state_a, demand, 0, 1, None)
        state_b = ClusterState(
            build_cluster(12, machines_per_rack=4), ConstraintSet()
        )
        mb, _, _ = sweep.plan_block(state_b, demand, 0, 1, None)
        ref = ClusterState(
            build_cluster(12, machines_per_rack=4), ConstraintSet()
        )
        assert mb.tolist() == _serial_plan(ref, demand, 0, 1, None).tolist()
        # The first state got its private array back on rebind.
        assert isinstance(state_a.available, np.ndarray)
        state_a.available[0, 0] -= 1.0
    finally:
        sweep.close()


def test_scheduler_close_and_workers_validation():
    with pytest.raises(ValueError):
        AladdinConfig(workers=0)
    with pytest.raises(ValueError):
        ParallelSweep(0)
    serial = AladdinScheduler()
    assert serial.parallel is None
    serial.close()  # no-op, must not raise
    parallel = AladdinScheduler(AladdinConfig(workers=2))
    assert parallel.parallel is not None
    parallel.close()
    parallel.close()


def test_workers_cap_at_rack_count():
    sweep = ParallelSweep(64)
    try:
        state = ClusterState(
            build_cluster(8, machines_per_rack=4), ConstraintSet()
        )
        machines, _, _ = sweep.plan_block(
            state, np.array([1.0, 1.0]), 0, 3, None
        )
        ref = state.snapshot()
        expected = _serial_plan(ref, np.array([1.0, 1.0]), 0, 3, None)
        assert machines.tolist() == expected.tolist()
        assert len(sweep._bounds) == 2  # 8 machines / 4 per rack
    finally:
        sweep.close()


def _shm_exists(name: str) -> bool:
    import os

    return os.path.exists(f"/dev/shm/{name}")


def test_close_after_worker_kill_leaves_no_shm_residue():
    """Regression: close() used to unlink the segment only on the clean
    path — a worker killed mid-run (SIGKILL, OOM) left a /dev/shm leak.
    close() must now be idempotent against dead children and always
    remove the segment."""
    sweep = ParallelSweep(2)
    state = ClusterState(build_cluster(8, machines_per_rack=4), ConstraintSet())
    sweep.plan_block(state, np.array([1.0, 1.0]), 0, 1, None)
    shm_name = sweep._shm.name
    assert _shm_exists(shm_name)
    for proc in sweep._procs:  # simulate a hard worker crash
        proc.kill()
        proc.join(timeout=5)
    sweep.close()
    assert sweep._shm is None
    assert not _shm_exists(shm_name), "segment must be unlinked"
    sweep.close()  # idempotent after the dirty shutdown
    # ...and the sweep is restartable afterwards.
    machines, _, _ = sweep.plan_block(state, np.array([1.0, 1.0]), 0, 1, None)
    assert machines.size == 1
    sweep.close()


@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
def test_close_unlinks_even_with_live_exported_view():
    """A raw exported memoryview keeps shm.close() raising BufferError;
    the old close-then-unlink order leaked the segment whenever that
    happened.  Unlink-first removes the name regardless."""
    sweep = ParallelSweep(2)
    state = ClusterState(build_cluster(8, machines_per_rack=4), ConstraintSet())
    sweep.plan_block(state, np.array([1.0, 1.0]), 0, 1, None)
    shm_name = sweep._shm.name
    pin = sweep._shm.buf[0:8]  # exported pointer → close() raises
    try:
        sweep.close()
        assert not _shm_exists(shm_name), "unlink must not be skipped"
        # The state still got its private array back.
        assert isinstance(state.available, np.ndarray)
        state.available[0, 0] -= 1.0
    finally:
        pin.release()


def test_sweep_checkpoint_restore_round_trip():
    demand = np.array([1.0, 1.0])
    sweep = ParallelSweep(2)
    try:
        state = ClusterState(
            build_cluster(8, machines_per_rack=4), ConstraintSet()
        )
        sweep.plan_block(state, demand, 0, 2, None)
        image = sweep.checkpoint()
        assert image is not None
        assert len(image["workers"]) == 2
        state_image = state.checkpoint_payload()
        sweep.close()

        restored_state = ClusterState.from_payload(
            state_image, build_cluster(8, machines_per_rack=4)
        )
        fresh = ParallelSweep(2)
        try:
            fresh.restore(restored_state, image)
            assert fresh._synced_version == image["synced_version"]
            assert fresh.sweeps == image["sweeps"]
            machines, _, _ = fresh.plan_block(
                restored_state, demand, 0, 2, None
            )
            ref = ClusterState(
                build_cluster(8, machines_per_rack=4), ConstraintSet()
            )
            expected = _serial_plan(ref, demand, 0, 2, None)
            assert machines.tolist() == expected.tolist()
        finally:
            fresh.close()
    finally:
        sweep.close()


def test_sweep_checkpoint_none_paths():
    sweep = ParallelSweep(2)
    assert sweep.checkpoint() is None  # nothing attached yet
    state = ClusterState(build_cluster(8, machines_per_rack=4), ConstraintSet())
    sweep.plan_block(state, np.array([1.0, 1.0]), 0, 1, None)
    for proc in sweep._procs:
        proc.kill()
        proc.join(timeout=5)
    assert sweep.checkpoint() is None  # dead workers → cold restart
    sweep.close()
    # A None payload on restore is the documented cold fallback.
    fresh = ParallelSweep(2)
    try:
        fresh.restore(state, None)
        machines, _, _ = fresh.plan_block(
            state, np.array([1.0, 1.0]), 0, 1, None
        )
        assert machines.size == 1
    finally:
        fresh.close()


def test_parallel_sweep_telemetry_counter():
    from repro import telemetry

    sweep = ParallelSweep(2)
    try:
        state = ClusterState(
            build_cluster(8, machines_per_rack=4), ConstraintSet()
        )
        tele = telemetry.SchedulerTelemetry()
        with telemetry.collect(tele):
            sweep.plan_block(state, np.array([1.0, 1.0]), 0, 2, None)
        assert tele.parallel_sweeps == 1
        assert tele.counters()["parallel_sweeps"] == 1
        assert tele.worker_time_s, "per-worker timings must be recorded"
        assert "parallel_sweeps" not in tele.worker_time_s
        # Wall times stay out of the deterministic counter set.
        assert "worker_time_s" not in tele.counters()
    finally:
        sweep.close()
