"""Layered network construction (Section III.A) tests."""

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.network_builder import (
    build_direct_network,
    build_layered_network,
)


def setup(n_apps=3, n_per_app=2, n_machines=8):
    apps = [
        Application(app_id=i, n_containers=n_per_app, cpu=2.0, mem_gb=4.0)
        for i in range(n_apps)
    ]
    containers = containers_of(apps)
    topo = build_cluster(n_machines, machines_per_rack=4, racks_per_cluster=1)
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    return containers, state


class TestLayeredStructure:
    def test_node_layers_complete(self):
        containers, state = setup()
        net = build_layered_network(containers, state)
        assert len(net.task_node) == 6
        assert len(net.app_node) == 3
        assert len(net.cluster_node) == state.topology.n_clusters
        assert len(net.rack_node) == state.topology.n_racks
        assert len(net.machine_node) == 8

    def test_edge_count_formula(self):
        """|T| (s->T) + |T| (T->A) + |A|*|G| + G->R + R->N + |N| (N->t)."""
        containers, state = setup()
        net = build_layered_network(containers, state)
        topo = state.topology
        expected = (
            len(containers) * 2
            + 3 * topo.n_clusters
            + topo.n_racks
            + topo.n_machines
            + topo.n_machines
        )
        assert net.n_edges() == expected

    def test_source_edge_capacity_is_demand(self):
        containers, state = setup()
        net = build_layered_network(containers, state)
        e = net.task_edge[containers[0].container_id]
        assert net.net.edges[e].capacity == 2.0

    def test_machine_edge_capacity_tracks_availability(self):
        containers, state = setup()
        state.deploy(containers[0], 3)
        net = build_layered_network(containers[1:], state)
        assert net.net.edges[net.machine_edge[3]].capacity == 30.0
        assert net.net.edges[net.machine_edge[0]].capacity == 32.0

    def test_aggregation_beats_direct_form(self):
        """Section III.A's point: layered edges << |T|*|N| direct edges."""
        containers, state = setup(n_apps=5, n_per_app=10, n_machines=40)
        layered = build_layered_network(containers, state)
        direct = build_direct_network(containers, state)
        assert direct.n_edges() > len(containers) * 40
        assert layered.n_edges() < direct.n_edges() / 5

    def test_machine_of_node_inverse(self):
        containers, state = setup()
        net = build_layered_network(containers, state)
        inv = net.machine_of_node()
        for machine, node in net.machine_node.items():
            assert inv[node] == machine


class TestDirectStructure:
    def test_direct_has_no_aggregation_layers(self):
        containers, state = setup()
        net = build_direct_network(containers, state)
        assert net.app_node == {}
        assert net.rack_node == {}
        assert net.n_edges() == len(containers) + len(containers) * 8 + 8
