"""Preemption/migration (Section III.B, Fig. 3 and Fig. 7) tests."""

import numpy as np
import pytest

from repro.base import FailureReason
from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.config import AladdinConfig
from repro.core.migration import RescuePlanner
from repro.core.rescuekernel import RescueKernel


def container(cid, app, cpu, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


def make_state(rules, n_machines=2, cpu=32.0):
    topo = build_cluster(n_machines, machine=MachineSpec(cpu=cpu, mem_gb=cpu * 2))
    return ClusterState(topo, ConstraintSet(rules))


def demand(c, state):
    return c.demand_vector(state.topology.resources)


class TestFig3bMigration:
    def test_blocker_migrates_to_make_room(self):
        """Fig. 3(b): A runs on M; B can only run on M; A moves to N."""
        state = make_state([AntiAffinityRule(0, 1)], n_machines=2)
        a = container(0, app=0, cpu=4, prio=1)
        state.deploy(a, 0)
        # B (app 1) is huge: only machine 0 has room after we load machine 1.
        filler = container(9, app=5, cpu=28)
        state.deploy(filler, 1)
        b = container(1, app=1, cpu=20, prio=0)
        planner = RescuePlanner(state, AladdinConfig())
        outcome = planner.rescue(b, demand(b, state))
        assert outcome.ok and outcome.machine_id == 0
        assert outcome.migrations == 1
        assert state.assignment[0] == 1  # A migrated M -> N
        state.deploy(b, outcome.machine_id)  # caller completes placement

    def test_migration_respects_blocker_constraints(self):
        """A blocker is never moved onto a machine its own rules forbid."""
        state = make_state(
            [AntiAffinityRule(0, 1), AntiAffinityRule(0, 2)], n_machines=2
        )
        state.deploy(container(0, app=0, cpu=4), 0)  # the blocker
        state.deploy(container(1, app=2, cpu=4), 1)  # app 0 conflicts with 2
        state.deploy(container(3, app=5, cpu=10), 1)  # machine 1: 18 CPU free
        b = container(2, app=1, cpu=20)
        planner = RescuePlanner(state, AladdinConfig())
        outcome = planner.rescue(b, demand(b, state))
        # Machine 1 hosts app 2 which conflicts with blocker app 0, and
        # there is no third machine: migration must fail, and preemption
        # cannot apply (equal priority) -> anti-affinity failure.
        assert not outcome.ok
        assert outcome.failure is FailureReason.ANTI_AFFINITY

    def test_disabled_migration_fails_fast(self):
        state = make_state([AntiAffinityRule(0, 1)], n_machines=2)
        state.deploy(container(0, app=0, cpu=4), 0)
        state.deploy(container(9, app=5, cpu=28), 1)
        b = container(1, app=1, cpu=20)
        cfg = AladdinConfig(enable_migration=False, enable_preemption=False)
        outcome = RescuePlanner(state, cfg).rescue(b, demand(b, state))
        assert not outcome.ok


class TestFig7Consolidation:
    def test_small_containers_move_to_admit_large(self):
        """Fig. 7: fragmented small tasks are migrated to fit a big one."""
        state = make_state([], n_machines=2, cpu=8.0)
        # Both machines half full with small containers: a 6-CPU task
        # fits nowhere until one machine is drained.
        state.deploy(container(0, app=0, cpu=3), 0)
        state.deploy(container(1, app=1, cpu=3), 1)
        big = container(2, app=2, cpu=6)
        planner = RescuePlanner(state, AladdinConfig())
        outcome = planner.rescue(big, demand(big, state))
        assert outcome.ok
        assert outcome.migrations == 1
        assert state.fits(demand(big, state), outcome.machine_id)

    def test_consolidation_bounded_by_config(self):
        state = make_state([], n_machines=2, cpu=8.0)
        for i in range(4):
            state.deploy(container(i, app=i, cpu=1), 0)
        state.deploy(container(9, app=9, cpu=5), 1)
        big = container(10, app=10, cpu=7)
        cfg = AladdinConfig(max_migrations_per_container=1, enable_preemption=False)
        outcome = RescuePlanner(state, cfg).rescue(big, demand(big, state))
        assert not outcome.ok  # would need >1 move
        cfg = AladdinConfig(max_migrations_per_container=4, enable_preemption=False)
        outcome = RescuePlanner(state, cfg).rescue(big, demand(big, state))
        assert outcome.ok


    def test_consolidation_at_zero_migration_candidates(self):
        """``migration_candidates=0`` still examines one machine.

        Blocker migration, consolidation and preemption all truncate
        their candidate walks with ``max(1, migration_candidates)``;
        consolidation used to slice with the raw value, silently
        disabling Fig. 7 at 0 while the other strategies kept their
        one-machine floor.  The Fig. 7 scenario must rescue regardless.
        """
        for kernel_on in (False, True):
            state = make_state([], n_machines=2, cpu=8.0)
            state.deploy(container(0, app=0, cpu=3), 0)
            state.deploy(container(1, app=1, cpu=3), 1)
            big = container(2, app=2, cpu=6)
            cfg = AladdinConfig(migration_candidates=0)
            kernel = RescueKernel() if kernel_on else None
            planner = RescuePlanner(state, cfg, kernel=kernel)
            outcome = planner.rescue(big, demand(big, state))
            assert outcome.ok, f"kernel_on={kernel_on}"
            assert outcome.migrations == 1


class TestPriorityPreemption:
    def test_high_priority_displaces_low(self):
        state = make_state([AntiAffinityRule(0, 1)], n_machines=1)
        low = container(0, app=1, cpu=4, prio=0)
        state.deploy(low, 0)
        high = container(1, app=0, cpu=4, prio=2)
        outcome = RescuePlanner(state, AladdinConfig()).rescue(
            high, demand(high, state)
        )
        # One machine only: the low-priority blocker cannot relocate, so
        # it is evicted and handed back for re-queueing.
        assert outcome.ok
        assert [c.container_id for c in outcome.preempted] == [0]
        assert 0 not in state.assignment

    def test_low_priority_never_displaces_high(self):
        """The Fig. 3(a) guarantee: weighted flow forbids the inversion."""
        state = make_state([AntiAffinityRule(0, 1)], n_machines=1)
        high = container(0, app=1, cpu=4, prio=2)
        state.deploy(high, 0)
        low = container(1, app=0, cpu=4, prio=0)
        outcome = RescuePlanner(state, AladdinConfig()).rescue(
            low, demand(low, state)
        )
        assert not outcome.ok
        assert 0 in state.assignment  # high-priority container untouched

    def test_preemption_prefers_relocation_over_eviction(self):
        """A displaced blocker that fits elsewhere is migrated, not killed."""
        state = make_state([AntiAffinityRule(0, 1)], n_machines=2)
        low = container(0, app=1, cpu=4, prio=0)
        state.deploy(low, 0)
        # Fill machine 1 partially so the blocker still fits there.
        state.deploy(container(9, app=5, cpu=8), 1)
        # Fill machine 0 so that only it can host the high-priority task.
        state.deploy(container(8, app=6, cpu=24), 0)
        state.deploy(container(7, app=7, cpu=20), 1)
        high = container(1, app=0, cpu=4, prio=2)
        outcome = RescuePlanner(state, AladdinConfig()).rescue(
            high, demand(high, state)
        )
        assert outcome.ok and outcome.machine_id == 0
        assert outcome.preempted == []
        assert outcome.migrations == 1
        assert state.assignment[0] == 1  # relocated, still running

    def test_preemption_disabled(self):
        state = make_state([AntiAffinityRule(0, 1)], n_machines=1)
        state.deploy(container(0, app=1, cpu=4, prio=0), 0)
        high = container(1, app=0, cpu=4, prio=2)
        cfg = AladdinConfig(enable_preemption=False, enable_migration=False)
        outcome = RescuePlanner(state, cfg).rescue(high, demand(high, state))
        assert not outcome.ok


class TestFailureClassification:
    def test_resource_exhaustion(self):
        state = make_state([], n_machines=1, cpu=4.0)
        state.deploy(container(0, app=0, cpu=4), 0)
        c = container(1, app=1, cpu=4)
        cfg = AladdinConfig(enable_migration=False, enable_preemption=False)
        outcome = RescuePlanner(state, cfg).rescue(c, demand(c, state))
        assert outcome.failure is FailureReason.RESOURCES

    def test_anti_affinity_blocking(self):
        state = make_state([AntiAffinityRule(0, 1)], n_machines=1)
        state.deploy(container(0, app=0, cpu=1), 0)
        c = container(1, app=1, cpu=1)
        cfg = AladdinConfig(enable_migration=False, enable_preemption=False)
        outcome = RescuePlanner(state, cfg).rescue(c, demand(c, state))
        assert outcome.failure is FailureReason.ANTI_AFFINITY
