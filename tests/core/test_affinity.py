"""Soft affinity (co-location preference) tests."""

import pytest

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    build_cluster,
)
from repro.cluster.container import containers_of
from repro.core import FlowPathSearch


def apps_with_affinity():
    web = Application(0, 1, 4.0, 8.0, name="web")
    cache = Application(
        1, 1, 4.0, 8.0, affinities=frozenset({0}), name="cache"
    )
    return [web, cache]


class TestModel:
    def test_affinity_recorded(self):
        cs = ConstraintSet.from_applications(apps_with_affinity())
        assert cs.affinities_of(1) == frozenset({0})
        assert cs.affinities_of(0) == frozenset()

    def test_affinity_conflict_overlap_rejected_on_app(self):
        with pytest.raises(ValueError, match="both affinities and conflicts"):
            Application(
                0, 1, 1.0, 2.0,
                conflicts=frozenset({1}),
                affinities=frozenset({1}),
            )

    def test_self_affinity_rejected(self):
        cs = ConstraintSet()
        with pytest.raises(ValueError, match="trivially affine"):
            cs.add_affinity(3, 3)

    def test_affinity_against_registered_conflict_rejected(self):
        from repro.cluster.constraints import AntiAffinityRule

        cs = ConstraintSet([AntiAffinityRule(0, 1)])
        with pytest.raises(ValueError, match="anti-affine"):
            cs.add_affinity(0, 1)

    def test_affinity_mask(self):
        apps = apps_with_affinity()
        state = ClusterState(build_cluster(4), ConstraintSet.from_applications(apps))
        assert state.affinity_mask(1) is not None
        state.deploy(containers_of(apps)[0], 2)
        mask = state.affinity_mask(1)
        assert mask[2] and mask.sum() == 1

    def test_no_affinity_returns_none(self):
        state = ClusterState(build_cluster(2))
        assert state.affinity_mask(0) is None


class TestScheduling:
    def test_affine_container_co_locates(self):
        """The cache prefers the web's machine even when an emptier or
        lower-id machine exists."""
        apps = apps_with_affinity()
        state = ClusterState(build_cluster(4), ConstraintSet.from_applications(apps))
        web_c, cache_c = containers_of(apps)
        state.deploy(web_c, 3)  # deliberately not machine 0
        result = AladdinScheduler().schedule([cache_c], state)
        assert result.placements[cache_c.container_id] == 3

    def test_affinity_never_overrides_capacity(self):
        apps = [
            Application(0, 1, 30.0, 60.0, name="web"),
            Application(1, 1, 4.0, 8.0, affinities=frozenset({0})),
        ]
        state = ClusterState(build_cluster(2), ConstraintSet.from_applications(apps))
        web_c, cache_c = containers_of(apps)
        state.deploy(web_c, 0)  # only 2 CPU left on machine 0
        result = AladdinScheduler().schedule([cache_c], state)
        assert result.placements[cache_c.container_id] == 1

    def test_engines_agree_with_affinity(self):
        apps = apps_with_affinity() + [
            Application(2, 3, 8.0, 16.0, anti_affinity_within=True),
        ]
        placements = []
        for engine in (AladdinScheduler(), FlowPathSearch()):
            state = ClusterState(
                build_cluster(4), ConstraintSet.from_applications(apps)
            )
            result = engine.schedule(containers_of(apps), state)
            placements.append(result.placements)
        assert placements[0] == placements[1]

    def test_affinity_is_soft_not_required(self):
        """With the preferred app absent, placement proceeds normally."""
        apps = apps_with_affinity()
        state = ClusterState(build_cluster(4), ConstraintSet.from_applications(apps))
        _, cache_c = containers_of(apps)
        result = AladdinScheduler().schedule([cache_c], state)
        assert result.n_deployed == 1
