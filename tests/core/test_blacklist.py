"""Blacklist function (Equations 7–8) tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.blacklist import BlacklistFunction


def container(cid, app, cpu=1.0):
    return Container(container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=2.0)


def make_state(rules, n_machines=4):
    return ClusterState(build_cluster(n_machines), ConstraintSet(rules))


class TestEquation7:
    def test_empty_machine_has_empty_blacklist(self):
        state = make_state([AntiAffinityRule(0, 1)])
        assert BlacklistFunction(state).blacklist(0) == set()

    def test_cross_conflict_enters_blacklist(self):
        state = make_state([AntiAffinityRule(0, 1)])
        state.deploy(container(0, app=0), 2)
        assert BlacklistFunction(state).blacklist(2) == {1}

    def test_within_app_blacklists_itself(self):
        state = make_state([AntiAffinityRule(3, 3)])
        state.deploy(container(0, app=3), 1)
        assert BlacklistFunction(state).blacklist(1) == {3}

    def test_blacklist_shrinks_after_evict(self):
        state = make_state([AntiAffinityRule(0, 1)])
        state.deploy(container(0, app=0), 2)
        state.evict(0)
        assert BlacklistFunction(state).blacklist(2) == set()


class TestEquation8:
    def test_admits_unrelated_app(self):
        state = make_state([AntiAffinityRule(0, 1)])
        state.deploy(container(0, app=0), 2)
        bf = BlacklistFunction(state)
        assert bf.admits(5, 2)
        assert not bf.admits(1, 2)

    def test_paper_example(self):
        """Fig. 4: p = {T1, T2, 0}; after T1 -> N1, T2 is blacklisted on N1."""
        state = make_state([AntiAffinityRule(1, 2)])
        state.deploy(container(0, app=1), 0)  # T1 -> N1
        bf = BlacklistFunction(state)
        assert not bf.admits(2, 0)  # T2 cannot join N1
        assert bf.admits(2, 1)  # but any other machine is fine


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=6
    ),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 3)), max_size=10
    ),
    st.integers(0, 4),
)
def test_admission_vector_matches_forbidden_mask(rules, deployments, probe_app):
    """The per-machine Equation 7/8 form and the vectorised
    ``forbidden_mask`` fast path must agree on every machine."""
    state = make_state([AntiAffinityRule(a, b) for a, b in rules])
    for cid, (app, machine) in enumerate(deployments):
        if state.fits(np.array([1.0, 2.0]), machine):
            state.deploy(container(cid, app=app), machine, force=True)
    bf = BlacklistFunction(state)
    assert (
        bf.admission_vector(probe_app) == ~state.forbidden_mask(probe_app)
    ).all()
