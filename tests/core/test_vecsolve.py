"""The LP window engine (core.vecsolve).

The pure rounding helper and the scipy-absence contract run everywhere;
tests that actually solve an LP are skipped when scipy is missing (the
``solver`` packaging extra), mirroring the no-scipy CI leg.
"""

import importlib.util
import sys

import numpy as np
import pytest

from repro.cluster.container import containers_of
from repro.core import AladdinConfig, engine_for
from repro.core.validate import validate_state
from repro.core.vecsolve import _require_scipy, _round_counts

from tests.conftest import make_apps, state_for

needs_scipy = pytest.mark.skipif(
    importlib.util.find_spec("scipy") is None,
    reason="solver extra (scipy) not installed",
)


# ----------------------------------------------------------------------
# packaging contract — no scipy needed (in fact: scipy must be absent)
# ----------------------------------------------------------------------
def test_missing_scipy_raises_actionable_import_error(monkeypatch):
    for mod in ("scipy", "scipy.optimize", "scipy.sparse"):
        monkeypatch.setitem(sys.modules, mod, None)
    with pytest.raises(ImportError, match=r"repro\[solver\]"):
        _require_scipy()
    # Constructing the engine (directly or via the factory) fails the
    # same way; the rest of the package stays importable.
    from repro.core.vecsolve import SolverScheduler

    with pytest.raises(ImportError, match=r"repro\[solver\]"):
        SolverScheduler()
    with pytest.raises(ImportError, match="solver"):
        engine_for(AladdinConfig(engine="solver"))


# ----------------------------------------------------------------------
# deterministic rounding — pure numpy, no scipy
# ----------------------------------------------------------------------
class TestRoundCounts:
    def test_empty_slice(self):
        out = _round_counts(np.array([]), np.array([], dtype=np.int64), 3)
        assert out.size == 0

    def test_integral_solution_passes_through(self):
        x = np.array([2.0, 1.0, 0.0])
        quota = np.array([4, 2, 1], dtype=np.int64)
        assert _round_counts(x, quota, 3).tolist() == [2, 1, 0]

    def test_largest_remainder_gets_the_deficit(self):
        # floor() loses 0.6 + 0.4 = 1 unit; the bigger fraction wins it.
        x = np.array([1.6, 1.4])
        quota = np.array([4, 4], dtype=np.int64)
        assert _round_counts(x, quota, 4).tolist() == [2, 1]

    def test_position_breaks_fraction_ties(self):
        x = np.array([0.5, 0.5])
        quota = np.array([2, 2], dtype=np.int64)
        assert _round_counts(x, quota, 2).tolist() == [1, 0]

    def test_never_exceeds_quota_or_k(self):
        x = np.array([2.9, 2.9])
        quota = np.array([1, 3], dtype=np.int64)
        out = _round_counts(x, quota, 2)
        assert (out <= quota).all()
        assert out.sum() <= 2
        # Overflowing x is clipped to quota before rounding.
        wild = _round_counts(np.array([100.0]), np.array([3]), 10)
        assert wild.tolist() == [3]

    def test_target_is_floor_of_lp_mass(self):
        # 0.4 + 0.4 LP units round down to zero integral placements.
        x = np.array([0.4, 0.4])
        quota = np.array([1, 1], dtype=np.int64)
        assert _round_counts(x, quota, 2).tolist() == [0, 0]


# ----------------------------------------------------------------------
# the engine end to end (needs scipy)
# ----------------------------------------------------------------------
def _solver(**kw):
    from repro.core.vecsolve import SolverScheduler

    kw.setdefault("engine", "solver")
    kw.setdefault("validate_placements", True)
    return SolverScheduler(AladdinConfig(**kw))


@needs_scipy
class TestSolverScheduler:
    def test_factory_and_name(self):
        from repro.core.vecsolve import SolverScheduler

        engine = engine_for(AladdinConfig(engine="solver"))
        assert isinstance(engine, SolverScheduler)
        assert engine.name.endswith("[solver]")

    def test_places_full_workload_with_lp(self):
        apps = make_apps(
            (4, 4.0, 0, False, ()),
            (3, 2.0, 1, True, ()),
            (2, 8.0, 2, False, (0,)),
        )
        state = state_for(apps, n_machines=8, machines_per_rack=4)
        engine = _solver()
        result = engine.schedule(containers_of(apps), state)
        assert result.n_deployed == 9
        assert not result.undeployed
        assert result.telemetry.solver_calls >= 1
        assert engine.solver_placed > 0  # non-vacuous: LP did the work
        assert validate_state(state).ok
        # placements mirror the authoritative assignment map
        assert result.placements == dict(state.assignment)

    def test_respects_within_and_conflict_rules(self):
        apps = make_apps(
            (3, 4.0, 0, True, ()),     # one per machine
            (2, 4.0, 0, False, (0,)),  # never with app 0
        )
        state = state_for(apps, n_machines=8, machines_per_rack=4)
        engine = _solver()
        result = engine.schedule(containers_of(apps), state)
        assert result.n_deployed == 5
        machines_0 = {
            m for cid, m in state.assignment.items()
            if state.container(cid).app_id == 0
        }
        machines_1 = {
            m for cid, m in state.assignment.items()
            if state.container(cid).app_id == 1
        }
        assert len(machines_0) == 3          # Eq. 7, machine scope
        assert not machines_0 & machines_1   # Eq. 8

    def test_duplicate_app_blocks_fall_back_cleanly(self):
        # Interleaved submission yields two non-contiguous blocks of
        # app 0 in one window; the LP models only the first, the
        # incremental path places the second — still zero violations.
        apps = make_apps((2, 4.0, 0, True, ()), (1, 2.0, 0, False, ()))
        a0, a1 = apps
        state = state_for(apps, n_machines=8, machines_per_rack=4)
        c0 = containers_of([a0])
        c1 = containers_of([a1], start_id=len(c0))
        interleaved = [c0[0], c1[0], c0[1]]
        engine = _solver()
        result = engine.schedule(interleaved, state)
        assert result.n_deployed == 3
        assert validate_state(state).ok

    def test_gang_scheduling_skips_the_lp(self):
        apps = make_apps((3, 4.0, 0, False, ()))
        state = state_for(apps, n_machines=4, machines_per_rack=2)
        engine = _solver(gang_scheduling=True)
        result = engine.schedule(containers_of(apps), state)
        assert result.n_deployed == 3
        assert result.telemetry.solver_calls == 0
        assert engine.solver_placed == 0

    def test_maxmin_runs_two_phases_and_stays_fair(self):
        # Two blocks competing for a cluster that only fits half their
        # demand: max-min must not starve the lighter-weight block.
        apps = make_apps(
            (6, 16.0, 2, False, ()),
            (6, 16.0, 0, False, ()),
        )
        state = state_for(apps, n_machines=4, machines_per_rack=2)
        engine = _solver(solver_objective="maxmin")
        result = engine.schedule(containers_of(apps), state)
        # 16 cpu / 32 GB per container on 32 cpu / 64 GB machines:
        # 8 slots for 12 containers.  Pure packing gives the heavy
        # block all 6 and the light one 2; max-min levels it to 4/4.
        assert result.n_deployed == 8
        placed_per_app = {0: 0, 1: 0}
        for cid in result.placements:
            placed_per_app[state.container(cid).app_id] += 1
        assert placed_per_app[1] >= 3
        # phase-1 (t) + phase-2 (packing under floors) per LP window
        assert result.telemetry.solver_calls >= 2
        assert validate_state(state).ok

    def test_telemetry_counter_contract(self):
        apps = make_apps((4, 4.0, 0, False, ()), (4, 4.0, 1, True, ()))
        state = state_for(apps, n_machines=8, machines_per_rack=4)
        result = _solver().schedule(containers_of(apps), state)
        counters = result.telemetry.counters()
        # The int counters are part of the deterministic set; the float
        # relaxation gap must stay out of it (byte-identity contract).
        assert counters["solver_calls"] >= 1
        assert "solver_rounding_repairs" in counters
        assert "solver_relaxation_gap" not in counters
        assert result.telemetry.solver_relaxation_gap >= 0.0

    def test_checkpoint_restore_round_trip(self):
        from repro.core.scheduler import engine_checkpoint, engine_restore

        apps = make_apps((4, 4.0, 0, False, ()), (2, 8.0, 1, False, ()))
        state = state_for(apps, n_machines=8, machines_per_rack=4)
        engine = _solver()
        engine.schedule(containers_of(apps), state)
        payload = engine_checkpoint(engine)

        fresh = _solver()
        engine_restore(fresh, payload, state)
        # The warm ledgers survive and the restored engine keeps
        # scheduling against the same state without violations.
        more = make_apps((2, 2.0, 0, False, ()))
        batch = containers_of(more, start_id=100)
        result = fresh.schedule(batch, state)
        assert result.n_deployed == 2
        assert validate_state(state).ok

    def test_scarce_cluster_falls_back_without_losing_containers(self):
        # Demand exceeds capacity: the LP places what fits, the
        # fallback path accounts for the rest as undeployed — nothing
        # vanishes and nothing is placed illegally.
        apps = make_apps((6, 20.0, 0, False, ()))
        state = state_for(apps, n_machines=2, machines_per_rack=2)
        result = _solver().schedule(containers_of(apps), state)
        assert result.n_deployed + len(result.undeployed) == 6
        assert result.n_deployed == 2  # 20 cpu/40 GB -> one per machine
        assert validate_state(state).ok
