"""Property tests for the shared Equation 7–9 validator (core.validate).

Two directions, both load-bearing for the solver engine's contract:

* **Soundness on legal plans** — every placement a legacy engine
  commits passes :func:`validate_window` (against the pre-round frozen
  context) and :func:`validate_state` (against the live state), across
  hypothesis-randomized workloads with mixed anti-affinity rules.
* **Completeness on violations** — hand-built Equation 7/8/9 breaches
  are flagged with the right kind tag, so the validator cannot be
  silently vacuous.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler, FlowPathSearch
from repro.core.validate import (
    KIND_BOOKKEEPING,
    KIND_CAPACITY,
    KIND_CROSS,
    KIND_RANGE,
    KIND_UNKNOWN,
    KIND_WITHIN,
    QualityMetrics,
    PlacementInvalidError,
    WindowContext,
    measure_quality,
    quality_gaps,
    validate_state,
    validate_window,
)

from tests.conftest import make_apps, state_for


def _random_workload(seed):
    """A randomized window: mixed demands, scopes and conflicts."""
    rng = np.random.default_rng(seed)
    n_apps = int(rng.integers(3, 12))
    apps = []
    for i in range(n_apps):
        apps.append(
            Application(
                app_id=i,
                n_containers=int(rng.integers(1, 5)),
                cpu=float(rng.choice([1.0, 2.0, 4.0, 8.0])),
                mem_gb=float(rng.choice([2.0, 4.0, 8.0])),
                priority=int(rng.integers(0, 3)),
                anti_affinity_within=bool(rng.random() < 0.4),
                anti_affinity_scope=(
                    "rack" if rng.random() < 0.3 else "machine"
                ),
                conflicts=frozenset(
                    j for j in range(i) if rng.random() < 0.1
                ),
            )
        )
    return apps


# ----------------------------------------------------------------------
# soundness: legal engine output always validates
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_validator_accepts_every_batch_engine_placement(seed):
    apps = _random_workload(seed)
    constraints = ConstraintSet.from_applications(apps)
    state = ClusterState(
        build_cluster(16, machines_per_rack=4), constraints
    )
    containers = containers_of(apps)
    ctx = WindowContext.capture(state)
    result = AladdinScheduler().schedule(containers, state)
    # The window audit sees exactly what the engine committed, judged
    # against the pre-round frozen context.
    report = validate_window(ctx, containers, result.placements)
    assert report.ok, [str(v) for v in report.violations]
    live = validate_state(state)
    assert live.ok, [str(v) for v in live.violations]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_validator_accepts_flow_engine_and_faulted_rounds(seed):
    apps = _random_workload(seed)
    constraints = ConstraintSet.from_applications(apps)
    state = ClusterState(
        build_cluster(16, machines_per_rack=4), constraints
    )
    containers = containers_of(apps)
    engine = FlowPathSearch(AladdinConfig(validate_placements=True))
    engine.schedule(containers, state)  # hook raises on violation
    # A second round against the churned state (partial departures).
    rng = np.random.default_rng(seed)
    for cid in list(state.assignment):
        if rng.random() < 0.4:
            state.evict(cid)
    survivors = {c.container_id for c in containers} - set(
        state.assignment
    )
    batch = [c for c in containers if c.container_id in survivors]
    engine.schedule(batch, state)
    assert validate_state(state).ok


# ----------------------------------------------------------------------
# completeness: hand-built violations are flagged, with the right kind
# ----------------------------------------------------------------------
def _within_apps(scope):
    return make_apps((2, 4.0, 0, True, ()))if scope == "machine" else [
        Application(
            app_id=0, n_containers=2, cpu=4.0, mem_gb=8.0,
            anti_affinity_within=True, anti_affinity_scope="rack",
        )
    ]


def test_rejects_eq7_within_machine_violation():
    apps = make_apps((2, 4.0, 0, True, ()))
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    c1, c2 = containers_of(apps)
    ctx = WindowContext.capture(state)
    report = validate_window(ctx, [c1, c2], {
        c1.container_id: 0, c2.container_id: 0,
    })
    assert [v.kind for v in report.violations] == [KIND_WITHIN]
    assert report.violations[0].container_id == c2.container_id
    with pytest.raises(PlacementInvalidError):
        report.raise_if_invalid("test")


def test_rejects_eq7_within_rack_violation_across_machines():
    apps = _within_apps("rack")
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    c1, c2 = containers_of(apps)
    ctx = WindowContext.capture(state)
    # Machines 0 and 1 share rack 0: legal on machine scope, illegal on
    # rack scope.
    report = validate_window(ctx, [c1, c2], {
        c1.container_id: 0, c2.container_id: 1,
    })
    assert [v.kind for v in report.violations] == [KIND_WITHIN]
    # Different racks are fine.
    ok = validate_window(ctx, [c1, c2], {
        c1.container_id: 0, c2.container_id: 2,
    })
    assert ok.ok


def test_rejects_eq7_against_pre_resident_sibling():
    apps = make_apps((2, 4.0, 0, True, ()))
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    c1, c2 = containers_of(apps)
    state.deploy(c1, 0)
    ctx = WindowContext.capture(state)
    report = validate_window(ctx, [c2], {c2.container_id: 0})
    assert [v.kind for v in report.violations] == [KIND_WITHIN]


def test_rejects_eq8_cross_conflicts_window_and_resident():
    apps = make_apps(
        (1, 2.0, 0, False, ()),
        (1, 2.0, 0, False, (0,)),
    )
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    c_a, c_b = containers_of(apps)
    ctx = WindowContext.capture(state)
    # Window-internal conflict.
    report = validate_window(ctx, [c_a, c_b], {
        c_a.container_id: 1, c_b.container_id: 1,
    })
    assert [v.kind for v in report.violations] == [KIND_CROSS]
    # Conflict against a pre-window resident.
    state.deploy(c_a, 2)
    ctx2 = WindowContext.capture(state)
    report2 = validate_window(ctx2, [c_b], {c_b.container_id: 2})
    assert [v.kind for v in report2.violations] == [KIND_CROSS]


def test_rejects_eq9_capacity_overflow_accumulated():
    apps = make_apps((3, 20.0, 0, False, ()))
    state = state_for(apps, n_machines=2, machines_per_rack=2)
    cs = containers_of(apps)
    ctx = WindowContext.capture(state)
    # One fits (32 CPU machines), two of 20 CPU do not.
    report = validate_window(ctx, cs, {
        cs[0].container_id: 0, cs[1].container_id: 0,
    })
    assert [v.kind for v in report.violations] == [KIND_CAPACITY]
    assert report.violations[0].container_id == cs[1].container_id


def test_rejects_unknown_container_and_machine_range():
    apps = make_apps((1, 2.0, 0, False, ()))
    state = state_for(apps, n_machines=2, machines_per_rack=2)
    (c,) = containers_of(apps)
    ctx = WindowContext.capture(state)
    report = validate_window(ctx, [c], {
        c.container_id: 99, 12345: 0,
    })
    kinds = {v.kind for v in report.violations}
    assert kinds == {KIND_RANGE, KIND_UNKNOWN}


def test_validate_state_flags_forced_violations_and_drift():
    apps = make_apps(
        (2, 4.0, 0, True, ()),
        (1, 4.0, 0, False, (0,)),
    )
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    c1, c2, c3 = containers_of(apps)
    state.deploy(c1, 0)
    state.deploy(c2, 0, force=True)   # Eq. 7 breach
    state.deploy(c3, 0, force=True)   # Eq. 8 breach
    report = validate_state(state)
    kinds = report.by_kind()
    assert kinds.get(KIND_WITHIN, 0) >= 2   # both co-located siblings
    assert kinds.get(KIND_CROSS, 0) >= 2    # both sides of the conflict
    # Bookkeeping drift: capacity mutated behind deploy/evict's back.
    state.available[1, 0] -= 1.0
    drifted = validate_state(state)
    assert KIND_BOOKKEEPING in drifted.by_kind()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_validate_state_mirrors_violation_counter(seed):
    """validate_state finds violations iff anti_affinity_violations > 0."""
    rng = np.random.default_rng(seed)
    apps = _random_workload(seed)
    constraints = ConstraintSet.from_applications(apps)
    state = ClusterState(
        build_cluster(8, machines_per_rack=4), constraints
    )
    for c in containers_of(apps):
        machine = int(rng.integers(0, 8))
        if state.fits(c.demand_vector(state.topology.resources), machine):
            state.deploy(c, machine, force=True)
    report = validate_state(state)
    aa_violations = [
        v for v in report.violations
        if v.kind in (KIND_WITHIN, KIND_CROSS)
    ]
    assert bool(aa_violations) == (state.anti_affinity_violations() > 0)


# ----------------------------------------------------------------------
# quality metrics and parity tolerances
# ----------------------------------------------------------------------
def test_measure_quality_and_gaps():
    apps = make_apps((4, 8.0, 0, False, ()))
    state = state_for(apps, n_machines=4, machines_per_rack=2)
    for i, c in enumerate(containers_of(apps)):
        state.deploy(c, i % 2)
    q = measure_quality(state, blocked=1)
    assert q.used_machines == 2
    assert q.blocked == 1
    assert q.violations == 0
    assert 0.0 <= q.fragmentation <= 1.0
    assert quality_gaps(q, q) == []
    # Within tolerance: small drift passes.
    near = QualityMetrics(
        used_machines=q.used_machines + 1,
        fragmentation=q.fragmentation + 0.05,
        blocked=q.blocked + 1,
        violations=0,
    )
    assert quality_gaps(q, near) == []
    # Better than the reference on every cost axis: never a gap (the
    # parity gate is one-sided).
    better = QualityMetrics(
        used_machines=q.used_machines - 1,
        fragmentation=0.0,
        blocked=0,
        violations=0,
    )
    assert quality_gaps(q, better) == []
    # Out of tolerance on each axis, flagged with readable text.
    far = QualityMetrics(
        used_machines=q.used_machines + 50,
        fragmentation=q.fragmentation + 0.5,
        blocked=q.blocked + 40,
        violations=3,
    )
    gaps = quality_gaps(q, far)
    assert len(gaps) == 4
    assert any("violations" in g for g in gaps)
    # The relative blocked slack scales with arrivals.
    assert len(quality_gaps(q, far, arrived=1000)) == 3
