"""The autoscaling lifecycle: warm pools, power states, and the
default-off bit-identity contract.

Three layers of coverage:

* **Unit** — :class:`repro.cluster.warmpool.WarmPool` (all three
  keep-alive policies behind ``evict_before``) and
  :class:`repro.cluster.power.PowerManager` (drain/wake planning,
  sealing, cold-start windows) against a hand-built cluster state.
* **Differential** — the autoscale axis composes with every existing
  bit-identity contract: default-off runs are byte-identical to a
  build without the feature, autoscale runs are deterministic, engine
  ablations agree decision-for-decision under lifecycle churn, a
  served autoscale run equals the simulated one, and a run killed
  mid-drain with a populated pool restores bit-identical.
* **Acceptance** — an autoscale run powers fewer machine-ticks than
  always-on at unchanged validity, and keep-alive demonstrably beats
  cold-starting everything.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.power import (
    POWER_DRAINING,
    POWER_OFF,
    POWER_ON,
    PowerConfig,
    PowerManager,
)
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.cluster.warmpool import WarmPool
from repro.core import AladdinConfig, AladdinScheduler
from repro.sim.online import OnlineConfig, OnlineSimulator
from repro.sim.metrics import power_metrics
from repro.trace import build_scenario


# ----------------------------------------------------------------------
# warm pool
# ----------------------------------------------------------------------
def test_pool_stash_claim_is_lifo():
    pool = WarmPool("fixed", keep_alive_ticks=4)
    assert pool.stash("f", 1, machine_id=0, tick=0) == []
    assert pool.stash("f", 2, machine_id=1, tick=1) == []
    assert pool.claim("f", tick=1) == (2, 1)  # newest stash first
    assert pool.claim("f", tick=1) == (1, 0)
    assert pool.claim("f", tick=1) is None
    assert pool.hits == 2 and len(pool) == 0


def test_pool_claim_accept_vetoes_candidates():
    pool = WarmPool("fixed")
    pool.stash("f", 1, machine_id=0, tick=0)
    pool.stash("f", 2, machine_id=1, tick=0)
    # Veto the newest entry: the claim falls through to the older one.
    got = pool.claim("f", tick=0, accept=lambda cid, m: cid != 2)
    assert got == (1, 0)
    assert len(pool) == 1  # the vetoed entry stays pooled


def test_pool_fixed_expiry_in_deadline_order():
    pool = WarmPool("fixed", keep_alive_ticks=3)
    pool.stash("f", 1, machine_id=0, tick=0)  # evicts before tick 4
    pool.stash("g", 2, machine_id=1, tick=1)  # evicts before tick 5
    assert pool.evict_before(3) == []
    assert pool.evict_before(4) == [1]
    assert pool.evict_before(5) == [2]
    assert pool.expired == 2 and len(pool) == 0


def test_pool_full_fixed_refuses_stash():
    pool = WarmPool("fixed", capacity=1)
    assert pool.stash("f", 1, machine_id=0, tick=0) == []
    # A full fixed pool bounces the newcomer back to the caller, which
    # evicts it exactly as it would without a pool.
    assert pool.stash("f", 2, machine_id=1, tick=0) == [2]
    assert pool.overflowed == 1
    assert pool.claim("f", tick=0) == (1, 0)


def test_pool_lru_overflow_evicts_oldest():
    pool = WarmPool("lru", capacity=2)
    pool.stash("f", 1, machine_id=0, tick=0)
    pool.stash("g", 2, machine_id=1, tick=0)
    # The newcomer is admitted; the oldest stash is the victim.
    assert pool.stash("h", 3, machine_id=2, tick=1) == [1]
    assert pool.overflowed == 1
    assert pool.claim("f", tick=1) is None
    assert pool.claim("h", tick=1) == (3, 2)


def test_pool_ttl_hit_keeps_key_warm():
    pool = WarmPool("ttl", keep_alive_ticks=3)
    pool.stash("f", 1, machine_id=0, tick=0)
    pool.stash("f", 2, machine_id=1, tick=0)
    # A hit at tick 2 refreshes the key's deadline to 5: the sibling
    # entry survives its original tick-3 deadline.
    assert pool.claim("f", tick=2) == (2, 1)
    assert pool.evict_before(4) == []
    assert len(pool) == 1
    # ...but ages out once the refreshed window passes.
    assert pool.evict_before(6) == [1]


def test_pool_checkpoint_restores_bit_identical():
    pool = WarmPool("ttl", keep_alive_ticks=4, capacity=8)
    pool.stash(("fn", 1.0, 2.0), 1, machine_id=0, tick=0)
    pool.stash(("fn", 1.0, 2.0), 2, machine_id=1, tick=1)
    pool.stash(("other", 2.0, 4.0), 3, machine_id=2, tick=1)
    pool.claim(("fn", 1.0, 2.0), tick=2)  # leaves a lazy-deleted entry
    payload = json.loads(json.dumps(pool.checkpoint()))  # wire round-trip

    clone = WarmPool("ttl", keep_alive_ticks=4, capacity=8)
    clone.restore(payload)
    assert clone.checkpoint() == pool.checkpoint()
    # Behavioural equivalence, not just structural.
    assert clone.claim(("fn", 1.0, 2.0), tick=2) == pool.claim(
        ("fn", 1.0, 2.0), tick=2
    )
    assert clone.evict_before(10) == pool.evict_before(10)


def test_pool_rejects_unknown_policy():
    with pytest.raises(ValueError, match="keep-alive"):
        WarmPool("adaptive")


# ----------------------------------------------------------------------
# power manager
# ----------------------------------------------------------------------
def _powered_state(n=6):
    topo = build_cluster(n)
    from repro.cluster.constraints import ConstraintSet

    return ClusterState(topo, ConstraintSet([]))


def _occupy(state, machine):
    from repro.cluster.container import Container

    c = Container(
        container_id=1000 + machine, app_id=0, instance=0, cpu=1.0,
        mem_gb=1.0, priority=0,
    )
    state.deploy(c, machine)


def test_power_drains_idle_tail_packed_last():
    state = _powered_state(6)
    _occupy(state, 0)
    power = PowerManager(6, PowerConfig(min_on=2, headroom=0.0))
    woken, drained, reclaimed = power.step(state, tick=0, demand_cpu=0.0)
    assert woken == [] and reclaimed == []
    # Highest empty ids seal first; min_on=2 keeps machines 0 and 1.
    assert drained == [5, 4, 3, 2]
    assert power.counts() == (2, 4, 0)
    for m in drained:
        assert not state.available[m].any()  # sealed: all-zero row


def test_power_drain_to_off_and_cold_wake():
    state = _powered_state(3)
    cfg = PowerConfig(drain_ticks=1, cold_start_ticks=3, min_on=1,
                      headroom=0.0)
    power = PowerManager(3, cfg)
    _, drained, _ = power.step(state, tick=0, demand_cpu=0.0)
    assert drained == [2, 1]
    # After drain_ticks the sealed machines finish powering off.
    power.step(state, tick=1, demand_cpu=0.0)
    assert power.counts()[2] == 2  # off
    # Demand beyond one machine's CPU wakes the off tail cold.
    big = float(state.topology.capacity[:, 0].sum())
    woken, _, _ = power.step(state, tick=2, demand_cpu=big)
    assert woken == [1, 2]
    assert power.cold_wakes == 2
    assert power.cold_penalty(1, tick=2) == 3
    assert power.cold_penalty(1, tick=5) == 0
    for m in woken:  # full capacity row restored
        assert (state.available[m] == state.topology.capacity[m]).all()


def test_power_wakes_draining_before_off_for_free():
    state = _powered_state(3)
    power = PowerManager(3, PowerConfig(drain_ticks=5, min_on=1,
                                        headroom=0.0))
    power.step(state, tick=0, demand_cpu=0.0)  # drains 2 and 1
    assert power.counts() == (1, 2, 0)
    cap = float(state.topology.capacity[0, 0])
    woken, _, _ = power.step(state, tick=1, demand_cpu=cap + 1.0)
    # A draining machine never finished spinning down: waking it is
    # free (no cold window).
    assert woken and all(power.cold_penalty(m, tick=1) == 0 for m in woken)
    assert power.cold_wakes == 0


def test_power_leaves_failed_machines_alone():
    state = _powered_state(3)
    # A faulted machine presents an all-zero row while still "on".
    state.available[1] = 0.0
    state.touch(1)
    power = PowerManager(3, PowerConfig(min_on=1, headroom=0.0))
    _, drained, _ = power.step(state, tick=0, demand_cpu=0.0)
    assert 1 not in drained  # never drained (it is not healthy-idle)...
    big = float(state.topology.capacity[:, 0].sum())
    woken, _, _ = power.step(state, tick=1, demand_cpu=big)
    assert 1 not in woken  # ...and never woken (a wake would repair it)
    assert not state.available[1].any()


def test_power_reclaims_warm_only_machines():
    state = _powered_state(3)
    _occupy(state, 0)
    _occupy(state, 2)
    power = PowerManager(3, PowerConfig(min_on=1, headroom=0.0))
    _, drained, reclaimed = power.step(
        state, tick=0, demand_cpu=0.0, reclaimable={2: [1002]}
    )
    # Machine 1 is empty (cheapest), machine 2 costs one reclaim.
    assert drained == [1, 2]
    assert reclaimed == [1002]


def test_power_checkpoint_restores_bit_identical():
    state = _powered_state(4)
    power = PowerManager(4, PowerConfig(min_on=1, cold_start_ticks=2,
                                        headroom=0.0))
    power.step(state, tick=0, demand_cpu=0.0)
    power.step(state, tick=1, demand_cpu=0.0)
    payload = json.loads(json.dumps(power.checkpoint()))
    clone = PowerManager(4, power.config)
    clone.restore(payload)
    assert clone.checkpoint() == power.checkpoint()
    assert clone.counts() == power.counts()


# ----------------------------------------------------------------------
# differential: the autoscale axis
# ----------------------------------------------------------------------
_TRACE_CACHE: dict = {}


def _autoscale_workload(seed, **over):
    """(trace, OnlineConfig) for one tiny ``autoscale`` scenario run."""
    if seed not in _TRACE_CACHE:
        _TRACE_CACHE[seed] = build_scenario(
            "autoscale", scale=0.005, seed=seed, ticks=10, n_functions=40,
            lla_lifetime=(6, 16),
        )
    kwargs = dict(seed=seed, scenario="autoscale", autoscale=True)
    kwargs.update(over)
    return _TRACE_CACHE[seed], OnlineConfig(**kwargs)


def _run(trace, cfg, scheduler=None):
    return OnlineSimulator(trace, cfg).run(
        scheduler if scheduler is not None else AladdinScheduler()
    )


def _decisions(canonical: str) -> dict:
    """The decision-derived view of a canonical run: totals and every
    per-tick sample minus engine telemetry (explored/cache/batch/rescue
    counters legitimately differ across ablation variants; placements
    must not)."""
    payload = json.loads(canonical)
    tele = {"explored", "cache_hits", "batch_invocations",
            "rescue_attempts", "rescue_kernel_invocations"}
    return {
        "totals": payload["totals"],
        "samples": [
            {k: v for k, v in s.items() if k not in tele}
            for s in payload["samples"]
        ],
    }


def test_default_off_is_bit_identical():
    """Autoscale knobs without ``autoscale=True`` are inert: the run's
    canonical JSON is byte-identical to a plain config's, and carries
    no power telemetry at all."""
    trace, _ = _autoscale_workload(0)
    plain = OnlineConfig(seed=0, scenario="autoscale")
    knobbed = OnlineConfig(
        seed=0, scenario="autoscale", autoscale=False, keep_alive="ttl",
        keep_alive_ticks=9, cold_start_ticks=7, drain_ticks=3, min_on=5,
    )
    a = _run(trace, plain).canonical_json()
    b = _run(trace, knobbed).canonical_json()
    assert a == b
    assert '"power"' not in a


def test_autoscale_run_is_deterministic():
    trace, cfg = _autoscale_workload(1)
    assert _run(trace, cfg).canonical_json() == _run(
        trace, cfg
    ).canonical_json()
    assert '"power"' in _run(trace, cfg).canonical_json()


_ABLATIONS = [
    AladdinConfig(enable_feasibility_cache=False),
    AladdinConfig(enable_batch_kernel=False),
    AladdinConfig(enable_rescue_kernel=False),
    AladdinConfig(enable_batch_kernel=False, enable_feasibility_cache=False),
]
_POLICIES = ["fixed", "ttl", "lru", "none"]


@pytest.mark.parametrize("seed", range(20))
def test_autoscale_parity_across_engine_variants(seed):
    """20-seed sweep rotating keep-alive policy × engine ablation: the
    degraded engine makes the exact same decisions as the default one
    at every tick of an autoscale run — placements, departures, power
    transitions and pool telemetry all identical."""
    trace, cfg = _autoscale_workload(
        seed % 5, keep_alive=_POLICIES[seed % len(_POLICIES)]
    )
    baseline = _run(trace, cfg).canonical_json()
    variant = _run(
        trace, cfg, AladdinScheduler(_ABLATIONS[seed % len(_ABLATIONS)])
    ).canonical_json()
    assert _decisions(variant) == _decisions(baseline)


@pytest.mark.parametrize("keep_alive", ["fixed", "ttl"])
def test_autoscale_served_matches_simulated(keep_alive):
    """A served autoscale run over a live socket is bit-identical to
    the simulated one: the server applies the same lifecycle windows
    and the replay client books the same penalty-stretched departures
    from the replies."""
    import os
    import shutil
    import tempfile

    from repro.serve import (
        PlacementServer,
        ServeClient,
        ServerThread,
        replay_online_schedule,
    )
    from repro.sim.lifecycle import lifecycle_from_config
    from repro.sim.online import pool_topology

    trace, cfg = _autoscale_workload(2, keep_alive=keep_alive)
    simulated = _run(trace, cfg).canonical_json()

    topology = pool_topology(trace, cfg)
    server = PlacementServer(
        AladdinScheduler(),
        ClusterState(topology, trace.constraints),
        lifecycle=lifecycle_from_config(trace, cfg, topology.n_machines),
    )
    d = tempfile.mkdtemp(prefix="ald", dir="/tmp")
    try:
        with ServerThread(server, os.path.join(d, "s.sock")):
            with ServeClient(os.path.join(d, "s.sock")) as client:
                replay_online_schedule(client, trace, cfg)
                served = client.result()
    finally:
        shutil.rmtree(d, ignore_errors=True)
    assert served == simulated


class _Interrupt(Exception):
    pass


@pytest.mark.parametrize("seed", [0, 2, 3])
def test_autoscale_checkpoint_resume_bit_identical(seed, tmp_path):
    """Kill the run at a checkpoint that provably lands mid-lifecycle —
    pool populated *and* machines draining or off — and restore: the
    resumed run is bit-identical, pool heap and power arrays included."""
    trace, cfg = _autoscale_workload(seed)
    full = _run(trace, cfg)
    busy = [
        s.tick for s in full.samples
        if s.pool_size > 0 and (s.draining_machines > 0 or s.off_machines > 0)
    ]
    assert busy, "scenario never had a populated pool during a drain"
    path = str(tmp_path / f"as-{seed}.bin")

    def crash(tick, _path):
        raise _Interrupt

    with pytest.raises(_Interrupt):
        OnlineSimulator(trace, cfg).run(
            AladdinScheduler(), checkpoint_every=busy[0] + 1,
            checkpoint_path=path, on_checkpoint=crash,
        )
    resumed = (
        OnlineSimulator(trace, cfg)
        .run(AladdinScheduler(), restore_from=path)
        .canonical_json()
    )
    assert resumed == full.canonical_json()


def test_fingerprint_pins_autoscale_knobs(tmp_path):
    """A snapshot from one lifecycle configuration must not restore
    into another — not a different keep-alive policy, and not a run
    with the lifecycle off."""
    from repro.cluster.snapshot import SnapshotError

    trace, cfg = _autoscale_workload(0)
    path = str(tmp_path / "fp.bin")
    OnlineSimulator(trace, cfg).run(
        AladdinScheduler(), checkpoint_every=4, checkpoint_path=path
    )
    _, other = _autoscale_workload(0, keep_alive="ttl")
    with pytest.raises(SnapshotError, match="fingerprint"):
        OnlineSimulator(trace, other).run(
            AladdinScheduler(), restore_from=path
        )
    plain = OnlineConfig(seed=0, scenario="autoscale")
    with pytest.raises(SnapshotError, match="fingerprint"):
        OnlineSimulator(trace, plain).run(
            AladdinScheduler(), restore_from=path
        )


# ----------------------------------------------------------------------
# acceptance: fewer machine-hours at unchanged validity
# ----------------------------------------------------------------------
def test_autoscale_saves_machine_ticks_at_unchanged_validity(tmp_path):
    """The headline contract: an autoscale run powers substantially
    fewer machine-ticks than always-on, places the same workload
    without new failures, and a mid-run snapshot's cluster state passes
    the full Eq. 7-9 audit (powered-off machines read as
    administratively down)."""
    from repro.cluster.snapshot import read_snapshot
    from repro.core.validate import validate_state

    trace, cfg = _autoscale_workload(0)
    baseline = _run(trace, OnlineConfig(seed=0, scenario="autoscale"))

    path = str(tmp_path / "mid.bin")
    sim = OnlineSimulator(trace, cfg)
    result = sim.run(
        AladdinScheduler(), checkpoint_every=5, checkpoint_path=path
    )
    pm = power_metrics(result, sim._topology.n_machines)
    assert pm.machine_ticks < pm.always_on_machine_ticks
    assert pm.savings_pct > 25.0
    assert result.total_failed <= baseline.total_failed
    assert result.total_departed == result.total_arrived

    payload = read_snapshot(path, kind="online-sim")
    state = ClusterState.from_payload(
        payload["state"], sim._topology, trace.constraints
    )
    assert validate_state(state).ok


def test_keep_alive_beats_cold_starting_everything():
    """With a pool, re-invocations hit warm containers; without one
    (``keep_alive='none'``) every function placement cold-starts. The
    pool must win on both cold starts and machine-ticks."""
    trace, pooled_cfg = _autoscale_workload(3, keep_alive="fixed")
    _, bare_cfg = _autoscale_workload(3, keep_alive="none")
    sim = OnlineSimulator(trace, pooled_cfg)
    pooled = power_metrics(sim.run(AladdinScheduler()),
                           sim._topology.n_machines)
    bare = power_metrics(_run(trace, bare_cfg), sim._topology.n_machines)
    assert bare.warm_hits == 0
    assert pooled.warm_hits > 0
    assert pooled.cold_starts < bare.cold_starts
    assert pooled.cold_start_rate < bare.cold_start_rate
    assert pooled.machine_ticks <= bare.machine_ticks


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_autoscale_flags_inert_without_opt_in(tmp_path, capsys):
    """Passing keep-alive knobs without ``--autoscale`` changes nothing:
    the canonical output is byte-identical to a flagless run."""
    from repro.cli import main

    plain = tmp_path / "plain.json"
    knobbed = tmp_path / "knobbed.json"
    base = ["online", "--scale", "0.01", "--ticks", "5"]
    assert main([*base, "--canonical-out", str(plain)]) == 0
    assert main([
        *base, "--keep-alive", "ttl", "--cold-start-ticks", "9",
        "--drain-ticks", "4", "--canonical-out", str(knobbed),
    ]) == 0
    assert plain.read_bytes() == knobbed.read_bytes()


def test_cli_online_autoscale_reports_power(capsys):
    from repro.cli import main

    rc = main(["online", "--scale", "0.01", "--ticks", "8", "--autoscale"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "power:" in out and "machine-ticks" in out
