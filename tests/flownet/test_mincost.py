"""Min-cost max-flow tests with networkx cross-checks."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.graph import FlowNetwork
from repro.flownet.mincost import min_cost_max_flow
from repro.flownet.validation import validate_flow


class TestHandCases:
    def test_prefers_cheap_path(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 5, cost=1)
        net.add_edge(0, 2, 5, cost=10)
        net.add_edge(1, 3, 5, cost=1)
        net.add_edge(2, 3, 5, cost=10)
        res = min_cost_max_flow(net, 0, 3)
        assert res.flow == 10.0
        assert res.cost == 5 * 2 + 5 * 20
        validate_flow(net, 0, 3)

    def test_max_flow_cap(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 10, cost=1)
        res = min_cost_max_flow(net, 0, 1, max_flow=4)
        assert res.flow == 4.0
        assert res.cost == 4.0

    def test_no_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        res = min_cost_max_flow(net, 0, 2)
        assert res.flow == 0.0
        assert res.augmentations == 0

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            min_cost_max_flow(FlowNetwork(2), 1, 1)

    def test_residual_rerouting(self):
        """The solver must cancel earlier flow via reverse arcs."""
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1, cost=1)
        net.add_edge(0, 2, 1, cost=2)
        net.add_edge(1, 2, 1, cost=-5)
        net.add_edge(1, 3, 1, cost=4)
        net.add_edge(2, 3, 1, cost=1)
        res = min_cost_max_flow(net, 0, 3)
        assert res.flow == 2.0
        validate_flow(net, 0, 3)


@st.composite
def random_cost_networks(draw):
    n = draw(st.integers(3, 7))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 2),  # avoid edges out of the sink
                st.integers(1, n - 1),
                st.integers(1, 10),
                st.integers(0, 9),
            ),
            min_size=1,
            max_size=14,
        )
    )
    return n, [(u, v, c, w) for u, v, c, w in edges if u != v]


@settings(max_examples=40, deadline=None)
@given(random_cost_networks())
def test_matches_networkx_min_cost_flow(data):
    n, raw = data
    # Deduplicate (u, v) pairs: parallel edges with distinct costs have
    # no aggregated-DiGraph equivalent for the networkx comparison.
    edges = {}
    for u, v, c, w in raw:
        edges.setdefault((u, v), (c, w))
    if not edges:
        return
    net = FlowNetwork(n)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for (u, v), (c, w) in edges.items():
        net.add_edge(u, v, float(c), cost=float(w))
        g.add_edge(u, v, capacity=c, weight=w)
    res = min_cost_max_flow(net, 0, n - 1)
    expected_flow = nx.maximum_flow_value(g, 0, n - 1)
    assert res.flow == pytest.approx(expected_flow)
    if expected_flow:
        flow_dict = nx.max_flow_min_cost(g, 0, n - 1)
        assert res.cost == pytest.approx(nx.cost_of_flow(g, flow_dict))
    validate_flow(net, 0, n - 1)
