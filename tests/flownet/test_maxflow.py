"""Max-flow solvers: hand cases, cross-checks against networkx, properties."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.graph import FlowNetwork
from repro.flownet.maxflow import dinic, edmonds_karp
from repro.flownet.validation import validate_flow

SOLVERS = [edmonds_karp, dinic]


def diamond():
    """Classic 4-node diamond with max flow 19."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, 10)
    net.add_edge(0, 2, 10)
    net.add_edge(1, 3, 9)
    net.add_edge(2, 3, 10)
    net.add_edge(1, 2, 5)
    return net


@pytest.mark.parametrize("solver", SOLVERS)
class TestHandCases:
    def test_single_edge(self, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 7.0)
        assert solver(net, 0, 1) == 7.0

    def test_diamond(self, solver):
        net = diamond()
        assert solver(net, 0, 3) == 19.0
        validate_flow(net, 0, 3)

    def test_disconnected_sink(self, solver):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        assert solver(net, 0, 2) == 0.0

    def test_bottleneck_path(self, solver):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 100)
        net.add_edge(1, 2, 1)
        net.add_edge(2, 3, 100)
        assert solver(net, 0, 3) == 1.0

    def test_parallel_edges_accumulate(self, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 1, 4)
        assert solver(net, 0, 1) == 7.0

    def test_same_source_sink_rejected(self, solver):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            solver(net, 0, 0)

    def test_bad_endpoint_rejected(self, solver):
        net = FlowNetwork(2)
        with pytest.raises(IndexError):
            solver(net, 0, 9)


@st.composite
def random_networks(draw):
    """Random DAG-ish graphs with integer capacities."""
    n = draw(st.integers(3, 8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 20),
            ),
            min_size=1,
            max_size=20,
        )
    )
    return n, [(u, v, c) for u, v, c in edges if u != v]


@settings(max_examples=60, deadline=None)
@given(random_networks())
def test_solvers_agree_with_networkx(data):
    n, edges = data
    if not edges:
        return
    for solver in SOLVERS:
        net = FlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, c in edges:
            net.add_edge(u, v, float(c))
            if g.has_edge(u, v):
                g[u][v]["capacity"] += c
            else:
                g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, 0, n - 1)
        got = solver(net, 0, n - 1)
        assert got == pytest.approx(expected)
        validate_flow(net, 0, n - 1)


@settings(max_examples=40, deadline=None)
@given(random_networks())
def test_dinic_equals_edmonds_karp(data):
    n, edges = data
    if not edges:
        return
    values = []
    for solver in SOLVERS:
        net = FlowNetwork(n)
        for u, v, c in edges:
            net.add_edge(u, v, float(c))
        values.append(solver(net, 0, n - 1))
    assert values[0] == pytest.approx(values[1])
