"""Unit tests for the residual flow-network representation."""

import pytest

from repro.flownet.graph import FlowNetwork


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            FlowNetwork(0)

    def test_add_edge_creates_reverse_pair(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5.0, cost=2.0)
        assert net.edges[e].head == 1
        assert net.edges[e ^ 1].head == 0
        assert net.edges[e ^ 1].capacity == 0.0
        assert net.edges[e ^ 1].cost == -2.0

    def test_add_node_grows_graph(self):
        net = FlowNetwork(1)
        new = net.add_node()
        assert new == 1
        net.add_edge(0, 1, 1.0)

    def test_rejects_out_of_range_nodes(self):
        net = FlowNetwork(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0)

    def test_rejects_negative_capacity(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_n_forward_edges(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 1.0)
        assert net.n_forward_edges() == 2
        assert len(net.edges) == 4


class TestPush:
    def test_push_updates_residuals(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 10.0)
        net.push(e, 4.0)
        assert net.edges[e].residual == 6.0
        assert net.edges[e ^ 1].residual == 4.0
        assert net.flow_on(e) == 4.0

    def test_push_back_cancels(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 10.0)
        net.push(e, 4.0)
        net.push(e ^ 1, 4.0)
        assert net.flow_on(e) == 0.0

    def test_push_beyond_residual_rejected(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 3.0)
        with pytest.raises(ValueError, match="exceeds residual"):
            net.push(e, 3.5)

    def test_reset_flow(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 3.0)
        net.push(e, 2.0)
        net.reset_flow()
        assert net.flow_on(e) == 0.0
        assert net.edges[e].residual == 3.0

    def test_out_edges_includes_residual_arcs(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.0)
        assert len(net.out_edges(0)) == 1
        assert len(net.out_edges(1)) == 1  # the reverse arc
