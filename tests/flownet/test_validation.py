"""Flow validation (Equations 1–2) tests."""

import pytest

from repro.flownet.graph import FlowNetwork
from repro.flownet.maxflow import edmonds_karp
from repro.flownet.validation import (
    check_capacity_constraints,
    check_flow_conservation,
    validate_flow,
)


def path_net():
    net = FlowNetwork(3)
    e1 = net.add_edge(0, 1, 5.0)
    e2 = net.add_edge(1, 2, 5.0)
    return net, e1, e2


class TestCapacityCheck:
    def test_valid_flow_passes(self):
        net, e1, e2 = path_net()
        net.push(e1, 3.0)
        net.push(e2, 3.0)
        assert check_capacity_constraints(net) == []

    def test_overflow_detected(self):
        net, e1, _ = path_net()
        net.edges[e1].flow = 99.0  # corrupt directly
        assert any("exceeds capacity" in p for p in check_capacity_constraints(net))

    def test_negative_flow_detected(self):
        net, e1, _ = path_net()
        net.edges[e1].flow = -1.0
        assert any("negative flow" in p for p in check_capacity_constraints(net))


class TestConservationCheck:
    def test_balanced_flow_passes(self):
        net, e1, e2 = path_net()
        net.push(e1, 2.0)
        net.push(e2, 2.0)
        assert check_flow_conservation(net, 0, 2) == []

    def test_imbalance_detected(self):
        net, e1, _ = path_net()
        net.push(e1, 2.0)  # flow enters node 1 but never leaves
        problems = check_flow_conservation(net, 0, 2)
        assert len(problems) == 1 and "vertex 1" in problems[0]

    def test_source_sink_exempt(self):
        net, e1, e2 = path_net()
        net.push(e1, 5.0)
        net.push(e2, 5.0)
        assert check_flow_conservation(net, 0, 2) == []


class TestValidateFlow:
    def test_raises_with_all_problems(self):
        net, e1, _ = path_net()
        net.push(e1, 2.0)
        with pytest.raises(AssertionError, match="invalid flow"):
            validate_flow(net, 0, 2)

    def test_real_maxflow_always_validates(self):
        net, _, _ = path_net()
        edmonds_karp(net, 0, 2)
        validate_flow(net, 0, 2)
