"""SPFA shortest-path tests, including networkx cross-checks."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.flownet.graph import FlowNetwork
from repro.flownet.spfa import extract_path, spfa
from repro.telemetry import SchedulerTelemetry


def line_graph(costs):
    net = FlowNetwork(len(costs) + 1)
    for i, c in enumerate(costs):
        net.add_edge(i, i + 1, 1.0, cost=c)
    return net


class TestHandCases:
    def test_line_distances(self):
        net = line_graph([1.0, 2.0, 3.0])
        dist, _ = spfa(net, 0)
        assert dist == [0.0, 1.0, 3.0, 6.0]

    def test_prefers_cheaper_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 2, 1.0, cost=10.0)
        net.add_edge(0, 1, 1.0, cost=1.0)
        net.add_edge(1, 2, 1.0, cost=1.0)
        dist, parent = spfa(net, 0)
        assert dist[2] == 2.0
        path = extract_path(net, parent, 0, 2)
        assert [net.edges[e].head for e in path] == [1, 2]

    def test_unreachable_is_infinite(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        dist, parent = spfa(net, 0)
        assert dist[2] == float("inf")
        with pytest.raises(ValueError, match="unreachable"):
            extract_path(net, parent, 0, 2)

    def test_saturated_edges_skipped(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 1.0)
        net.push(e, 1.0)
        dist, _ = spfa(net, 0)
        assert dist[1] == float("inf")
        dist, _ = spfa(net, 0, skip_saturated=False)
        assert dist[1] == 0.0

    def test_negative_edges_ok(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0, cost=5.0)
        net.add_edge(1, 2, 1.0, cost=-3.0)
        dist, _ = spfa(net, 0)
        assert dist[2] == 2.0

    def test_negative_cycle_detected(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0, cost=-1.0)
        net.add_edge(1, 0, 1.0, cost=-1.0)
        with pytest.raises(ValueError, match="negative-cost cycle"):
            spfa(net, 0)

    def test_bad_source_rejected(self):
        with pytest.raises(IndexError):
            spfa(FlowNetwork(2), 7)

    def test_extract_path_from_source_to_itself(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0)
        _, parent = spfa(net, 0)
        assert extract_path(net, parent, 0, 0) == []


class TestEdgeCases:
    def test_negative_source_rejected(self):
        with pytest.raises(IndexError, match="out of range"):
            spfa(FlowNetwork(3), -1)

    def test_source_equal_to_n_nodes_rejected(self):
        with pytest.raises(IndexError):
            spfa(FlowNetwork(3), 3)

    def test_unreachable_negative_cycle_does_not_raise(self):
        """A negative cycle the source cannot reach is irrelevant:
        distances from the source must still come back."""
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0, cost=2.0)
        net.add_edge(2, 3, 1.0, cost=-5.0)  # cycle 2 <-> 3, unreachable
        net.add_edge(3, 2, 1.0, cost=-5.0)
        dist, _ = spfa(net, 0)
        assert dist[1] == 2.0
        assert dist[2] == float("inf") and dist[3] == float("inf")

    def test_negative_cycle_error_names_the_source(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0, cost=-1.0)
        net.add_edge(1, 0, 1.0, cost=-1.0)
        with pytest.raises(ValueError, match="source 0"):
            spfa(net, 0)

    def test_cycle_hidden_behind_saturated_edge(self):
        """With skip_saturated (the residual-graph default) a saturated
        edge cuts the source off from a negative cycle; traversing
        saturated edges re-exposes it."""
        net = FlowNetwork(3)
        gate = net.add_edge(0, 1, 1.0, cost=0.0)
        net.add_edge(1, 2, 1.0, cost=-4.0)
        net.add_edge(2, 1, 1.0, cost=-4.0)
        net.push(gate, 1.0)  # saturate the only way in
        dist, _ = spfa(net, 0)
        assert dist[1] == float("inf")
        with pytest.raises(ValueError, match="negative-cost cycle"):
            spfa(net, 0, skip_saturated=False)

    def test_skip_saturated_false_traverses_saturated_chain(self):
        """Turning off the residual-graph filter walks straight through
        saturated edges (and the zero-residual reverse edges become
        traversable too, without manufacturing a negative cycle here:
        every forward/reverse pair cancels to a zero-cost loop)."""
        net = FlowNetwork(3)
        gate = net.add_edge(0, 1, 1.0, cost=1.0)
        net.add_edge(1, 2, 1.0, cost=1.0)
        net.push(gate, 1.0)
        dist, _ = spfa(net, 0)
        assert dist == [0.0, float("inf"), float("inf")]
        dist, parent = spfa(net, 0, skip_saturated=False)
        assert dist == [0.0, 1.0, 2.0]
        path = extract_path(net, parent, 0, 2)
        assert [net.edges[e].head for e in path] == [1, 2]

    def test_single_node_graph(self):
        dist, parent = spfa(FlowNetwork(1), 0)
        assert dist == [0.0] and parent == [-1]

    def test_relaxations_reported_to_telemetry(self):
        net = line_graph([1.0, 1.0, 1.0])
        tele = SchedulerTelemetry()
        with telemetry.collect(tele):
            spfa(net, 0)
        assert tele.spfa_relaxations == 3  # one relaxation per line edge
        # Without a collector the counter stays untouched and nothing
        # crashes — the common path for direct library use.
        spfa(net, 0)
        assert tele.spfa_relaxations == 3

    def test_telemetry_accumulates_across_calls(self):
        net = line_graph([1.0, 2.0])
        tele = SchedulerTelemetry()
        with telemetry.collect(tele):
            spfa(net, 0)
            spfa(net, 0)
        assert tele.spfa_relaxations == 4


@settings(max_examples=50, deadline=None)
@given(
    st.integers(3, 7).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.integers(0, 9),
                ),
                min_size=1,
                max_size=15,
            ),
        )
    )
)
def test_matches_networkx_bellman_ford(data):
    n, raw = data
    edges = [(u, v, c) for u, v, c in raw if u != v]
    if not edges:
        return
    net = FlowNetwork(n)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u, v, c in edges:
        net.add_edge(u, v, 1.0, cost=float(c))
        # networkx keeps the min-cost parallel edge for comparison
        if not g.has_edge(u, v) or g[u][v]["weight"] > c:
            g.add_edge(u, v, weight=c)
    dist, _ = spfa(net, 0)
    expected = nx.single_source_bellman_ford_path_length(g, 0, weight="weight")
    for v in range(n):
        assert dist[v] == pytest.approx(expected.get(v, float("inf")))
