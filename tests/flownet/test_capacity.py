"""Multidimensional capacity (Equation 6) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.capacity import VectorCapacity


class TestLinearPart:
    def test_admits_dominated_demand(self):
        cap = VectorCapacity([32.0, 64.0])
        assert cap.admits(np.array([16.0, 32.0]))
        assert cap.admits(np.array([32.0, 64.0]))

    def test_rejects_any_exceeding_dimension(self):
        cap = VectorCapacity([32.0, 64.0])
        assert not cap.admits(np.array([33.0, 1.0]))
        assert not cap.admits(np.array([1.0, 65.0]))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dims"):
            VectorCapacity([32.0]).admits(np.array([1.0, 2.0]))

    def test_consume_and_release(self):
        cap = VectorCapacity([8.0, 16.0])
        cap.consume(np.array([3.0, 6.0]))
        assert cap.values.tolist() == [5.0, 10.0]
        cap.release(np.array([3.0, 6.0]))
        assert cap.values.tolist() == [8.0, 16.0]

    def test_consume_beyond_capacity_rejected(self):
        cap = VectorCapacity([2.0, 2.0])
        with pytest.raises(ValueError, match="exceeds"):
            cap.consume(np.array([3.0, 1.0]))

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            VectorCapacity([-1.0, 2.0])

    def test_rejects_empty_tuple(self):
        with pytest.raises(ValueError):
            VectorCapacity([])


class TestNonlinearPart:
    def test_predicate_vetoes_admission(self):
        cap = VectorCapacity([10.0], predicate=lambda d, ctx: ctx == "ok")
        assert cap.admits(np.array([1.0]), context="ok")
        assert not cap.admits(np.array([1.0]), context="blocked")

    def test_predicate_only_called_when_linear_passes(self):
        calls = []
        cap = VectorCapacity([1.0], predicate=lambda d, ctx: calls.append(1) or True)
        cap.admits(np.array([5.0]))
        assert calls == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.0, 100.0), min_size=1, max_size=4),
    st.data(),
)
def test_admission_is_monotone(values, data):
    """If demand d is admitted, any d' <= d is admitted too."""
    cap = VectorCapacity(values)
    demand = np.array(
        [data.draw(st.floats(0.0, v)) for v in values], dtype=float
    )
    smaller = demand * data.draw(st.floats(0.0, 1.0))
    assert cap.admits(demand)
    assert cap.admits(smaller)
