"""Metric derivation tests (Sections V.B–V.D)."""

import pytest

from repro.base import FailureReason, ScheduleResult
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.sim.metrics import SimulationMetrics, compute_metrics, relative_efficiency


def container(cid, app=0, cpu=4.0, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


def make_run(placements, undeployed=(), violating=(), n_machines=4):
    state = ClusterState(build_cluster(n_machines))
    result = ScheduleResult()
    containers = []
    for cid, machine, cpu, prio in placements:
        c = container(cid, app=cid, cpu=cpu, prio=prio)
        state.deploy(c, machine)
        result.placements[cid] = machine
        containers.append(c)
    for cid, reason, cpu, prio in undeployed:
        result.undeployed[cid] = reason
        containers.append(container(cid, app=cid, cpu=cpu, prio=prio))
    result.violating = set(violating)
    return result, state, containers


class TestViolationAccounting:
    def test_violation_pct_combines_undeployed_and_violating(self):
        result, state, cs = make_run(
            [(0, 0, 4.0, 0), (1, 1, 4.0, 0)],
            [(2, FailureReason.RESOURCES, 4.0, 0), (3, FailureReason.ANTI_AFFINITY, 4.0, 0)],
            violating={1},
        )
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.n_total == 4
        assert m.violation_pct == pytest.approx(75.0)
        assert m.undeployed_pct == pytest.approx(50.0)

    def test_anti_affinity_share(self):
        result, state, cs = make_run(
            [(0, 0, 4.0, 0)],
            [(1, FailureReason.ANTI_AFFINITY, 4.0, 0)],
            violating=set(),
        )
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.anti_affinity_share_pct == 100.0

    def test_priority_inversion_detected(self):
        """High-priority small container lost while a low-priority big
        one deployed -> priority violation."""
        result, state, cs = make_run(
            [(0, 0, 8.0, 0)],
            [(1, FailureReason.RESOURCES, 4.0, 2)],
        )
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.priority_violations == 1
        assert m.resource_failures == 0

    def test_plain_resource_failure(self):
        result, state, cs = make_run(
            [(0, 0, 8.0, 2)],
            [(1, FailureReason.RESOURCES, 16.0, 0)],
        )
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.resource_failures == 1
        assert m.priority_violations == 0

    def test_preempted_counts_as_priority_violation(self):
        result, state, cs = make_run(
            [], [(0, FailureReason.PREEMPTED, 4.0, 0)]
        )
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.priority_violations == 1

    def test_empty_run(self):
        result, state, cs = make_run([], [])
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.violation_pct == 0.0
        assert m.anti_affinity_share_pct == 0.0


class TestEfficiency:
    def test_utilization_over_used_machines_only(self):
        result, state, cs = make_run([(0, 0, 16.0, 0), (1, 1, 8.0, 0)])
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.used_machines == 2
        assert m.utilization_min == pytest.approx(0.25)
        assert m.utilization_max == pytest.approx(0.5)

    def test_relative_efficiency_equation_10(self):
        def metric(name, used):
            return SimulationMetrics(
                scheduler=name, arrival_order="trace", n_total=1, n_deployed=1,
                n_undeployed=0, n_violating_placements=0, violation_pct=0,
                undeployed_pct=0, anti_affinity_violations=0,
                priority_violations=0, resource_failures=0,
                anti_affinity_share_pct=0, used_machines=used,
                utilization_min=0, utilization_max=0, utilization_mean=0,
                migrations=0, preemptions=0, explored=0, latency_total_s=0,
                latency_per_container_ms=0,
            )

        eff = relative_efficiency([metric("a", 9242), metric("b", 14211)])
        assert eff["a"] == 0.0
        assert eff["b"] == pytest.approx(14211 / 9242 - 1)

    def test_relative_efficiency_empty(self):
        assert relative_efficiency([]) == {}


class TestLatency:
    def test_per_container_latency_equation_11(self):
        result, state, cs = make_run([(0, 0, 4.0, 0), (1, 1, 4.0, 0)])
        result.elapsed_s = 0.5
        m = compute_metrics("x", "trace", result, state, cs)
        assert m.latency_per_container_ms == pytest.approx(250.0)

    def test_row_serializes(self):
        result, state, cs = make_run([(0, 0, 4.0, 0)])
        m = compute_metrics("x", "chp", result, state, cs)
        row = m.row()
        assert row["scheduler"] == "x"
        assert row["arrival_order"] == "chp"
