"""Machine-failure injection and recovery tests."""

import numpy as np
import pytest

from repro import AladdinScheduler, Application, ClusterState, ConstraintSet, build_cluster
from repro.cluster.container import containers_of
from repro.sim.faults import (
    fail_machines,
    random_failures,
    recover,
    repair_machines,
)


def deployed_state(apps, n_machines=6):
    state = ClusterState(
        build_cluster(n_machines), ConstraintSet.from_applications(apps)
    )
    result = AladdinScheduler().schedule(containers_of(apps), state)
    assert result.n_undeployed == 0
    return state


class TestFailMachines:
    def test_evicts_and_zeroes(self):
        apps = [Application(0, 4, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        victim = state.assignment[0]
        report = fail_machines(state, [victim])
        assert report.n_displaced == 1
        assert (state.available[victim] == 0).all()
        assert 0 not in state.assignment

    def test_blast_radius_per_app(self):
        apps = [
            Application(0, 2, 4.0, 8.0),  # stackable: both on one machine
            Application(1, 2, 4.0, 8.0, anti_affinity_within=True),
        ]
        state = deployed_state(apps, n_machines=4)
        # Fail the machine hosting both replicas of app 0.
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        assert report.blast_radius.get(0) == 2

    def test_anti_affinity_caps_downtime(self):
        """The paper's reliability argument: spread replicas mean one
        failure downs at most 1/n of a within-AA application."""
        apps = [Application(0, 4, 4.0, 8.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        frac = report.max_app_downtime_fraction({0: 4})
        assert frac == 0.25

    def test_out_of_range_rejected(self):
        state = deployed_state([Application(0, 1, 1.0, 2.0)])
        with pytest.raises(IndexError):
            fail_machines(state, [99])

    def test_transactional_bad_id_mutates_nothing(self):
        """A bad id anywhere in the list must leave every machine
        untouched — no half-failed prefix (ISSUE 10 satellite)."""
        apps = [Application(0, 2, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        victims = sorted({state.assignment[0], state.assignment[1]})
        available = state.available.copy()
        version = state.version
        with pytest.raises(IndexError):
            fail_machines(state, victims + [99])
        assert state.available.tobytes() == available.tobytes()
        assert state.version == version
        assert 0 in state.assignment and 1 in state.assignment

    def test_already_failed_rejected_without_mutation(self):
        apps = [Application(0, 2, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        first, second = state.assignment[0], state.assignment[1]
        fail_machines(state, [first])
        available = state.available.copy()
        with pytest.raises(ValueError, match="already failed"):
            fail_machines(state, [second, first])
        assert state.available.tobytes() == available.tobytes()
        assert 1 in state.assignment, "machine listed before the bad id"

    def test_duplicate_ids_rejected(self):
        apps = [Application(0, 1, 8.0, 16.0)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        with pytest.raises(ValueError, match="already failed"):
            fail_machines(state, [machine, machine])
        assert 0 in state.assignment

    def test_fully_packed_machine_is_not_already_failed(self):
        """An all-zero available row with residents is *packed*, not
        down — it must still be failable."""
        apps = [Application(0, 1, 32.0, 64.0)]
        state = deployed_state(apps, n_machines=2)
        machine = state.assignment[0]
        assert not state.available[machine].any()
        report = fail_machines(state, [machine])
        assert report.n_displaced == 1


class TestRecovery:
    def test_displaced_land_elsewhere(self):
        apps = [Application(0, 3, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        recover(report, state, AladdinScheduler())
        assert report.recovered == 1
        assert report.lost == 0
        new_machine = state.assignment[0]
        assert new_machine != machine
        assert state.anti_affinity_violations() == 0

    def test_failed_machine_admits_nothing(self):
        apps = [Application(0, 2, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        recover(report, state, AladdinScheduler())
        assert state.assignment[0] != machine

    def test_lost_when_cluster_cannot_hold(self):
        apps = [Application(0, 2, 32.0, 64.0, anti_affinity_within=True)]
        state = deployed_state(apps, n_machines=2)
        report = fail_machines(state, [0])
        recover(report, state, AladdinScheduler())
        assert report.lost == 1

    def test_recovery_ordered_by_priority(self):
        apps = [
            Application(0, 1, 32.0, 64.0, priority=0),
            Application(1, 1, 32.0, 64.0, priority=3),
        ]
        state = deployed_state(apps, n_machines=2)
        # Fail both machines, then repair only one: the high-priority
        # container must win the single surviving slot.
        report = fail_machines(state, [0, 1])
        repair_machines(state, [0])
        recover(report, state, AladdinScheduler())
        assert 1 in state.assignment
        assert 0 not in state.assignment


class TestRepair:
    def test_repair_restores_capacity(self):
        apps = [Application(0, 1, 8.0, 16.0)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        repair_machines(state, [machine])
        assert (
            state.available[machine] == state.topology.capacity[machine]
        ).all()

    def test_repair_refuses_live_machine(self):
        apps = [Application(0, 1, 8.0, 16.0)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        with pytest.raises(ValueError, match="hosts containers"):
            repair_machines(state, [machine])

    def test_repair_range_checks_negative_ids(self):
        """Regression: ``repair_machines(state, [-1])`` used to let
        numpy wrap the index and silently "repair" the last machine."""
        apps = [Application(0, 1, 8.0, 16.0)]
        state = deployed_state(apps)
        last = state.n_machines - 1
        fail_machines(state, [last])
        with pytest.raises(IndexError):
            repair_machines(state, [-1])
        assert not state.available[last].any(), "machine -1 wrapped"
        with pytest.raises(IndexError):
            repair_machines(state, [state.n_machines])

    def test_repair_refuses_never_failed_machine(self):
        state = deployed_state([Application(0, 1, 8.0, 16.0)])
        empty = next(
            m for m in range(state.n_machines)
            if not state.machine_containers.get(m)
        )
        with pytest.raises(ValueError, match="not failed"):
            repair_machines(state, [empty])

    def test_repair_transactional_bad_id_mutates_nothing(self):
        apps = [Application(0, 1, 8.0, 16.0)]
        state = deployed_state(apps)
        machine = state.assignment[0]
        report = fail_machines(state, [machine])
        available = state.available.copy()
        with pytest.raises(IndexError):
            repair_machines(state, [machine, 99])
        assert state.available.tobytes() == available.tobytes()
        repair_machines(state, [machine])  # still repairable afterwards
        recover(report, state, AladdinScheduler())
        assert 0 in state.assignment


class TestRandomFailures:
    def test_used_only_selection(self):
        apps = [Application(0, 2, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        picks = random_failures(state, 2)
        assert all(state.container_count[m] > 0 for m in picks)

    def test_deterministic_with_rng(self):
        apps = [Application(0, 4, 8.0, 16.0, anti_affinity_within=True)]
        state = deployed_state(apps)
        a = random_failures(state, 2, rng=np.random.default_rng(5))
        b = random_failures(state, 2, rng=np.random.default_rng(5))
        assert a == b

    def test_empty_cluster(self):
        state = ClusterState(build_cluster(3))
        assert random_failures(state, 2) == []


class TestEndToEndChaos:
    def test_trace_survives_failure_wave(self, small_trace):
        """Kill 5 % of used machines on a replayed trace; recovery must
        re-place nearly everything without violations."""
        from repro.sim import Simulator

        sim = Simulator(small_trace, machine_pool_factor=1.3)
        run = sim.run(AladdinScheduler())
        state = run.state
        victims = random_failures(
            state, max(1, state.used_machines() // 20)
        )
        report = fail_machines(state, victims)
        recover(report, state, AladdinScheduler())
        assert state.anti_affinity_violations() == 0
        assert report.recovered >= 0.9 * report.n_displaced
