"""Placement-introspection tests."""

import pytest

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    GoKubeScheduler,
    MachineSpec,
    build_cluster,
)
from repro.cluster.container import Container, containers_of
from repro.sim.inspect import (
    application_spread,
    blocking_footprints,
    fragmentation,
    packing_quality,
)


def container(cid, app, cpu):
    return Container(container_id=cid, app_id=app, instance=0, cpu=cpu,
                     mem_gb=cpu * 2)


@pytest.fixture(scope="module")
def bench_trace():
    """The comparative diagnostics need benchmark-scale structure; the
    tiny test trace degenerates (its largest within-AA app alone spans
    the whole cluster, flattening scheduler differences)."""
    from repro import generate_trace

    return generate_trace(scale=0.04, seed=0)


class TestFragmentation:
    def test_empty_cluster_nothing_stranded(self):
        state = ClusterState(build_cluster(4))
        report = fragmentation(state)
        assert report.total_free_cpu == 4 * 32
        assert report.stranded_fraction(16) == 0.0
        assert report.largest_slot == 32.0

    def test_slivers_strand_large_demands(self):
        state = ClusterState(build_cluster(2, machine=MachineSpec(cpu=8, mem_gb=16)))
        state.deploy(container(0, 0, 5.0), 0)
        state.deploy(container(1, 1, 5.0), 1)
        report = fragmentation(state, demand_classes=(1, 4, 8))
        # 3 CPU free on each machine: fine for 1s, stranded for 4s/8s.
        assert report.stranded_fraction(1) == 0.0
        assert report.stranded_fraction(4) == 1.0
        assert report.largest_slot == 3.0

    def test_spreading_fragments_more_than_packing(self, bench_trace):
        from repro.sim import Simulator

        sim = Simulator(bench_trace, machine_pool_factor=1.2)
        frag = {}
        for sched in (AladdinScheduler(), GoKubeScheduler()):
            r = sim.run(sched)
            frag[sched.name] = fragmentation(r.state).stranded_fraction(16)
        assert frag["Go-Kube"] > frag["Aladdin(16)+IL+DL"]


class TestSpread:
    def test_counts_distinct_machines(self):
        apps = [Application(0, 3, 4.0, 8.0, anti_affinity_within=True),
                Application(1, 3, 4.0, 8.0)]
        state = ClusterState(
            build_cluster(4), ConstraintSet.from_applications(apps)
        )
        AladdinScheduler().schedule(containers_of(apps), state)
        report = application_spread(state)
        assert report.footprint(0) == 3  # within-AA forces spread
        assert report.footprint(1) == 1  # stackable app packs
        assert report.max_spread == 3

    def test_empty_state(self):
        report = application_spread(ClusterState(build_cluster(2)))
        assert report.mean_spread == 0.0
        assert report.max_spread == 0


class TestBlocking:
    def test_blocked_machines_counted(self):
        apps = [Application(0, 1, 4.0, 8.0, conflicts=frozenset({1})),
                Application(1, 1, 4.0, 8.0, conflicts=frozenset({0}))]
        state = ClusterState(
            build_cluster(4), ConstraintSet.from_applications(apps)
        )
        state.deploy(containers_of(apps)[0], 2)
        report = blocking_footprints(state)
        assert report.blocked_machines[1] == 1
        assert report.worst_app == 1
        assert report.blocked_fraction(1, 4) == 0.25

    def test_packing_blocks_less_than_spreading(self, bench_trace):
        """The Fig. 9 mechanism, measured directly: the noisy pool's
        victims see far fewer blocked machines under Aladdin."""
        from repro.sim import Simulator
        from repro.trace.arrival import anti_affinity_degree

        degs = sorted(
            bench_trace.applications,
            key=lambda a: -anti_affinity_degree(a, bench_trace),
        )
        worst_apps = [a.app_id for a in degs[:10]]
        sim = Simulator(bench_trace, machine_pool_factor=1.2)
        blocked = {}
        for sched in (AladdinScheduler(), GoKubeScheduler()):
            r = sim.run(sched)
            rep = blocking_footprints(r.state, worst_apps)
            blocked[sched.name] = sum(rep.blocked_machines.values())
        assert blocked["Aladdin(16)+IL+DL"] < blocked["Go-Kube"]


class TestPackingQuality:
    def test_perfect_packing(self):
        state = ClusterState(build_cluster(2))
        for i in range(8):
            state.deploy(container(i, i, 4.0), 0)
        assert packing_quality(state) == 1.0

    def test_spread_penalised(self):
        state = ClusterState(build_cluster(8))
        for i in range(8):
            state.deploy(container(i, i, 4.0), i)
        assert packing_quality(state) == pytest.approx(1 / 8)

    def test_empty_is_perfect(self):
        assert packing_quality(ClusterState(build_cluster(2))) == 1.0
