"""Simulator and runner tests."""

import pytest

from repro import (
    AladdinScheduler,
    ArrivalOrder,
    GoKubeScheduler,
    Simulator,
    generate_trace,
)
from repro.base import ScheduleResult, Scheduler
from repro.sim.results import dump_metrics
from repro.sim.runner import latency_sweep, run_experiment


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=2)


class TestSimulator:
    def test_default_cluster_size_from_trace(self, trace):
        sim = Simulator(trace)
        assert sim.n_machines == trace.config.n_machines

    def test_pool_factor_enlarges(self, trace):
        sim = Simulator(trace, machine_pool_factor=1.5)
        assert sim.n_machines == round(trace.config.n_machines * 1.5)

    def test_pool_factor_below_one_rejected(self, trace):
        with pytest.raises(ValueError):
            Simulator(trace, machine_pool_factor=0.5)

    def test_run_produces_metrics(self, trace):
        result = Simulator(trace).run(AladdinScheduler())
        m = result.metrics
        assert m.n_total == trace.n_containers
        assert m.scheduler.startswith("Aladdin")
        assert m.latency_total_s > 0

    def test_each_run_gets_fresh_state(self, trace):
        sim = Simulator(trace)
        r1 = sim.run(AladdinScheduler())
        r2 = sim.run(AladdinScheduler())
        assert r1.metrics.n_deployed == r2.metrics.n_deployed
        assert r1.state is not r2.state

    def test_divergent_scheduler_detected(self, trace):
        class Liar(Scheduler):
            name = "liar"

            def schedule(self, containers, state):
                result = ScheduleResult()
                result.placements[containers[0].container_id] = 0  # never deployed
                return result

        with pytest.raises(AssertionError, match="divergence"):
            Simulator(trace).run(Liar())

    def test_summary_line(self, trace):
        result = Simulator(trace).run(AladdinScheduler())
        text = result.summary()
        assert "machines=" in text and "violations=" in text


class TestRunner:
    def test_grid_runs_every_pair(self, trace):
        results = run_experiment(
            trace,
            [AladdinScheduler(), GoKubeScheduler()],
            orders=[ArrivalOrder.TRACE, ArrivalOrder.CHP],
        )
        assert len(results) == 4
        seen = {(r.metrics.scheduler, r.metrics.arrival_order) for r in results}
        assert len(seen) == 4

    def test_latency_sweep_uses_fresh_schedulers(self, trace):
        counts = [20, 40]
        results = latency_sweep(trace, AladdinScheduler, counts)
        assert len(results) == 2
        assert [r.state.n_machines for r in results] == counts

    def test_dump_metrics_jsonl(self, trace, tmp_path):
        results = run_experiment(trace, [AladdinScheduler()])
        path = dump_metrics(results, tmp_path / "out.jsonl")
        import json

        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 1
        assert rows[0]["n_total"] == trace.n_containers
