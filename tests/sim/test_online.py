"""Online (churn) simulation tests."""

import pytest

from repro import AladdinScheduler, GoKubeScheduler, generate_trace
from repro.sim.online import OnlineConfig, OnlineSimulator
from repro.trace.arrival import ArrivalOrder


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=0)


class TestConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(ticks=0),
            dict(lifetime_ticks=(0, 10)),
            dict(lifetime_ticks=(20, 10)),
            dict(machine_pool_factor=0.5),
        ],
    )
    def test_rejects_invalid(self, kw):
        with pytest.raises(ValueError):
            OnlineConfig(**kw)


class TestLifecycle:
    def test_everything_arrives_and_departs(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=20))
        result = sim.run(AladdinScheduler())
        assert result.total_arrived == trace.n_containers
        assert result.total_departed == result.total_arrived - result.total_failed
        assert result.samples[-1].running_containers == 0

    def test_running_count_conserved_per_tick(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=15))
        result = sim.run(AladdinScheduler())
        running = 0
        for s in result.samples:
            running += s.arrived_containers - s.pending_failures
            running -= s.departed_containers
            assert s.running_containers == running

    def test_no_violations_throughout(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=25))
        result = sim.run(AladdinScheduler())
        assert all(s.violations == 0 for s in result.samples)

    def test_utilization_bounded(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=25))
        result = sim.run(AladdinScheduler())
        assert all(0.0 <= s.mean_utilization <= 1.0 for s in result.samples)

    def test_deterministic(self, trace):
        cfg = OnlineConfig(ticks=10, seed=3)
        a = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        b = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        assert [s.running_containers for s in a.samples] == [
            s.running_containers for s in b.samples
        ]

    def test_byte_identical_metrics_across_runs(self, trace):
        """Two runs with the same trace, scheduler and seed serialise to
        byte-identical metrics — including the telemetry counters (SPFA
        relaxations, IL/DL prunes, cache hit/miss/invalidation totals),
        which must therefore be free of wall-clock or iteration-order
        nondeterminism.  Wall times are excluded by design."""
        cfg = OnlineConfig(ticks=12, seed=7)
        a = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        b = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        assert a.canonical_json() == b.canonical_json()
        assert a.canonical_json().encode() == b.canonical_json().encode()
        # The serialisation must actually cover the telemetry.
        assert '"telemetry"' in a.canonical_json()
        assert a.telemetry.counters() == b.telemetry.counters()
        assert a.telemetry.cache_hits > 0  # churn exercised the cache

    def test_canonical_json_excludes_wall_times(self, trace):
        cfg = OnlineConfig(ticks=8, seed=1)
        result = OnlineSimulator(trace, cfg).run(AladdinScheduler())
        assert result.total_elapsed_s > 0.0
        assert "elapsed" not in result.canonical_json()
        assert "phase" not in result.canonical_json()

    def test_seed_changes_schedule(self, trace):
        a = OnlineSimulator(trace, OnlineConfig(ticks=10, seed=1)).run(
            AladdinScheduler()
        )
        b = OnlineSimulator(trace, OnlineConfig(ticks=10, seed=2)).run(
            AladdinScheduler()
        )
        assert [s.arrived_containers for s in a.samples] != [
            s.arrived_containers for s in b.samples
        ]


class TestChurnDynamics:
    def test_peak_below_pool(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=20))
        result = sim.run(AladdinScheduler())
        assert result.peak_used_machines <= sim._topology.n_machines

    def test_short_lifetimes_lower_peak(self, trace):
        """Faster churn -> fewer containers concurrently running."""
        long_cfg = OnlineConfig(ticks=20, lifetime_ticks=(100, 200))
        short_cfg = OnlineConfig(ticks=20, lifetime_ticks=(2, 4))
        long_run = OnlineSimulator(trace, long_cfg).run(AladdinScheduler())
        short_run = OnlineSimulator(trace, short_cfg).run(AladdinScheduler())
        peak_long = max(s.running_containers for s in long_run.samples)
        peak_short = max(s.running_containers for s in short_run.samples)
        assert peak_short < peak_long

    def test_arrival_order_is_respected(self, trace):
        sim = OnlineSimulator(
            trace, OnlineConfig(ticks=10, arrival_order=ArrivalOrder.CHP)
        )
        result = sim.run(AladdinScheduler())
        assert result.total_arrived == trace.n_containers

    def test_series_accessor(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=10))
        result = sim.run(AladdinScheduler())
        series = result.series("used_machines")
        assert len(series) == len(result.samples)
        assert all(isinstance(t, int) for t, _ in series)

    def test_go_kube_runs_online_too(self, trace):
        sim = OnlineSimulator(trace, OnlineConfig(ticks=15))
        result = sim.run(GoKubeScheduler())
        assert result.total_arrived == trace.n_containers
        assert result.failure_rate <= 0.2
