"""Runner tests: sweeps and the minimum-cluster-size search."""

import pytest

from repro import AladdinScheduler, generate_trace
from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.sim.runner import latency_sweep, minimum_cluster_size, run_experiment
from repro.trace.arrival import ArrivalOrder


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.01, seed=4)


class ThresholdScheduler(Scheduler):
    """Deploys everything iff the cluster has at least ``threshold``
    machines — a fast, perfectly monotone probe for the binary search."""

    name = "threshold"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def schedule(self, containers, state):
        result = ScheduleResult()
        if state.n_machines >= self.threshold:
            for i, c in enumerate(containers):
                machine = i % state.n_machines
                if state.fits(c.demand_vector(state.topology.resources), machine):
                    state.deploy(c, machine, force=True)
                    result.placements[c.container_id] = machine
                else:
                    result.undeployed[c.container_id] = FailureReason.RESOURCES
        else:
            for c in containers:
                result.undeployed[c.container_id] = FailureReason.RESOURCES
        return result


class TestMinimumClusterSize:
    def test_finds_threshold(self, trace):
        # Threshold chosen comfortably above the CPU lower bound so the
        # mod-spread placement always fits.
        threshold = 3 * trace.config.n_machines
        n = minimum_cluster_size(
            trace, lambda: ThresholdScheduler(threshold), tolerance=0.0
        )
        assert n == threshold

    def test_tolerance_bounds_result(self, trace):
        threshold = 2 * trace.config.n_machines
        n = minimum_cluster_size(
            trace, lambda: ThresholdScheduler(threshold), tolerance=0.1
        )
        assert threshold <= n <= round(threshold * 1.12) + 1

    def test_returns_hi_when_impossible(self, trace):
        n = minimum_cluster_size(
            trace, lambda: ThresholdScheduler(10**9), lo=10, hi=20
        )
        assert n == 20

    def test_aladdin_near_lower_bound(self, trace):
        total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
        lb = total_cpu / 32
        n = minimum_cluster_size(trace, AladdinScheduler)
        assert n >= lb * 0.99
        assert n <= 2.0 * lb  # packing stays near the bound


class TestSweeps:
    def test_latency_sweep_points(self, trace):
        ns = [trace.config.n_machines, 2 * trace.config.n_machines]
        results = latency_sweep(trace, AladdinScheduler, ns)
        assert [r.state.n_machines for r in results] == ns

    def test_run_experiment_order_labels(self, trace):
        results = run_experiment(
            trace, [AladdinScheduler()], orders=[ArrivalOrder.CLA]
        )
        assert results[0].metrics.arrival_order == "cla"
