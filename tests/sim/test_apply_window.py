"""Edge cases of the shared window logic (`repro.sim.online.apply_window`).

One scheduling window — departures out, one scheduler round, a sample —
is the unit both front-ends apply (the simulated tick loop and the live
serving loop).  Its departure pass is batched
(:meth:`~repro.cluster.state.ClusterState.evict_block`), so these tests
pin the batching-sensitive edges: absent ids, a fault displacing a
container that the same window departs, the empty window, and the
per-phase timing contract of the profiling layer.
"""

import json

import numpy as np
import pytest

from repro.core import AladdinScheduler
from repro.cluster.state import ClusterState
from repro.sim.faults import fail_machines
from repro.sim.online import (
    WINDOW_PHASES,
    OnlineConfig,
    OnlineResult,
    apply_window,
    pool_topology,
    record_window,
)
from repro.trace import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=0)


@pytest.fixture
def state(trace):
    topology = pool_topology(trace, OnlineConfig())
    return ClusterState(topology, trace.constraints)


def place_first_apps(trace, state, n_apps=3):
    """Schedule the first few applications; returns their containers."""
    wanted = {a.app_id for a in trace.applications[:n_apps]}
    batch = [c for c in trace.containers if c.app_id in wanted]
    sample, schedule = apply_window(
        AladdinScheduler(), state, tick=0, batch=batch
    )
    assert schedule is not None and schedule.n_undeployed == 0
    return batch


class TestDepartureBatching:
    def test_absent_ids_are_skipped(self, trace, state):
        batch = place_first_apps(trace, state)
        ids = [c.container_id for c in batch[:4]]
        ghost = max(c.container_id for c in trace.containers) + 1000
        sample, _ = apply_window(
            AladdinScheduler(), state, tick=1,
            departures=ids + [ghost, ids[0]],  # absent + already-listed
        )
        # ids[0] appears twice: evicted once, absent on the second pass
        # of the same block; the ghost was never deployed at all.
        assert sample.departed_containers == len(ids)
        for cid in ids:
            assert cid not in state.assignment

    def test_fault_displaced_container_departing_same_window(
        self, trace, state
    ):
        """A departure racing a fault: the container is already gone
        from the state when the window's departure pass runs, and must
        be skipped rather than double-evicted."""
        batch = place_first_apps(trace, state, n_apps=8)
        victim_cid = batch[0].container_id
        victim_machine = state.assignment[victim_cid]
        report = fail_machines(state, [victim_machine])
        displaced = {c.container_id for c in report.displaced}
        assert victim_cid in displaced
        survivor = next(
            c.container_id for c in batch
            if c.container_id in state.assignment
            and state.assignment[c.container_id] != victim_machine
        )
        sample, _ = apply_window(
            AladdinScheduler(), state, tick=1,
            departures=[victim_cid, survivor],
        )
        assert sample.departed_containers == 1  # only the survivor
        assert survivor not in state.assignment

    def test_empty_window_is_inert(self, state):
        version_before = state.version
        sample, schedule = apply_window(AladdinScheduler(), state, tick=0)
        assert schedule is None
        assert sample.arrived_containers == 0
        assert sample.departed_containers == 0
        assert state.version == version_before


class TestWindowPhases:
    def test_sample_carries_window_phase_times(self, trace, state):
        placed = place_first_apps(trace, state)
        next_app = trace.applications[3].app_id
        arrivals = [c for c in trace.containers if c.app_id == next_app]
        sample, schedule = apply_window(
            AladdinScheduler(), state, tick=1,
            departures=[placed[0].container_id], batch=arrivals,
        )
        assert "window_departures" in sample.phase_s
        assert "window_sample" in sample.phase_s
        # Scheduler phases ride along on scheduling windows.
        assert "search" in sample.phase_s
        result = OnlineResult()
        record_window(result, sample, schedule)
        assert "window_record" in sample.phase_s
        # window_pool/window_power record only on autoscale runs.
        for name in WINDOW_PHASES:
            if name in ("window_pool", "window_power"):
                assert name not in result.telemetry.phase_time_s
            else:
                assert name in result.telemetry.phase_time_s
        # Folding is double-count-free: the run-level window phases
        # equal this (single) sample's, and the scheduler phases came
        # in via the telemetry merge only.
        assert result.telemetry.phase_time_s["window_departures"] == (
            sample.phase_s["window_departures"]
        )
        assert result.telemetry.phase_time_s["search"] == pytest.approx(
            schedule.telemetry.phase_time_s["search"]
        )

    def test_phase_times_stay_out_of_canonical_json(self, trace, state):
        batch = place_first_apps(trace, state)
        sample, schedule = apply_window(
            AladdinScheduler(), state, tick=1,
            departures=[batch[0].container_id],
        )
        result = OnlineResult()
        record_window(result, sample, schedule)
        payload = json.loads(result.canonical_json())
        assert "phase_s" not in payload["samples"][0]
        assert "phase_time_s" not in payload["telemetry"]
