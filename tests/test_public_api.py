"""Public-API surface tests: the names DESIGN.md §6 promises exist,
are importable from the top-level package, and carry documentation."""

import inspect

import pytest

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_design_md_surface(self):
        """The names promised by DESIGN.md §6."""
        for name in (
            "ClusterSpec",
            "build_cluster",
            "TraceConfig",
            "generate_trace",
            "ArrivalOrder",
            "AladdinScheduler",
            "AladdinConfig",
            "GoKubeScheduler",
            "FirmamentScheduler",
            "MedeaScheduler",
            "Simulator",
            "SimulationResult",
            "run_experiment",
        ):
            assert name in repro.__all__, name

    def test_every_public_callable_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_every_module_documented(self):
        import pkgutil
        import importlib

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, missing

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_scheduler_registry_complete(self):
        from repro import SCHEDULERS

        assert set(SCHEDULERS) == {
            "Go-Kube",
            "Firmament-TRIVIAL",
            "Firmament-QUINCY",
            "Firmament-OCTOPUS",
            "Medea",
        }
        for name, (factory, description) in SCHEDULERS.items():
            scheduler = factory()
            assert hasattr(scheduler, "schedule")
            assert description
