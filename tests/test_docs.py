"""Documentation snippets must execute (ISSUE 3 satellite).

Extracts every fenced ```python block from README.md,
docs/ARCHITECTURE.md and docs/WORKLOADS.md, concatenates each file's
blocks in order (later
snippets may build on earlier ones), and runs them in a fresh
interpreter with ``PYTHONPATH=src`` — the same environment a reader
copy-pasting from the docs would have.  A doc example that drifts from
the API fails here, not on a reader's machine.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text())


@pytest.mark.parametrize(
    "relpath", ["README.md", "docs/ARCHITECTURE.md", "docs/WORKLOADS.md"]
)
def test_doc_snippets_execute(relpath):
    path = REPO / relpath
    blocks = python_blocks(path)
    assert blocks, f"{relpath} has no ```python blocks to check"
    script = "\n\n".join(blocks)
    proc = subprocess.run(
        [sys.executable, "-"],
        input=script,
        capture_output=True,
        text=True,
        timeout=240,
        cwd=REPO,
        env={
            "PYTHONPATH": str(REPO / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )
    assert proc.returncode == 0, (
        f"{relpath} snippets failed:\n--- script ---\n{script}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )


def test_architecture_doc_is_linked():
    """The satellite contract: ARCHITECTURE.md exists and is reachable
    from both README.md and docs/ALGORITHMS.md."""
    assert (REPO / "docs" / "ARCHITECTURE.md").exists()
    assert "docs/ARCHITECTURE.md" in (REPO / "README.md").read_text()
    assert "ARCHITECTURE.md" in (REPO / "docs" / "ALGORITHMS.md").read_text()


def test_workloads_doc_is_linked():
    """The workloads doc exists and is reachable from the README and
    the architecture module map."""
    assert (REPO / "docs" / "WORKLOADS.md").exists()
    assert "docs/WORKLOADS.md" in (REPO / "README.md").read_text()
    assert "WORKLOADS.md" in (REPO / "docs" / "ARCHITECTURE.md").read_text()
