"""Integration of the extension features, combined.

Gang placement, rack-scoped spreading, soft affinity and heterogeneous
machine shapes all in one workload: the combinations must compose
without violating any hard constraint.
"""

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    MachineSpec,
    build_heterogeneous_cluster,
)
from repro.cluster.container import containers_of
from repro.sim.faults import fail_machines, recover


def workload():
    return [
        # rack-spread storage tier
        Application(0, 2, 8.0, 16.0, anti_affinity_within=True,
                    anti_affinity_scope="rack", name="storage"),
        # machine-spread web tier, anti-affine to batch
        Application(1, 3, 4.0, 8.0, anti_affinity_within=True,
                    conflicts=frozenset({3}), name="web"),
        # cache prefers web's machines
        Application(2, 2, 2.0, 4.0, affinities=frozenset({1}), name="cache"),
        # noisy batch tier
        Application(3, 6, 1.0, 2.0, conflicts=frozenset({1}), name="batch"),
    ]


def mixed_state(apps):
    topo = build_heterogeneous_cluster(
        [
            (4, MachineSpec(cpu=16.0, mem_gb=32.0)),
            (2, MachineSpec(cpu=64.0, mem_gb=128.0)),
        ],
        machines_per_rack=3,
    )
    return ClusterState(topo, ConstraintSet.from_applications(apps))


class TestCombinedExtensions:
    def test_all_constraints_hold_together(self):
        apps = workload()
        state = mixed_state(apps)
        result = AladdinScheduler().schedule(containers_of(apps), state)
        assert result.n_undeployed == 0
        assert state.anti_affinity_violations() == 0
        # storage replicas on distinct racks
        storage = [
            m for cid, m in result.placements.items()
            if state.container(cid).app_id == 0
        ]
        racks = {int(state.topology.rack_of[m]) for m in storage}
        assert len(racks) == 2
        # web replicas on distinct machines, never with batch
        web_machines = [
            m for cid, m in result.placements.items()
            if state.container(cid).app_id == 1
        ]
        assert len(set(web_machines)) == 3
        batch_machines = {
            m for cid, m in result.placements.items()
            if state.container(cid).app_id == 3
        }
        assert not (set(web_machines) & batch_machines)

    def test_cache_lands_near_web(self):
        apps = workload()
        state = mixed_state(apps)
        result = AladdinScheduler().schedule(containers_of(apps), state)
        web_machines = {
            m for cid, m in result.placements.items()
            if state.container(cid).app_id == 1
        }
        cache_machines = [
            m for cid, m in result.placements.items()
            if state.container(cid).app_id == 2
        ]
        # At least one cache replica co-locates with a web replica
        # (affinity is soft; capacity can push the second elsewhere).
        assert any(m in web_machines for m in cache_machines)

    def test_gang_mode_on_combined_workload(self):
        apps = workload()
        state = mixed_state(apps)
        cfg = AladdinConfig(gang_scheduling=True)
        result = AladdinScheduler(cfg).schedule(containers_of(apps), state)
        # Gangs either fully place or fully roll back, per app.
        per_app: dict[int, int] = {}
        for cid in result.placements:
            app = state.container(cid).app_id
            per_app[app] = per_app.get(app, 0) + 1
        for app_id, placed in per_app.items():
            assert placed == apps[app_id].n_containers

    def test_failure_recovery_respects_all_constraints(self):
        apps = workload()
        state = mixed_state(apps)
        result = AladdinScheduler().schedule(containers_of(apps), state)
        assert result.n_undeployed == 0
        # Kill the machine hosting the first storage replica.
        victim = result.placements[0]
        report = fail_machines(state, [victim])
        recover(report, state, AladdinScheduler())
        assert state.anti_affinity_violations() == 0
        if 0 in state.assignment:  # re-placed: must be on the other rack
            new_rack = int(state.topology.rack_of[state.assignment[0]])
            sibling_rack = int(state.topology.rack_of[state.assignment[1]])
            assert new_rack != sibling_rack
