"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["0.01"]),
    ("figure1_motivation.py", []),
    ("migration_scenarios.py", []),
    ("black_friday_scaleout.py", []),
    ("trace_replay.py", ["0.01"]),
    ("kubernetes_codesign.py", []),
    ("online_churn.py", ["0.01", "15"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_are_covered():
    """Every script in examples/ has a smoke test."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {script for script, _ in CASES}
    assert shipped == tested
