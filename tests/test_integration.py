"""End-to-end integration tests: whole-trace replays and the headline
comparative claims of the paper, at test scale."""

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    Simulator,
    generate_trace,
    relative_efficiency,
    run_experiment,
)


@pytest.fixture(scope="module")
def trace():
    # The default benchmark trace at a reduced scale.
    return generate_trace(scale=0.03, seed=0)


@pytest.fixture(scope="module")
def results(trace):
    sim = Simulator(trace)
    out = {}
    for sched in [
        AladdinScheduler(),
        GoKubeScheduler(),
        FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=8),
        MedeaScheduler(MedeaWeights(1, 1, 0)),
    ]:
        out[sched.name] = sim.run(sched)
    return out


class TestHeadlineClaims:
    def test_aladdin_zero_violations(self, results):
        m = results["Aladdin(16)+IL+DL"].metrics
        assert m.violation_pct == 0.0

    def test_aladdin_best_or_tied_on_violations(self, results):
        aladdin = results["Aladdin(16)+IL+DL"].metrics.violation_pct
        for name, r in results.items():
            assert aladdin <= r.metrics.violation_pct + 1e-9, name

    def test_aladdin_uses_fewest_machines(self, results):
        eff = relative_efficiency([r.metrics for r in results.values()])
        assert eff["Aladdin(16)+IL+DL"] == 0.0

    def test_go_kube_worst_efficiency(self, results):
        """Go-Kube's spreading burns the most machines (Fig. 10)."""
        used = {n: r.metrics.used_machines for n, r in results.items()}
        assert used["Go-Kube"] == max(used.values())


class TestArrivalOrders:
    def test_aladdin_robust_across_orders(self, trace):
        """Fig. 10: Aladdin's machine count is stable for all four
        arrival characteristics."""
        sim = Simulator(trace, machine_pool_factor=1.5)
        used = []
        for order in (ArrivalOrder.CHP, ArrivalOrder.CLP, ArrivalOrder.CLA,
                      ArrivalOrder.CSA):
            r = sim.run(AladdinScheduler(), order)
            assert r.metrics.violation_pct <= 1.0
            used.append(r.metrics.used_machines)
        spread = (max(used) - min(used)) / max(used)
        assert spread <= 0.15

    def test_grid_experiment_runs(self, trace):
        results = run_experiment(
            trace,
            [AladdinScheduler(), GoKubeScheduler()],
            orders=[ArrivalOrder.CHP, ArrivalOrder.CSA],
            machine_pool_factor=1.5,
        )
        assert len(results) == 4


class TestLatencyShape:
    def test_il_dl_reduce_latency(self, trace):
        """Fig. 12: the prunings cut Aladdin's search work."""
        sim = Simulator(trace)
        base = sim.run(
            AladdinScheduler(AladdinConfig(enable_il=False, enable_dl=False))
        )
        pruned = sim.run(AladdinScheduler())
        assert pruned.schedule.explored < base.schedule.explored

    def test_overhead_grows_with_cluster(self, trace):
        from repro.sim import latency_sweep

        n = trace.config.n_machines
        results = latency_sweep(trace, AladdinScheduler, [n, 4 * n])
        assert (
            results[1].schedule.explored > results[0].schedule.explored
        )
