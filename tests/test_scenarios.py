"""The paper's worked examples as executable scenarios.

* Fig. 1 — the motivating example: one S0 and two S1 containers, S1 has
  higher priority and anti-affinity against S0.  Firmament leaves S0
  unscheduled; Medea (violation-tolerant) co-locates in violation;
  Aladdin places all three cleanly.
* Fig. 3 — the preemption/migration mechanisms.
* Fig. 7 — rescheduling with two-dimensional resources.
"""

import importlib.util

import numpy as np
import pytest

from repro.baselines.firmament import FirmamentScheduler
from repro.baselines.firmament_policies import FirmamentPolicy
from repro.baselines.medea import MedeaScheduler, MedeaWeights
from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler


def figure1_workload():
    """Two machines; one S0 and two S1 containers arrive together.

    Demands are sized so all three fit on two machines only if S0
    shares a machine with one S1 — exactly the Fig. 1 tension: sharing
    violates anti-affinity, spreading needs a third machine.
    """
    s0 = Application(
        app_id=0, n_containers=1, cpu=12.0, mem_gb=24.0, priority=0,
        conflicts=frozenset({1}),
    )
    s1 = Application(
        app_id=1, n_containers=2, cpu=20.0, mem_gb=40.0, priority=1,
        anti_affinity_within=True, conflicts=frozenset({0}),
    )
    apps = [s0, s1]
    return apps, containers_of(apps)


def fresh_state(apps, n_machines=2, cpu=32.0):
    topo = build_cluster(n_machines, machine=MachineSpec(cpu=cpu, mem_gb=cpu * 2))
    return ClusterState(topo, ConstraintSet.from_applications(apps))


class TestFigure1:
    def test_firmament_starves_a_container(self):
        """Fig. 1(b): Firmament avoids the violation by leaving a
        container unscheduled on the 2-machine cluster."""
        apps, containers = figure1_workload()
        state = fresh_state(apps)
        result = FirmamentScheduler(
            FirmamentPolicy.TRIVIAL, reschd=1, max_rounds=8
        ).schedule(containers, state)
        assert result.n_undeployed == 1
        assert state.anti_affinity_violations() == 0

    @pytest.mark.skipif(
        importlib.util.find_spec("scipy") is None,
        reason="exact MILP baseline needs the solver extra (scipy)",
    )
    def test_medea_tolerates_a_violation(self):
        """Fig. 1(c): the exact weighted ILP with a non-zero tolerance
        weight deploys all three containers by co-locating S0 with an
        S1 — minimising machines at the price of one violated rule."""
        apps, containers = figure1_workload()
        state = fresh_state(apps)
        result = MedeaScheduler(MedeaWeights(1, 1, 1), exact=True).schedule(
            containers, state
        )
        assert result.n_deployed == 3
        assert len(result.violating) >= 1
        assert state.anti_affinity_violations() >= 2

    def test_medea_hard_mode_starves_instead(self):
        apps, containers = figure1_workload()
        state = fresh_state(apps)
        result = MedeaScheduler(MedeaWeights(1, 1, 0)).schedule(containers, state)
        assert result.n_undeployed == 1
        assert state.anti_affinity_violations() == 0

    def test_aladdin_places_all_without_violations(self):
        """Aladdin's claim: all three containers, zero violations —
        it opens a third machine rather than violate or starve."""
        apps, containers = figure1_workload()
        state = fresh_state(apps, n_machines=3)
        result = AladdinScheduler().schedule(containers, state)
        assert result.n_deployed == 3
        assert result.n_undeployed == 0
        assert state.anti_affinity_violations() == 0


class TestFigure3:
    def test_3a_no_preemption_of_higher_priority(self):
        """Fig. 3(a): B (low priority, bigger) must NOT displace A."""
        a = Application(app_id=0, n_containers=1, cpu=8.0, mem_gb=16.0,
                        priority=2, conflicts=frozenset({1}))
        b = Application(app_id=1, n_containers=1, cpu=16.0, mem_gb=32.0,
                        priority=0, conflicts=frozenset({0}))
        apps = [a, b]
        state = fresh_state(apps, n_machines=1)
        result = AladdinScheduler(
            AladdinConfig(final_repair=False)
        ).schedule(containers_of(apps), state)
        assert 0 in result.placements  # A stays
        assert 1 in result.undeployed  # B cannot displace it

    def test_3b_migration_admits_blocked_container(self):
        """Fig. 3(b): A runs on M; B can only be deployed to M; A can
        run on both -> A migrates M -> N and B takes M."""
        a = Application(app_id=0, n_containers=1, cpu=4.0, mem_gb=8.0,
                        priority=2, conflicts=frozenset({1}))
        b = Application(app_id=1, n_containers=1, cpu=28.0, mem_gb=56.0,
                        priority=0, conflicts=frozenset({0}))
        filler = Application(app_id=2, n_containers=1, cpu=26.0, mem_gb=52.0)
        apps = [a, b, filler]
        state = fresh_state(apps, n_machines=2)
        # The Fig. 3(b) starting position: A on M (machine 0), the
        # filler occupies most of N (machine 1).
        containers = containers_of(apps)
        a_c, b_c, filler_c = containers
        state.deploy(a_c, 0)
        state.deploy(filler_c, 1)
        result = AladdinScheduler().schedule([b_c], state)
        assert result.n_undeployed == 0
        assert result.migrations == 1
        assert state.assignment[a_c.container_id] == 1  # A moved M -> N
        assert state.assignment[b_c.container_id] == 0  # B took M
        assert state.anti_affinity_violations() == 0


class TestFigure7:
    """Fig. 7: tasks S0-S2 land in the arrangement of Fig. 7(b) —
    sequential packing with two-dimensional demands — and S3's
    deployment fails until Aladdin migrates a task (Fig. 7c)."""

    def _bad_arrangement(self):
        apps = [
            Application(app_id=0, n_containers=1, cpu=5.0, mem_gb=3.0),
            Application(app_id=1, n_containers=1, cpu=2.0, mem_gb=1.0),
            Application(app_id=2, n_containers=1, cpu=3.0, mem_gb=4.0),
            Application(app_id=3, n_containers=1, cpu=8.0, mem_gb=6.0),
        ]
        state = fresh_state(apps, n_machines=2, cpu=10.0)
        # mem capacity is cpu*2 = 20; shrink it to 10 for a square box.
        state.available[:, 1] = 10.0
        state.topology.capacity[:, 1] = 10.0
        containers = containers_of(apps)
        s0, s1, s2, s3 = containers
        state.deploy(s0, 0)
        state.deploy(s1, 0)  # machine 0: (3, 6) remaining
        state.deploy(s2, 1)  # machine 1: (7, 6) remaining
        return state, s3

    def test_s3_blocked_without_migration(self):
        state, s3 = self._bad_arrangement()
        cfg = AladdinConfig(
            enable_migration=False, enable_preemption=False, final_repair=False
        )
        result = AladdinScheduler(cfg).schedule([s3], state)
        assert s3.container_id in result.undeployed

    def test_rescheduling_fits_s3(self):
        state, s3 = self._bad_arrangement()
        result = AladdinScheduler().schedule([s3], state)
        assert result.n_undeployed == 0
        assert result.migrations == 1  # bounded rescheduling cost
        assert (state.available >= 0).all()
