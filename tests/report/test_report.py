"""Report rendering tests."""

from repro.report.figures import format_series, paper_vs_measured
from repro.report.tables import format_table


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 6 for line in lines)

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestSeries:
    def test_bars_scale_to_peak(self):
        out = format_series("s", [("a", 1.0), ("b", 2.0)])
        lines = out.splitlines()
        assert lines[0] == "s"
        bar_a = lines[1].split()[-1]
        bar_b = lines[2].split()[-1]
        assert len(bar_b) > len(bar_a)

    def test_empty_series(self):
        assert "(no data)" in format_series("s", [])

    def test_paper_vs_measured_layout(self):
        out = paper_vs_measured(
            [("violations %", 20.0, 18.5), ("machines", 9242, 438)],
            title="Fig. 9",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig. 9"
        assert "paper" in lines[1] and "measured" in lines[1]
        assert "20.00" in lines[2] and "18.50" in lines[2]
