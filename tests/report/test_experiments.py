"""Experiments-report generator tests."""

import pytest

from repro import generate_trace
from repro.report import ExperimentOptions, run_all_experiments


@pytest.fixture(scope="module")
def report():
    trace = generate_trace(scale=0.02, seed=0)
    options = ExperimentOptions(include_fig10=False, include_fig12=False)
    return run_all_experiments(trace, options)


class TestReportStructure:
    def test_all_quick_sections_present(self, report):
        for section in ("Fig. 8", "Fig. 9", "Fig. 11", "Fig. 13"):
            assert section in report

    def test_slow_sections_skipped_when_disabled(self, report):
        assert "Fig. 10" not in report
        assert "Fig. 12" not in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|---"):
                header = lines[i - 1]
                assert header.count("|") == line.count("|")

    def test_all_schedulers_appear(self, report):
        for name in ("Go-Kube", "Firmament-TRIVIAL", "Firmament-QUINCY",
                     "Firmament-OCTOPUS", "Medea", "Aladdin"):
            assert name in report

    def test_trace_identity_recorded(self, report):
        assert "scale=0.02" in report
        assert "seed=0" in report


class TestCliIntegration:
    def test_experiments_command_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        rc = main([
            "experiments", "--scale", "0.01", "--quick", "--out", str(out)
        ])
        assert rc == 0
        assert out.exists()
        assert "Fig. 9" in out.read_text()
