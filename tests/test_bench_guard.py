"""The bench-report output-path guard (ISSUE 3 satellite fix).

``benchmarks/bench_report.py --smoke`` used to clobber the committed
full measurement in ``BENCH_fig12.json`` when run without ``--out``.
The guard routes smoke output to ``BENCH_fig12_smoke.json`` by default
and refuses an explicit ``--out BENCH_fig12.json`` unless forced.

Also guards the committed ``BENCH_trace.json`` artefact itself: the
churn fast path exists because that file once *documented* the cache
losing to no-cache on its own home turf (churn-storm, 940 ms vs
742 ms).  The committed measurement must never regress to that state
again.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_report import host_info, resolve_out


def test_full_run_defaults_to_committed_path():
    assert resolve_out(None, smoke=False, force=False) == "BENCH_fig12.json"


def test_smoke_run_defaults_to_side_path():
    assert (
        resolve_out(None, smoke=True, force=False)
        == "BENCH_fig12_smoke.json"
    )


def test_smoke_refuses_committed_path():
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        resolve_out("BENCH_fig12.json", smoke=True, force=False)
    # Any directory prefix still points at the committed artefact name.
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        resolve_out("./BENCH_fig12.json", smoke=True, force=False)


def test_smoke_allows_explicit_other_path():
    # The CI smoke job writes to /tmp explicitly; that must keep working.
    out = resolve_out("/tmp/BENCH_fig12_smoke.json", smoke=True, force=False)
    assert out == "/tmp/BENCH_fig12_smoke.json"


def test_force_overrides_the_guard():
    out = resolve_out("BENCH_fig12.json", smoke=True, force=True)
    assert out == "BENCH_fig12.json"


def test_full_run_may_target_committed_path():
    out = resolve_out("BENCH_fig12.json", smoke=False, force=False)
    assert out == "BENCH_fig12.json"


def test_rescue_mode_defaults():
    assert (
        resolve_out(None, smoke=False, force=False, mode="rescue")
        == "BENCH_rescue.json"
    )
    assert (
        resolve_out(None, smoke=True, force=False, mode="rescue")
        == "BENCH_rescue_smoke.json"
    )


def test_solver_mode_defaults():
    assert (
        resolve_out(None, smoke=False, force=False, mode="solver")
        == "BENCH_solver.json"
    )
    assert (
        resolve_out(None, smoke=True, force=False, mode="solver")
        == "BENCH_solver_smoke.json"
    )


def test_smoke_refuses_either_committed_artefact():
    # The guard is mode-independent: a rescue smoke run must not
    # clobber the fig12 artefact and vice versa.
    for name in ("BENCH_rescue.json", "BENCH_fig12.json", "BENCH_solver.json"):
        for mode in ("fig12", "rescue", "solver"):
            with pytest.raises(SystemExit, match="refusing to overwrite"):
                resolve_out(name, smoke=True, force=False, mode=mode)


class TestCommittedTraceArtifact:
    """The committed BENCH_trace.json must tell the churn-fast-path story."""

    @pytest.fixture(scope="class")
    def report(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
        with path.open() as fh:
            return json.load(fh)

    def test_cache_pays_for_itself_on_churn_storm(self, report):
        # The regression this PR fixed: full (cache on) must not lose
        # to no-cache on the scenario built to stress the cache.  The
        # recorded ratio and the row wall times must agree.
        storm = report["scenarios"]["churn-storm"]
        variants = storm["variants"]
        assert (
            variants["full"]["wall_time_ms"]
            <= variants["no-cache"]["wall_time_ms"]
        )
        assert storm["full_vs_no_cache_ratio"] <= 1.0

    def test_every_scenario_records_the_ratio(self, report):
        for name, scenario in report["scenarios"].items():
            assert "full_vs_no_cache_ratio" in scenario, name
            variants = scenario["variants"]
            expected = (
                variants["full"]["wall_time_ms"]
                / variants["no-cache"]["wall_time_ms"]
            )
            assert scenario["full_vs_no_cache_ratio"] == pytest.approx(
                expected, abs=1e-3
            ), name

    def test_phase_breakdowns_present(self, report):
        # Satellite (a): every variant row carries the per-phase wall
        # breakdown, and the window phases are in it (scheduler phases
        # appear whenever any tick scheduled, which every scenario does).
        for name, scenario in report["scenarios"].items():
            for vname, row in scenario["variants"].items():
                phases = row["phase_time_s"]
                assert phases, f"{name}/{vname}: empty phase_time_s"
                for phase in ("window_departures", "window_sample",
                              "window_record", "search"):
                    assert phase in phases, f"{name}/{vname}: {phase}"
                assert all(dt >= 0 for dt in phases.values())

    def test_decisions_identical_everywhere(self, report):
        for name, scenario in report["scenarios"].items():
            assert scenario["decisions_identical"] is True, name


def test_power_mode_defaults():
    assert (
        resolve_out(None, smoke=False, force=False, mode="power")
        == "BENCH_power.json"
    )
    assert (
        resolve_out(None, smoke=True, force=False, mode="power")
        == "BENCH_power_smoke.json"
    )
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        resolve_out("BENCH_power.json", smoke=True, force=False, mode="power")


class TestCommittedPowerArtifact:
    """The committed BENCH_power.json must tell the lifecycle story:
    autoscale powers down most of the cluster at no validity cost, and
    keep-alive pools beat cold-starting every function placement."""

    @pytest.fixture(scope="class")
    def report(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_power.json"
        with path.open() as fh:
            return json.load(fh)

    def test_cold_start_rate_recorded_everywhere(self, report):
        for name, scenario in report["scenarios"].items():
            for policy, row in scenario["policies"].items():
                assert "cold_start_rate" in row, f"{name}/{policy}"
                assert 0.0 <= row["cold_start_rate"] <= 1.0
            # The always-on baseline never cold-starts: the lifecycle
            # (and with it every cold-start charge) is off.
            assert scenario["policies"]["always-on"]["cold_start_rate"] == 0.0

    def test_decisions_identical_across_engine_variants(self, report):
        for name, scenario in report["scenarios"].items():
            assert scenario["decisions_identical"] is True, name

    def test_autoscale_beats_always_on(self, report):
        for name, scenario in report["scenarios"].items():
            rows = scenario["policies"]
            always = rows["always-on"]["machine_ticks"]
            for policy in ("fixed", "ttl", "lru", "none"):
                assert rows[policy]["machine_ticks"] < always, (
                    f"{name}/{policy}"
                )
                assert rows[policy]["failed"] <= rows["always-on"]["failed"]

    def test_keep_alive_beats_no_pool_on_diurnal(self, report):
        rows = report["scenarios"]["diurnal"]["policies"]
        assert rows["fixed"]["machine_ticks"] <= rows["none"]["machine_ticks"]
        assert (
            rows["fixed"]["cold_start_rate"] < rows["none"]["cold_start_rate"]
        )
        assert rows["fixed"]["warm_hits"] > 0
        assert rows["none"]["warm_hits"] == 0


def test_host_info_stamps_provenance():
    # Every committed BENCH_*.json header must say what it was measured
    # on: CPU budget, platform, interpreter and git revision.
    info = host_info()
    assert set(info) == {"cpu_count", "platform", "python", "git_rev"}
    assert isinstance(info["cpu_count"], int) and info["cpu_count"] >= 1
    assert info["platform"]
    # In a checkout the revision resolves; outside one it is None.
    assert info["git_rev"] is None or len(info["git_rev"]) >= 7
