"""Quality-parity harness: the LP solver engine vs the reference engine.

The solver engine is deliberately *not* bit-identical to the batch
engine (the LP optimises a window jointly where the walk commits
greedily), so the differential harness cannot gate it.  This harness
holds it to the Fig. 9 contract instead: on identical randomized churn
streams the two engines must land within the documented
:data:`repro.core.validate.QUALITY_TOLERANCE` of each other on used
machines, fragmentation and blocked containers — and both must be
Equation 7–9 valid at every round (``validate_placements=True`` makes
any violation raise immediately).

The stream is decision-independent: arrivals, departure times and fault
victims are all drawn from one seeded generator without looking at
either engine's placements, so the two runs see the same world even
while their clusters diverge.
"""

import numpy as np
import pytest

pytest.importorskip("scipy", reason="solver extra (scipy) not installed")

from repro.cluster.constraints import ConstraintSet
from repro.cluster.state import ClusterState
from repro.cluster.container import containers_of
from repro.cluster.topology import build_cluster
from repro.core import AladdinConfig, AladdinScheduler, measure_quality, quality_gaps
from repro.core.validate import validate_state
from repro.core.vecsolve import SolverScheduler
from repro.sim.faults import fail_machines, repair_machines

from tests.test_differential import random_apps, track_telemetry

N_PARITY_SEEDS = 20


def parity_replay(seed, engines, ticks=10, n_machines=24):
    """Replay one decision-independent churn stream through ``engines``.

    Returns ``(states, qualities, arrived)``: each engine's final
    cluster state and its Fig. 9 quality sample, with ``blocked``
    counting the containers that never got deployed by that engine.
    """
    rng = np.random.default_rng(seed)
    n_apps = int(rng.integers(12, 22))
    apps = random_apps(rng, n_apps)
    constraints = ConstraintSet.from_applications(apps)
    containers = containers_of(apps)
    by_app = {}
    for c in containers:
        by_app.setdefault(c.app_id, []).append(c)

    states = [
        ClusterState(build_cluster(n_machines, machines_per_rack=4), constraints)
        for _ in engines
    ]
    arrival_tick = np.sort(rng.integers(0, ticks, n_apps))
    lifetimes = rng.integers(4, 12, n_apps)

    # Departure times are fixed at arrival time — independent of
    # whether (or where) an engine placed the container.
    departures: dict[int, list[int]] = {}
    ever_placed = [set() for _ in engines]
    requeues = [[] for _ in engines]
    down: list[tuple[int, int]] = []
    down_now: set[int] = set()
    idx = 0
    try:
        for tick in range(ticks):
            for cid in departures.pop(tick, ()):
                for state in states:
                    if cid in state.assignment:
                        state.evict(cid)
            while down and down[0][0] <= tick:
                _, machine = down.pop(0)
                down_now.discard(machine)
                for state in states:
                    repair_machines(state, [machine])
            if rng.random() < 0.30:
                victim = int(rng.integers(0, n_machines))
                if victim not in down_now:
                    down_now.add(victim)
                    down.append((tick + int(rng.integers(2, 5)), victim))
                    down.sort()
                    for i, state in enumerate(states):
                        report = fail_machines(state, [victim])
                        requeues[i].extend(
                            sorted(
                                report.displaced,
                                key=lambda c: (-c.priority, c.container_id),
                            )
                        )
            arrivals = []
            while idx < n_apps and arrival_tick[idx] <= tick:
                app = apps[idx]
                arrivals.extend(by_app[app.app_id])
                end = tick + int(lifetimes[idx])
                departures.setdefault(end, []).extend(
                    c.container_id for c in by_app[app.app_id]
                )
                idx += 1
            for i, (engine, state) in enumerate(zip(engines, states)):
                batch = requeues[i] + arrivals
                requeues[i] = []
                if not batch:
                    continue
                result = engine.schedule(batch, state)
                ever_placed[i].update(result.placements)
    finally:
        for engine in engines:
            close = getattr(engine, "close", None)
            if callable(close):
                close()

    arrived = len(containers)
    qualities = [
        measure_quality(
            state, blocked=arrived - len(placed)
        )
        for state, placed in zip(states, ever_placed)
    ]
    return states, qualities, arrived


def _engines():
    ref = track_telemetry(
        AladdinScheduler(AladdinConfig(validate_placements=True))
    )
    cand = track_telemetry(
        SolverScheduler(
            AladdinConfig(engine="solver", validate_placements=True)
        )
    )
    return ref, cand


@pytest.mark.parametrize("seed", range(N_PARITY_SEEDS))
def test_solver_quality_matches_reference(seed):
    """20 decision-independent churn replays: the solver engine stays
    within QUALITY_TOLERANCE of the batch engine on every Fig. 9 axis,
    with zero Equation 7–9 violations on both sides."""
    ref, cand = _engines()
    states, (q_ref, q_cand), arrived = parity_replay(seed, [ref, cand])
    assert q_ref.violations == 0 and q_cand.violations == 0
    for state in states:
        assert validate_state(state).ok
    gaps = quality_gaps(q_ref, q_cand, arrived=arrived)
    assert gaps == [], (
        f"seed {seed}: solver quality out of tolerance: {gaps} "
        f"(ref {q_ref.as_dict()}, solver {q_cand.as_dict()})"
    )
    # Non-vacuous: the LP actually drove the candidate's placements.
    assert cand.total_telemetry.solver_calls > 0
    assert cand.solver_placed > 0
    assert ref.total_telemetry.solver_calls == 0


@pytest.mark.parametrize("seed", [1, 6, 13])
def test_maxmin_solver_stays_valid_under_churn(seed):
    """The max-min objective reshapes placement (fairness over packing)
    so it is not parity-gated — but it must stay Equation 7–9 valid and
    issue its two LP phases per window."""
    cand = track_telemetry(
        SolverScheduler(
            AladdinConfig(
                engine="solver",
                solver_objective="maxmin",
                validate_placements=True,
            )
        )
    )
    (state,), (quality,), _ = parity_replay(seed, [cand])
    assert quality.violations == 0
    assert validate_state(state).ok
    assert cand.total_telemetry.solver_calls >= 2


def test_parity_replays_are_not_trivial():
    """Across the parity seeds the stream must exercise real pressure:
    faults fire, some containers block, and the two engines place a
    meaningful workload — otherwise the tolerance gate is vacuous."""
    total_blocked = 0
    total_placed = 0
    for seed in range(6):
        ref, cand = _engines()
        # Deliberately tight cluster: overflow pressure must exist.
        states, (q_ref, q_cand), arrived = parity_replay(
            seed, [ref, cand], n_machines=10
        )
        total_blocked += q_ref.blocked
        total_placed += arrived - q_ref.blocked
        # Even under pressure both engines stay Equation 7–9 valid.
        assert q_ref.violations == 0 and q_cand.violations == 0
    assert total_placed > 0
    assert total_blocked > 0, "workload never blocked anything"
