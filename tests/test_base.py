"""Tests for the shared scheduler interface types."""

import pytest

from repro.base import FailureReason, ScheduleResult


class TestScheduleResult:
    def test_counts(self):
        r = ScheduleResult()
        r.placements = {0: 1, 1: 2}
        r.undeployed = {2: FailureReason.RESOURCES}
        assert r.n_deployed == 2
        assert r.n_undeployed == 1
        assert r.n_total == 3

    def test_merge_accumulates(self):
        a = ScheduleResult()
        a.placements = {0: 1}
        a.migrations = 2
        a.elapsed_s = 0.5
        b = ScheduleResult()
        b.placements = {1: 3}
        b.undeployed = {2: FailureReason.ANTI_AFFINITY}
        b.violating = {1}
        b.migrations = 1
        b.preemptions = 4
        b.explored = 10
        b.elapsed_s = 0.25
        a.merge(b)
        assert a.placements == {0: 1, 1: 3}
        assert a.undeployed == {2: FailureReason.ANTI_AFFINITY}
        assert a.violating == {1}
        assert a.migrations == 3
        assert a.preemptions == 4
        assert a.explored == 10
        assert a.elapsed_s == 0.75

    def test_merge_rejects_double_scheduling(self):
        a = ScheduleResult()
        a.placements = {0: 1}
        b = ScheduleResult()
        b.placements = {0: 2}
        with pytest.raises(ValueError, match="scheduled twice"):
            a.merge(b)

    def test_empty_result(self):
        r = ScheduleResult()
        assert r.n_total == 0
        assert r.n_deployed == 0


class TestFailureReason:
    def test_values_are_stable(self):
        """Reason strings are part of the result-dump format."""
        assert FailureReason.ANTI_AFFINITY.value == "anti_affinity"
        assert FailureReason.RESOURCES.value == "resources"
        assert FailureReason.PREEMPTED.value == "preempted"
