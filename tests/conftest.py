"""Shared fixtures.

``REPRO_SCALE`` (default 0.02 for tests) keeps suites fast; individual
tests that need specific structure build their own workloads.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    ClusterState,
    MachineSpec,
    Simulator,
    build_cluster,
    generate_trace,
)
from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Application, containers_of

TEST_SCALE = float(os.environ.get("REPRO_TEST_SCALE", "0.02"))


@pytest.fixture(scope="session")
def small_trace():
    """A small but fully structured synthetic trace (session-cached)."""
    return generate_trace(scale=TEST_SCALE, seed=7)


@pytest.fixture(scope="session")
def small_sim(small_trace):
    return Simulator(small_trace)


@pytest.fixture
def tiny_cluster():
    """Four 32-CPU machines in one rack."""
    return build_cluster(4, machines_per_rack=2, racks_per_cluster=2)


@pytest.fixture
def tiny_state(tiny_cluster):
    return ClusterState(tiny_cluster)


def make_apps(*specs) -> list[Application]:
    """Terse Application factory for scenario tests.

    Each spec: (n_containers, cpu, priority, within, conflicts).
    """
    apps = []
    for i, spec in enumerate(specs):
        n, cpu, prio, within, conflicts = spec
        apps.append(
            Application(
                app_id=i,
                n_containers=n,
                cpu=cpu,
                mem_gb=cpu * 2,
                priority=prio,
                anti_affinity_within=within,
                conflicts=frozenset(conflicts),
            )
        )
    return apps


def state_for(apps, n_machines=4, machine=None, **topo_kw):
    """ClusterState wired with the apps' constraints."""
    topo = build_cluster(
        n_machines, machine=machine or MachineSpec(), **topo_kw
    )
    return ClusterState(topo, ConstraintSet.from_applications(apps))


def containers_for(apps):
    return containers_of(apps)
