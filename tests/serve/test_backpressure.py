"""Backpressure property: decided or rejected, never dropped.

The admission contract of the bounded queue: every window-type request
a client puts on the wire gets exactly one reply — a decision if it was
admitted, a 429-style rejection with ``retry_after`` if the queue was
full — and the server's admission/rejection counters account for every
single send.  A deliberately slow scheduler makes windows take long
enough that a handful of concurrent clients overruns a tiny queue.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import AladdinScheduler
from repro.serve import (
    PlacementServer,
    ServeClient,
    ServeConfig,
    ServerThread,
    run_load,
    synthetic_batch,
)


class SlowScheduler:
    """Aladdin with an artificial per-round delay (forces queueing)."""

    def __init__(self, delay_s: float = 0.03) -> None:
        self._inner = AladdinScheduler()
        self._delay_s = delay_s
        self.name = "Slow"

    def schedule(self, batch, state):
        time.sleep(self._delay_s)
        return self._inner.schedule(batch, state)

    def close(self) -> None:
        self._inner.close()


@pytest.fixture
def slow_server(serve_trace, serve_topology, sock_path):
    from repro.cluster.state import ClusterState

    server = PlacementServer(
        SlowScheduler(),
        ClusterState(serve_topology, serve_trace.constraints),
        ServeConfig(max_queue=3, window_max=1, retry_after_s=0.01),
    )
    with ServerThread(server, sock_path):
        yield server


def test_every_request_decided_or_rejected(slow_server, sock_path):
    """8 clients × 6 requests against a 3-deep queue draining one slow
    window at a time: replies partition exactly into decisions and
    rejections, rejections actually happen, and the telemetry counters
    sum to the requests sent."""
    n_clients, n_requests = 8, 6
    statuses: list[str] = []
    lock = threading.Lock()

    def client_main(w: int) -> None:
        with ServeClient(sock_path) as client:
            for i in range(n_requests):
                reply = client.place(
                    synthetic_batch(w, i, 2), honor_retry=False
                )
                with lock:
                    statuses.append(reply["status"])

    threads = [
        threading.Thread(target=client_main, args=(w,))
        for w in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    sent = n_clients * n_requests
    decided = statuses.count("ok")
    rejected = statuses.count("rejected")
    # every request answered, with one of exactly two statuses
    assert len(statuses) == sent
    assert decided + rejected == sent
    assert rejected > 0, "load never overran the queue — test is vacuous"
    assert decided > 0

    tele = slow_server.telemetry
    # the server-side ledger accounts for every send: admitted+rejected
    # partitions the stream, and each admitted request became part of
    # exactly one committed window
    assert tele.requests_admitted + tele.requests_rejected == sent
    assert tele.requests_admitted == decided
    assert tele.requests_rejected == rejected
    assert tele.window_requests == decided
    assert tele.peak_queue_depth <= slow_server.config.max_queue


def test_rejection_reply_carries_retry_after(slow_server, sock_path):
    """Flood the queue from one thread with fire-and-forget sends (the
    blocking client would serialise itself below the bound): overflow
    replies are 429s carrying the server's configured retry hint."""
    import socket as socketlib

    from repro.serve.protocol import container_to_wire, recv_frame, send_frame

    socks = []
    try:
        # 12 one-shot connections, frames sent without awaiting replies:
        # 1 window in flight + 3 queued, the rest must bounce
        for w in range(12):
            s = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            s.connect(sock_path)
            s.settimeout(60)
            send_frame(s, {
                "type": "place",
                "containers": [
                    container_to_wire(c) for c in synthetic_batch(w, 0, 2)
                ],
            })
            socks.append(s)
        replies = [recv_frame(s) for s in socks]
    finally:
        for s in socks:
            s.close()
    rejected = [r for r in replies if r["status"] == "rejected"]
    decided = [r for r in replies if r["status"] == "ok"]
    assert len(rejected) + len(decided) == 12
    assert rejected, "queue never overflowed"
    for r in rejected:
        assert r["code"] == 429
        assert r["retry_after"] == pytest.approx(0.01)


def test_honored_retries_eventually_decide_everything(slow_server, sock_path):
    """Well-behaved clients (honor the retry-after hint) get every
    batch decided despite transient rejections, and the ledger still
    balances: admitted + rejected == frames sent (retries included)."""
    result = run_load(
        sock_path, clients=6, duration_s=1.0, batch_size=2,
        honor_retry=True,
    )
    assert result.errors == 0
    assert result.decided > 0
    tele = slow_server.telemetry
    assert tele.requests_admitted + tele.requests_rejected == result.sent
    assert tele.requests_admitted == result.decided
