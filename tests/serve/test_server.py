"""Serving-loop behaviour: windows, control plane, checkpoint/restore.

These tests run the real asyncio server on a background thread
(:class:`~repro.serve.ServerThread`) and talk to it over a real unix
socket — the same stack the CLI's ``repro serve`` runs, minus the
subprocess boundary (the fault tests cover that).
"""

from __future__ import annotations

import os
import socket

import pytest

from repro.cluster.snapshot import SnapshotError
from repro.core import AladdinScheduler
from repro.serve import (
    PlacementServer,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    send_frame,
)


class TestWindows:
    def test_place_reports_own_containers_only(self, served, serve_trace):
        _server, client = served
        mine = serve_trace.containers[:6]
        reply = client.place(mine)
        assert reply["status"] == "ok" and reply["tick"] == 0
        decided = set(reply["placements"]) | set(reply["undeployed"])
        assert decided == {str(c.container_id) for c in mine}

    def test_ticks_count_windows(self, served, serve_trace):
        _server, client = served
        t0 = client.place(serve_trace.containers[:2])["tick"]
        t1 = client.place(serve_trace.containers[2:4])["tick"]
        t2 = client.step()["tick"]
        assert (t0, t1, t2) == (0, 1, 2)

    def test_depart_evicts(self, served, serve_trace):
        server, client = served
        batch = serve_trace.containers[:4]
        placed = client.place(batch)["placements"]
        victims = [int(cid) for cid in placed][:2]
        reply = client.depart(victims)
        assert reply["departed"] == len(victims)
        for cid in victims:
            assert cid not in server.state.assignment

    def test_depart_of_absent_id_is_counted_not_fatal(self, served):
        _server, client = served
        reply = client.depart([999_999])
        # the id was never assigned, so after the window it is (still)
        # gone — the reply reports it departed rather than erroring
        assert reply["status"] == "ok" and reply["departed"] == 1

    def test_departure_batching_under_a_served_window(
        self, served, serve_trace
    ):
        """One served window's departures commit as a single batched
        eviction: mixed present/absent/duplicate ids behave exactly
        like the simulator's tick loop, and the recorded sample counts
        only the containers actually evicted."""
        server, client = served
        batch = serve_trace.containers[:6]
        placed = client.place(batch)["placements"]
        victims = [int(cid) for cid in placed][:3]
        ghost = 999_999
        reply = client.depart(victims + [ghost, victims[0]])
        assert reply["status"] == "ok"
        for cid in victims:
            assert cid not in server.state.assignment
        sample = server.result.samples[-1]
        assert sample.departed_containers == len(victims)
        # The profiling layer covers served windows too — the same
        # shared apply_window timed the batched eviction.
        assert "window_departures" in sample.phase_s
        assert "window_record" in sample.phase_s

    def test_fault_displaces_and_replaces(self, served, serve_trace):
        server, client = served
        batch = serve_trace.containers[:8]
        placed = client.place(batch)["placements"]
        victim_machine = int(next(iter(placed.values())))
        expected = [
            int(cid) for cid, m in placed.items() if int(m) == victim_machine
        ]
        reply = client.fault([victim_machine])
        assert sorted(reply["displaced"]) == sorted(expected)
        # every displaced container got a same-window verdict
        decided = set(reply["placements"]) | set(reply["undeployed"])
        assert decided == {str(cid) for cid in expected}
        for cid, m in reply["placements"].items():
            assert int(m) != victim_machine
            assert server.state.assignment[int(cid)] == int(m)

    def test_repair_restores_capacity(self, served, serve_trace):
        import numpy as np

        server, client = served
        placed = client.place(serve_trace.containers[:4])["placements"]
        machine = int(next(iter(placed.values())))
        client.fault([machine])
        assert not server.state.available[machine].any()
        reply = client.repair([machine])
        assert reply["repaired"] == [machine]
        assert np.array_equal(
            server.state.available[machine],
            server.state.topology.capacity[machine],
        )

    def test_fault_displaced_departing_same_window_not_requeued(
        self, make_server, serve_trace
    ):
        """A displaced container the same window departs is dropped from
        the fault's requeue (window order: repairs → faults →
        departures → placements) — a departure racing the failure must
        not resurrect its container.  Applied directly through the
        window path so both requests land in one window
        deterministically."""
        from repro.serve.protocol import validate_request

        server = make_server(ServeConfig(window_max=8))
        batch = serve_trace.containers[:6]
        place = validate_request({
            "type": "place",
            "containers": [],
            "departures": [],
        })
        place["_containers"] = batch
        [(_, first)] = server._apply_window([(place, None)])
        placed = first["placements"]
        machine = int(next(iter(placed.values())))
        leaver = min(
            int(cid) for cid, m in placed.items() if int(m) == machine
        )
        window = [
            ({"type": "fault", "machines": [machine]}, None),
            ({"type": "depart", "containers": [leaver]}, None),
        ]
        replies = dict(
            (req["type"], reply)
            for (req, _), (_, reply) in zip(window, server._apply_window(window))
        )
        assert leaver in replies["fault"]["displaced"]
        # ...but it departed in the same window: no verdict, not running
        assert str(leaver) not in replies["fault"]["placements"]
        assert str(leaver) not in replies["fault"]["undeployed"]
        assert leaver not in server.state.assignment

    def test_fault_out_of_range_is_per_request_error(
        self, served, serve_trace
    ):
        """A fault naming an unknown machine must get its own error
        reply without aborting the window or desyncing the run: the
        server keeps committing windows afterwards."""
        server, client = served
        client.place(serve_trace.containers[:4])
        windows_before = server.windows
        with pytest.raises(ServeError, match="out of range"):
            client.fault([10**6])
        # the bad request still consumed a window boundary — decisions
        # stay exactly-once and the counter advanced
        assert server.windows == windows_before + 1
        # and the server keeps serving consistent windows
        reply = client.place(serve_trace.containers[4:6])
        assert reply["status"] == "ok"
        assert client.result() == server.result.canonical_json()

    def test_repair_of_hosting_machine_is_per_request_error(
        self, served, serve_trace
    ):
        server, client = served
        placed = client.place(serve_trace.containers[:4])["placements"]
        machine = int(next(iter(placed.values())))
        with pytest.raises(ServeError, match="host containers"):
            client.repair([machine])
        # the occupied machine was not touched
        assert server.state.available[machine].any()
        assert client.ping()

    def test_bad_request_does_not_abort_siblings_in_window(
        self, make_server, serve_trace
    ):
        """An invalid fault coalesced with a valid placement must not
        take the placement down with it — the valid request gets a
        decision, the invalid one its own error."""
        from repro.serve.protocol import validate_request

        server = make_server(ServeConfig(window_max=8))
        place = validate_request({
            "type": "place", "containers": [], "departures": [],
        })
        place["_containers"] = serve_trace.containers[:3]
        window = [
            ({"type": "fault", "machines": [10**6]}, None),
            (place, None),
        ]
        (_, bad), (_, good) = server._apply_window(window)
        assert bad["status"] == "error" and "out of range" in bad["error"]
        assert good["status"] == "ok"
        decided = set(good["placements"]) | set(good["undeployed"])
        assert decided == {str(c.container_id) for c in place["_containers"]}
        assert server.windows == 1

    def test_fault_then_repair_coalesced_applies_repairs_first(
        self, make_server, serve_trace
    ):
        """Documented window order is repairs → faults as two passes:
        a window holding [fault m, repair m] applies the repair pass
        first, so the repair — naming a machine that is *not failed* at
        repair time — gets its own error reply, the fault still
        applies, and m ends failed no matter the arrival interleaving.

        A window holding [repair m, fault m] against an already-failed
        m is the bounce that works: repair first, then fault again.
        """
        from repro.serve.protocol import validate_request

        server = make_server(ServeConfig(window_max=8))
        place = validate_request({
            "type": "place", "containers": [], "departures": [],
        })
        place["_containers"] = serve_trace.containers[:4]
        [(_, first)] = server._apply_window([(place, None)])
        machine = int(next(iter(first["placements"].values())))
        # evict the machine's containers first so the repair is valid
        [(_, cleared)] = server._apply_window(
            [({"type": "fault", "machines": [machine]}, None)]
        )
        assert cleared["status"] == "ok"
        [(_, healed)] = server._apply_window(
            [({"type": "repair", "machines": [machine]}, None)]
        )
        assert healed["status"] == "ok"
        window = [
            ({"type": "fault", "machines": [machine]}, None),
            ({"type": "repair", "machines": [machine]}, None),
        ]
        (_, faulted), (_, rejected) = server._apply_window(window)
        assert faulted["status"] == "ok"
        assert rejected["status"] == "error"
        assert "not failed" in rejected["error"]
        # fault applied, the healthy-at-repair-time repair did not
        assert not server.state.available[machine].any()
        # the bounce: repair the failed machine and fault it again in
        # one window — repairs apply first, so both succeed
        bounce = [
            ({"type": "repair", "machines": [machine]}, None),
            ({"type": "fault", "machines": [machine]}, None),
        ]
        for _writer, reply in server._apply_window(bounce):
            assert reply["status"] == "ok"
        assert not server.state.available[machine].any()

    def test_step_reports_running(self, served, serve_trace):
        _server, client = served
        client.place(serve_trace.containers[:5])
        reply = client.step()
        assert reply["running"] == 5


class TestControlPlane:
    def test_ping(self, served):
        _server, client = served
        assert client.ping() is True

    def test_stats_counters(self, served, serve_trace):
        server, client = served
        client.place(serve_trace.containers[:3])
        client.step()
        stats = client.stats()
        assert stats["windows"] == 2
        assert stats["service"]["requests_admitted"] == 2
        assert stats["service"]["requests_rejected"] == 0
        assert stats["service"]["windows_committed"] == 2
        assert stats["totals"]["arrived"] == 3
        assert stats["scheduler"] == server.result.telemetry.counters()

    def test_result_matches_server_side(self, served, serve_trace):
        server, client = served
        client.place(serve_trace.containers[:3])
        assert client.result() == server.result.canonical_json()

    def test_decisions_log_and_eviction(self, make_server, sock_path,
                                        serve_trace):
        server = make_server(ServeConfig(decision_log=2))
        with ServerThread(server, sock_path):
            with ServeClient(sock_path) as client:
                for i in range(3):
                    client.place(serve_trace.containers[i * 2:(i + 1) * 2])
                # log keeps the newest 2 windows; window 0 is evicted
                assert client.decisions(2)["tick"] == 2
                assert client.decisions(1)["tick"] == 1
                with pytest.raises(ServeError, match="not in the decision log"):
                    client.decisions(0)

    def test_decisions_match_place_reply(self, served, serve_trace):
        _server, client = served
        batch = serve_trace.containers[:5]
        reply = client.place(batch)
        logged = client.decisions(0)
        assert logged["placements"] == reply["placements"]
        assert logged["undeployed"] == reply["undeployed"]

    def test_invalid_request_raises_serve_error(self, served):
        _server, client = served
        with pytest.raises(ServeError, match="unknown request type"):
            client._checked({"type": "teleport"})
        assert client.ping()

    def test_broken_framing_hangs_up_but_server_survives(
        self, served, sock_path
    ):
        _server, client = served
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(sock_path)
        raw.sendall(b"\xff\xff\xff\xff")  # declares a 4 GiB frame
        # server answers one error frame, then closes this connection
        from repro.serve.protocol import recv_frame

        reply = recv_frame(raw)
        assert reply["status"] == "error"
        assert recv_frame(raw) is None
        raw.close()
        # ...without taking the serving loop down
        assert client.ping()

    def test_shutdown_stops_server(self, make_server, sock_path):
        server = make_server()
        thread = ServerThread(server, sock_path).start()
        with ServeClient(sock_path) as client:
            assert client.shutdown()["stopping"] is True
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()


class TestCheckpointRestore:
    def test_roundtrip_preserves_run(self, make_server, sock_dir, sock_path,
                                     serve_trace, serve_topology):
        ckpt = os.path.join(sock_dir, "serve.ckpt")
        server = make_server(
            ServeConfig(checkpoint_every=1, checkpoint_path=ckpt)
        )
        with ServerThread(server, sock_path):
            with ServeClient(sock_path) as client:
                client.place(serve_trace.containers[:5])
                client.place(serve_trace.containers[5:8])
                live = client.result()
        restored = PlacementServer.restore(
            ckpt, AladdinScheduler(), serve_topology, serve_trace.constraints
        )
        assert restored.windows == 2
        assert restored.result.canonical_json() == live
        assert restored.state.assignment == server.state.assignment
        assert sorted(restored.decisions) == [0, 1]

    def test_restored_server_keeps_serving(self, make_server, sock_dir,
                                           serve_trace, serve_topology):
        ckpt = os.path.join(sock_dir, "serve.ckpt")
        server = make_server(
            ServeConfig(checkpoint_every=1, checkpoint_path=ckpt)
        )
        with ServerThread(server, os.path.join(sock_dir, "a.sock")):
            with ServeClient(os.path.join(sock_dir, "a.sock")) as client:
                client.place(serve_trace.containers[:5])
        restored = PlacementServer.restore(
            ckpt, AladdinScheduler(), serve_topology, serve_trace.constraints
        )
        with ServerThread(restored, os.path.join(sock_dir, "b.sock")):
            with ServeClient(os.path.join(sock_dir, "b.sock")) as client:
                reply = client.place(serve_trace.containers[5:8])
                assert reply["tick"] == 1  # continues the window count
                assert reply["placements"]

    def test_fingerprint_mismatch_rejected(self, make_server, sock_dir,
                                           sock_path, serve_trace,
                                           serve_topology):
        from repro.core import FlowPathSearch

        ckpt = os.path.join(sock_dir, "serve.ckpt")
        server = make_server(
            ServeConfig(checkpoint_every=1, checkpoint_path=ckpt)
        )
        with ServerThread(server, sock_path):
            with ServeClient(sock_path) as client:
                client.place(serve_trace.containers[:3])
        with pytest.raises(SnapshotError, match="fingerprint"):
            PlacementServer.restore(
                ckpt, FlowPathSearch(), serve_topology, serve_trace.constraints
            )

    def test_wrong_kind_rejected(self, sock_dir, serve_trace, serve_topology):
        from repro.cluster.snapshot import write_snapshot

        path = os.path.join(sock_dir, "other.ckpt")
        write_snapshot(path, {"anything": 1}, kind="online-sim")
        with pytest.raises(SnapshotError, match="expected 'serve'"):
            PlacementServer.restore(
                path, AladdinScheduler(), serve_topology,
                serve_trace.constraints,
            )


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"max_queue": 0}, {"window_max": 0}, {"decision_log": 0}]
    )
    def test_bounds_validated(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_window_max_caps_coalescing(self, make_server, sock_path,
                                        serve_trace):
        server = make_server(ServeConfig(window_max=1))
        with ServerThread(server, sock_path):
            with ServeClient(sock_path) as client:
                for i in range(3):
                    client.place(serve_trace.containers[i:i + 1])
        assert server.telemetry.peak_window_size == 1
        assert server.telemetry.windows_committed == 3
