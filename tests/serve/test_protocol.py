"""Wire-protocol unit tests: framing, marshalling, request validation.

The framing layer's contract is binary-simple — every byte sequence is
either one well-formed frame or a :class:`ProtocolError` — and the
serving fault-tolerance story leans on it: a client that dies mid-frame
must surface as a clean protocol error, never as a half-parsed request.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.cluster.container import Container
from repro.serve.protocol import (
    CONTROL_TYPES,
    MAX_FRAME,
    WINDOW_TYPES,
    ProtocolError,
    container_from_wire,
    container_to_wire,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    validate_request,
)


def read_bytes(data: bytes):
    """Feed ``data`` into an asyncio StreamReader and read one frame."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFraming:
    def test_roundtrip(self):
        obj = {"type": "ping", "nested": {"a": [1, 2, 3]}}
        assert read_bytes(encode_frame(obj)) == obj

    def test_clean_eof_is_none(self):
        assert read_bytes(b"") is None

    def test_eof_inside_header(self):
        with pytest.raises(ProtocolError, match="header"):
            read_bytes(b"\x00\x00")

    def test_eof_inside_payload(self):
        frame = encode_frame({"type": "ping"})
        with pytest.raises(ProtocolError, match="bytes into a frame"):
            read_bytes(frame[:-1])

    def test_declared_length_over_cap(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            read_bytes(header)

    def test_encode_rejects_oversize_object(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            encode_frame({"blob": "x" * (MAX_FRAME + 16)})

    def test_payload_must_be_json(self):
        bad = b"\x00\x00\x00\x03}{!"
        with pytest.raises(ProtocolError, match="JSON"):
            read_bytes(bad)

    def test_payload_must_be_object(self):
        with pytest.raises(ProtocolError, match="object"):
            read_bytes(encode_frame([1, 2, 3]))

    def test_blocking_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "stats"})
            assert recv_frame(b) == {"type": "stats"}
            a.close()
            assert recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_blocking_eof_mid_frame(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"type": "ping"})
            a.sendall(frame[:-2])
            a.close()
            with pytest.raises(ProtocolError, match="bytes into a frame"):
                recv_frame(b)
        finally:
            b.close()


class TestContainerWire:
    def test_roundtrip(self):
        c = Container(container_id=7, app_id=3, instance=1,
                      cpu=2.5, mem_gb=8.0, priority=2)
        assert container_from_wire(container_to_wire(c)) == c

    def test_missing_field(self):
        wire = container_to_wire(
            Container(container_id=1, app_id=1, instance=0,
                      cpu=1.0, mem_gb=1.0, priority=0)
        )
        del wire["cpu"]
        with pytest.raises(ProtocolError, match="missing fields"):
            container_from_wire(wire)

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            container_from_wire([1, 2, 3])

    def test_bad_field_type(self):
        wire = container_to_wire(
            Container(container_id=1, app_id=1, instance=0,
                      cpu=1.0, mem_gb=1.0, priority=0)
        )
        wire["cpu"] = "lots"
        with pytest.raises(ProtocolError, match="bad container field"):
            container_from_wire(wire)


class TestValidateRequest:
    def test_type_tables_are_disjoint_and_complete(self):
        assert not (WINDOW_TYPES & CONTROL_TYPES)
        for rtype in ("place", "depart", "fault", "repair", "step"):
            assert rtype in WINDOW_TYPES
        for rtype in ("ping", "stats", "result", "decisions", "shutdown"):
            assert rtype in CONTROL_TYPES

    def test_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            validate_request({"type": "teleport"})

    def test_missing_type(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            validate_request({})

    def test_place_parses_containers(self):
        c = Container(container_id=5, app_id=2, instance=0,
                      cpu=1.0, mem_gb=2.0, priority=1)
        req = validate_request(
            {"type": "place", "containers": [container_to_wire(c)]}
        )
        assert req["_containers"] == [c]

    def test_place_rejects_non_list_containers(self):
        with pytest.raises(ProtocolError, match="must be a list"):
            validate_request({"type": "place", "containers": 3})

    def test_place_rejects_bad_departures(self):
        with pytest.raises(ProtocolError, match="departures"):
            validate_request(
                {"type": "place", "containers": [], "departures": ["x"]}
            )

    def test_depart_rejects_bools(self):
        # bool is an int subclass; the wire check must not admit it
        with pytest.raises(ProtocolError, match="list of integers"):
            validate_request({"type": "depart", "containers": [1, True]})

    @pytest.mark.parametrize("rtype", ["fault", "repair"])
    def test_fault_repair_require_machines(self, rtype):
        with pytest.raises(ProtocolError, match="non-empty"):
            validate_request({"type": rtype, "machines": []})
        with pytest.raises(ProtocolError, match="list of integers"):
            validate_request({"type": rtype, "machines": None})

    def test_decisions_requires_int_tick(self):
        with pytest.raises(ProtocolError, match="integer"):
            validate_request({"type": "decisions", "tick": "zero"})
        with pytest.raises(ProtocolError, match="integer"):
            validate_request({"type": "decisions", "tick": True})
        assert validate_request({"type": "decisions", "tick": 4})
