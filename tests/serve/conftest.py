"""Shared fixtures for the serving-stack tests.

Unix socket paths are capped around 100 characters on Linux, so every
socket lives in a short ``/tmp`` directory rather than pytest's deeply
nested ``tmp_path``.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from repro.cluster.state import ClusterState
from repro.core import AladdinScheduler
from repro.serve import PlacementServer, ServeClient, ServeConfig, ServerThread
from repro.sim.online import OnlineConfig, pool_topology
from repro.trace import generate_trace


@pytest.fixture
def sock_dir():
    d = tempfile.mkdtemp(prefix="ald", dir="/tmp")
    yield d
    shutil.rmtree(d, ignore_errors=True)


@pytest.fixture
def sock_path(sock_dir):
    return os.path.join(sock_dir, "s.sock")


@pytest.fixture(scope="session")
def serve_trace():
    """The trace every serve test schedules from (session-cached)."""
    return generate_trace(scale=0.02, seed=0)


@pytest.fixture(scope="session")
def serve_topology(serve_trace):
    return pool_topology(serve_trace, OnlineConfig())


@pytest.fixture
def make_server(serve_trace, serve_topology):
    """Factory: a fresh PlacementServer over a fresh cluster state."""

    def build(config: ServeConfig | None = None, *, scheduler=None,
              on_window=None) -> PlacementServer:
        return PlacementServer(
            scheduler if scheduler is not None else AladdinScheduler(),
            ClusterState(serve_topology, serve_trace.constraints),
            config,
            on_window=on_window,
        )

    return build


@pytest.fixture
def served(make_server, sock_path):
    """A running default server plus one connected client."""
    server = make_server()
    with ServerThread(server, sock_path):
        with ServeClient(sock_path) as client:
            yield server, client
