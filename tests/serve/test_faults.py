"""Fault injection against the serving stack.

Three failure modes from the ISSUE, each exercised for real:

* a client that disconnects mid-response — the window still commits,
  the server keeps serving, and the decisions stay recoverable;
* a server SIGKILLed between window commit and reply — a subprocess
  ``repro serve --crash-after-window`` dies hard after the snapshot is
  durable, and a warm ``--restore`` restart resumes the exact run (the
  lost reply is re-fetched from the decision log, and the completed
  replay is bit-identical to the uninterrupted simulation);
* a sweep worker killed during a served window — the parallel sweep
  takes PR 5's documented cold path (fresh workers, full resync) and
  the window's decisions match the serial engine's exactly.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core import AladdinConfig, AladdinScheduler
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
    replay_online_schedule,
    send_frame,
)
from repro.serve.protocol import container_to_wire
from repro.sim.online import OnlineConfig, OnlineSimulator
from repro.trace import load_trace, save_trace


# ----------------------------------------------------------------------
# client disconnect mid-response
# ----------------------------------------------------------------------
def test_client_disconnect_mid_response(served, serve_trace, sock_path):
    """A client that sends a placement and hangs up before reading the
    reply: the window commits anyway, the undeliverable reply is
    counted, the serving loop survives, and the orphaned decisions stay
    fetchable from the decision log."""
    server, client = served
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(sock_path)
    batch = serve_trace.containers[:5]
    send_frame(raw, {
        "type": "place",
        "containers": [container_to_wire(c) for c in batch],
    })
    raw.close()  # gone before the reply

    # the window must still commit (poll via the surviving client)
    deadline = time.monotonic() + 30
    while client.stats()["windows"] < 1:
        assert time.monotonic() < deadline, "window never committed"
        time.sleep(0.01)

    # server alive, next window serves normally
    reply = client.place(serve_trace.containers[5:8])
    assert reply["status"] == "ok" and reply["tick"] == 1

    # the orphaned window's decisions are in the log
    logged = client.decisions(0)
    decided = set(logged["placements"]) | set(logged["undeployed"])
    assert decided == {str(c.container_id) for c in batch}

    # and the failed delivery is accounted (flushed by reply time above)
    assert server.telemetry.replies_failed >= 1


def test_disconnect_storm_leaves_consistent_state(served, serve_trace,
                                                  sock_path):
    """Ten hang-up clients in a row: every window commits, none is
    double-applied, and a clean client sees a consistent run."""
    server, client = served
    for i in range(10):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(sock_path)
        send_frame(raw, {
            "type": "place",
            "containers": [
                container_to_wire(c)
                for c in serve_trace.containers[i * 2:(i + 1) * 2]
            ],
        })
        raw.close()
    # queued requests may coalesce into fewer than 10 windows; wait for
    # all 10 *requests* to have been committed through some window
    deadline = time.monotonic() + 30
    while client.stats()["service"]["window_requests"] < 10:
        assert time.monotonic() < deadline, "requests never drained"
        time.sleep(0.01)
    stats = client.stats()
    assert stats["totals"]["arrived"] == 20
    assert len(server.state.assignment) == stats["totals"]["arrived"] - (
        stats["totals"]["failed"]
    )


# ----------------------------------------------------------------------
# SIGKILL between window commit and reply
# ----------------------------------------------------------------------
CRASH_WINDOW = 4
SERVE_TICKS = 15


def _spawn_server(sock, stem, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--load", stem, "--ticks", str(SERVE_TICKS), *extra],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


@pytest.mark.slow
def test_sigkill_between_commit_and_reply_resumes_exactly(
    serve_trace, sock_dir
):
    """The crown crash test, across a real process boundary: the server
    checkpoints every window and SIGKILLs itself right after window
    CRASH_WINDOW commits (snapshot durable, reply unsent).  The replay
    client loses its connection, a second server starts warm from the
    snapshot, the lost window's decisions are recovered from the
    restored decision log, and the completed replay's canonical JSON is
    bit-identical to the uninterrupted in-process simulation."""
    stem = os.path.join(sock_dir, "t")
    save_trace(serve_trace, stem)
    # the subprocess server loads the trace from disk, and the CSV
    # roundtrip does not preserve config.n_machines — so the in-process
    # baseline must run from the *loaded* trace to share the pool size
    trace = load_trace(stem)
    cfg = OnlineConfig(ticks=SERVE_TICKS)
    expected = (
        OnlineSimulator(trace, cfg)
        .run(AladdinScheduler())
        .canonical_json()
    )

    ckpt = os.path.join(sock_dir, "c.ckpt")
    sock1 = os.path.join(sock_dir, "a.sock")
    proc = _spawn_server(
        sock1, stem, "--checkpoint", ckpt, "--checkpoint-every", "1",
        "--crash-after-window", str(CRASH_WINDOW),
    )
    transcript: dict = {}
    try:
        with ServeClient(sock1) as client:
            with pytest.raises(ConnectionError):
                replay_online_schedule(
                    client, trace, cfg, decisions=transcript
                )
    finally:
        assert proc.wait(timeout=60) == -signal.SIGKILL
    # replies for windows 0..K-1 landed; window K's was lost to the kill
    assert sorted(transcript) == list(range(CRASH_WINDOW))

    sock2 = os.path.join(sock_dir, "b.sock")
    proc2 = _spawn_server(sock2, stem, "--restore", ckpt)
    try:
        with ServeClient(sock2) as client:
            stats = client.stats()
            # the crashed window committed before the kill
            assert stats["windows"] == CRASH_WINDOW + 1
            replay_online_schedule(
                client, trace, cfg,
                decisions=transcript, start_tick=stats["windows"],
            )
            # the lost window was recovered from the log, not re-sent
            assert transcript[CRASH_WINDOW]["tick"] == CRASH_WINDOW
            served = client.result()
            client.shutdown()
    finally:
        assert proc2.wait(timeout=60) == 0, proc2.stdout.read()
    assert served == expected


# ----------------------------------------------------------------------
# killed sweep worker during a served window
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_killed_sweep_worker_falls_back_cold(serve_trace, serve_topology,
                                             sock_dir):
    """SIGKILL one shard worker between served windows: the next window
    rides the documented cold path — plan_block tears the sweep down,
    respawns fresh workers over fresh shared memory and retries — and
    its decisions are bit-identical to a serial engine fed the same
    windows (only cost counters may differ)."""
    from repro.cluster.state import ClusterState
    from repro.sim.online import apply_window

    parallel_sched = AladdinScheduler(AladdinConfig(workers=2))
    server_state = ClusterState(serve_topology, serve_trace.constraints)
    from repro.serve import PlacementServer

    server = PlacementServer(parallel_sched, server_state)
    serial_sched = AladdinScheduler()
    serial_state = ClusterState(serve_topology, serve_trace.constraints)

    first = serve_trace.containers[:40]
    second = serve_trace.containers[40:80]
    sock = os.path.join(sock_dir, "w.sock")
    try:
        with ServerThread(server, sock):
            with ServeClient(sock) as client:
                r1 = client.place(first)
                sweep = parallel_sched.parallel
                assert sweep is not None and sweep.sweeps > 0, (
                    "first window never exercised the parallel sweep"
                )
                victim = sweep._procs[0]
                victim.kill()
                victim.join()
                r2 = client.place(second)
                assert sweep.cold_restarts == 1, (
                    "worker death did not take the cold-restart path"
                )
    finally:
        parallel_sched.close()

    # serial reference over the identical two windows
    _, ref1 = apply_window(serial_sched, serial_state, tick=0, batch=first)
    _, ref2 = apply_window(serial_sched, serial_state, tick=1, batch=second)
    assert r1["placements"] == {
        str(cid): m for cid, m in ref1.placements.items()
    }
    assert r2["placements"] == {
        str(cid): m for cid, m in ref2.placements.items()
    }, "cold-path window diverged from the serial engine"
    assert server_state.assignment == serial_state.assignment
