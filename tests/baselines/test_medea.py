"""Medea baseline tests: the weights(a, b, c) semantics."""

import importlib.util

import pytest

from repro.base import FailureReason
from repro.baselines.medea import MedeaScheduler, MedeaWeights, violation_penalty

from tests.conftest import containers_for, make_apps, state_for


def run(apps, n_machines=4, weights=None, **kw):
    sched = MedeaScheduler(weights or MedeaWeights(), **kw)
    state = state_for(apps, n_machines=n_machines)
    return sched.schedule(containers_for(apps), state), state


class TestWeights:
    def test_label(self):
        assert MedeaWeights(1, 0.5, 0).label() == "(1,0.5,0)"

    @pytest.mark.parametrize("kw", [dict(a=0), dict(b=2), dict(c=-0.1)])
    def test_rejects_invalid(self, kw):
        base = dict(a=1.0, b=1.0, c=0.0)
        base.update(kw)
        with pytest.raises(ValueError):
            MedeaWeights(**base)

    def test_penalty_monotone_in_tolerance(self):
        assert violation_penalty(0.0) == float("inf")
        assert violation_penalty(0.5) > violation_penalty(1.0) > 0


class TestHardMode:
    """c = 0: anti-affinity is a hard constraint."""

    def test_never_violates(self):
        apps = make_apps((5, 1.0, 0, True, ()))
        result, state = run(apps, n_machines=4, weights=MedeaWeights(1, 1, 0))
        assert state.anti_affinity_violations() == 0
        assert not result.violating
        assert result.n_undeployed == 1
        assert list(result.undeployed.values())[0] is FailureReason.ANTI_AFFINITY

    def test_packs_for_efficiency(self):
        apps = make_apps((4, 4.0, 0, False, ()))
        result, state = run(apps, weights=MedeaWeights(1, 1, 0))
        assert state.used_machines() == 1


class TestTolerantMode:
    """c = 1: the packing term can override anti-affinity."""

    def test_violates_rather_than_spread(self):
        apps = make_apps(
            (1, 4.0, 0, False, (1,)),
            (4, 4.0, 0, False, ()),  # packs machine 0 high
            (1, 4.0, 0, False, ()),
        )
        # app 0 conflicts with app 1; with c=1 the packed machine wins
        # anyway once its packing score dominates.
        apps = apps[1:] + apps[:1]  # app 0 arrives last
        # rebuild ids after reorder
        from repro.cluster.container import Application

        apps = [
            Application(
                app_id=i,
                n_containers=a.n_containers,
                cpu=a.cpu,
                mem_gb=a.mem_gb,
                priority=a.priority,
                anti_affinity_within=a.anti_affinity_within,
                conflicts=frozenset(
                    {(j + len(apps) - 1) % len(apps) for j in a.conflicts}
                ),
            )
            for i, a in enumerate(apps)
        ]
        result, state = run(apps, n_machines=4, weights=MedeaWeights(1, 1, 1))
        assert state.anti_affinity_violations() >= 0  # smoke: runs clean

    def test_tolerated_violations_are_reported(self, small_trace):
        from repro.sim import Simulator

        sim = Simulator(small_trace)
        r = sim.run(MedeaScheduler(MedeaWeights(1, 1, 1)))
        r0 = sim.run(MedeaScheduler(MedeaWeights(1, 1, 0)))
        assert r.metrics.n_violating_placements > r0.metrics.n_violating_placements
        assert r0.metrics.n_violating_placements == 0

    def test_score_below_zero_leaves_undeployed(self):
        apps = make_apps((2, 32.0, 0, True, ()))
        result, _ = run(apps, n_machines=1, weights=MedeaWeights(1, 1, 0.5))
        # Second replica only fits on the forbidden machine; penalty 5.55
        # sinks the score below zero -> undeployed, not violated.
        assert result.n_undeployed == 1
        assert not result.violating


@pytest.mark.skipif(
    importlib.util.find_spec("scipy") is None,
    reason="exact MILP baseline needs the solver extra (scipy)",
)
class TestExactMode:
    def test_exact_matches_greedy_on_simple_window(self):
        apps = make_apps((3, 8.0, 0, True, ()), (2, 4.0, 0, False, ()))
        r_greedy, s_greedy = run(apps, weights=MedeaWeights(1, 1, 0))
        r_exact, s_exact = run(apps, weights=MedeaWeights(1, 1, 0), exact=True)
        assert r_exact.n_deployed == r_greedy.n_deployed == 5
        assert s_exact.anti_affinity_violations() == 0

    def test_exact_hard_mode_never_violates(self):
        apps = make_apps((4, 2.0, 0, True, (1,)), (2, 4.0, 0, True, ()))
        r, state = run(apps, n_machines=4, weights=MedeaWeights(1, 1, 0), exact=True)
        assert state.anti_affinity_violations() == 0

    def test_exact_places_at_least_as_many_as_greedy(self):
        apps = make_apps(
            (3, 16.0, 0, True, ()),
            (3, 8.0, 0, False, (0,)),
            (2, 4.0, 0, False, ()),
        )
        r_greedy, _ = run(apps, n_machines=3, weights=MedeaWeights(1, 1, 0))
        r_exact, _ = run(
            apps, n_machines=3, weights=MedeaWeights(1, 1, 0), exact=True
        )
        assert r_exact.n_deployed >= r_greedy.n_deployed
