"""Go-Kube baseline tests."""

import pytest

from repro.base import FailureReason
from repro.baselines.kube import GoKubeScheduler

from tests.conftest import containers_for, make_apps, state_for


def run(apps, n_machines=4, **kw):
    sched = GoKubeScheduler(**kw)
    state = state_for(apps, n_machines=n_machines)
    return sched.schedule(containers_for(apps), state), state


class TestScoring:
    def test_spreads_by_least_requested(self):
        """Kubernetes scoring picks the emptiest machine: two identical
        containers land on two different machines."""
        apps = make_apps((2, 4.0, 0, False, ()))
        result, _ = run(apps)
        assert result.placements[0] != result.placements[1]

    def test_all_deployed_with_room(self):
        apps = make_apps((4, 4.0, 0, False, ()), (2, 8.0, 0, False, ()))
        result, state = run(apps)
        assert result.n_undeployed == 0
        assert state.anti_affinity_violations() == 0

    def test_respects_anti_affinity_filter(self):
        apps = make_apps((3, 4.0, 0, True, ()))
        result, _ = run(apps)
        machines = set(result.placements.values())
        assert len(machines) == 3

    def test_undeployed_when_aa_blocks_everywhere(self):
        apps = make_apps((5, 1.0, 0, True, ()))
        result, _ = run(apps, n_machines=4)
        assert result.n_undeployed == 1
        assert list(result.undeployed.values())[0] is FailureReason.ANTI_AFFINITY

    def test_resource_failure_reason(self):
        apps = make_apps((1, 16.0, 0, False, ()), (1, 32.0, 0, False, ()))
        result, _ = run(apps, n_machines=1)
        assert result.undeployed and all(
            r is FailureReason.RESOURCES for r in result.undeployed.values()
        )


class TestPreemption:
    def test_high_priority_preempts_low(self):
        apps = make_apps(
            (1, 32.0, 0, False, ()),  # fills the only machine
            (1, 32.0, 2, False, ()),  # high priority arrives later
        )
        result, state = run(apps, n_machines=1)
        assert result.placements.get(1) == 0
        assert 0 in result.undeployed  # victim could not re-land
        assert result.preemptions == 1

    def test_victim_relands_elsewhere(self):
        apps = make_apps(
            (1, 32.0, 0, False, (1,)),
            (1, 32.0, 2, False, ()),
        )
        result, state = run(apps, n_machines=2)
        # No preemption needed: machine 1 is free for the second app.
        assert result.preemptions == 0
        assert result.n_undeployed == 0

    def test_no_preemption_between_equal_priorities(self):
        apps = make_apps(
            (1, 32.0, 1, False, ()),
            (1, 32.0, 1, False, ()),
        )
        result, _ = run(apps, n_machines=1)
        assert result.preemptions == 0
        assert result.n_undeployed == 1

    def test_preemption_can_be_disabled(self):
        apps = make_apps(
            (1, 32.0, 0, False, ()),
            (1, 32.0, 2, False, ()),
        )
        result, _ = run(apps, n_machines=1, enable_preemption=False)
        assert 1 in result.undeployed

    def test_disruption_budget_bounds_victims(self):
        apps = make_apps(
            (8, 4.0, 0, False, ()),  # eight small pods fill the machine
            (1, 32.0, 2, False, ()),  # would need 8 evictions
        )
        result, _ = run(apps, n_machines=1, max_preemption_victims=4)
        assert 8 in result.undeployed
        result, _ = run(apps, n_machines=1, max_preemption_victims=8)
        assert 8 in result.placements
