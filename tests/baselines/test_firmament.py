"""Firmament baseline tests: policies, multi-round rescheduling, timeout."""

import pytest

from repro.baselines.firmament import FirmamentScheduler
from repro.baselines.firmament_policies import FirmamentPolicy, machine_costs
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster

from tests.conftest import containers_for, make_apps, state_for


def run(apps, n_machines=4, policy=FirmamentPolicy.TRIVIAL, reschd=1, rounds=8):
    sched = FirmamentScheduler(policy, reschd=reschd, max_rounds=rounds)
    state = state_for(apps, n_machines=n_machines)
    return sched.schedule(containers_for(apps), state), state


class TestCostModels:
    def test_trivial_prefers_packed(self):
        state = ClusterState(build_cluster(3))
        from repro.cluster.container import Container

        state.deploy(
            Container(container_id=0, app_id=0, instance=0, cpu=8, mem_gb=16), 1
        )
        costs = machine_costs(FirmamentPolicy.TRIVIAL, state)
        assert costs[1] < costs[0]

    def test_octopus_prefers_fewer_containers(self):
        state = ClusterState(build_cluster(3))
        from repro.cluster.container import Container

        state.deploy(
            Container(container_id=0, app_id=0, instance=0, cpu=1, mem_gb=2), 0
        )
        costs = machine_costs(FirmamentPolicy.OCTOPUS, state)
        assert costs[0] > costs[1]

    def test_quincy_u_shape(self):
        """Full and empty machines are cheap; middling ones expensive."""
        state = ClusterState(build_cluster(3))
        from repro.cluster.container import Container

        state.deploy(
            Container(container_id=0, app_id=0, instance=0, cpu=28, mem_gb=56), 0
        )
        state.deploy(
            Container(container_id=1, app_id=1, instance=0, cpu=16, mem_gb=32), 1
        )
        costs = machine_costs(FirmamentPolicy.QUINCY, state)
        assert costs[0] < costs[1]  # nearly full < half full

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FirmamentScheduler(reschd=0)
        with pytest.raises(ValueError):
            FirmamentScheduler(max_rounds=0)


@pytest.mark.parametrize(
    "policy", [FirmamentPolicy.TRIVIAL, FirmamentPolicy.QUINCY, FirmamentPolicy.OCTOPUS]
)
class TestMultiRound:
    def test_unconstrained_workload_all_deployed(self, policy):
        apps = make_apps((4, 4.0, 0, False, ()), (2, 8.0, 0, False, ()))
        result, state = run(apps, policy=policy)
        assert result.n_undeployed == 0
        assert not result.violating

    def test_round0_ignores_anti_affinity_then_repairs(self, policy):
        """Fig. 1(b)'s mechanism: constraint-oblivious solve, then
        multi-round conflict resolution."""
        apps = make_apps((3, 4.0, 0, True, ()))
        result, state = run(apps, policy=policy, rounds=8)
        # With enough rounds the conflicts must be fully repaired.
        assert state.anti_affinity_violations() == 0
        assert result.n_undeployed == 0

    def test_timeout_leaves_violations(self, policy):
        """With reschd(1) and a single round the packing policies
        cannot clear all conflicts of a within-AA app."""
        apps = make_apps((6, 1.0, 0, True, ()))
        result, state = run(apps, policy=policy, reschd=1, rounds=1)
        total_bad = len(result.violating) + result.n_undeployed
        if policy is FirmamentPolicy.OCTOPUS:
            # Count-based spreading places replicas apart by luck of the
            # cost model; violations may legitimately be zero.
            assert total_bad >= 0
        else:
            assert total_bad > 0

    def test_more_rescheduling_never_hurts(self, policy):
        apps = make_apps(
            (6, 2.0, 0, True, ()),
            (4, 4.0, 0, True, (0,)),
            (8, 1.0, 0, False, (0, 1)),
        )
        bad = {}
        for reschd in (1, 8):
            result, state = run(apps, policy=policy, reschd=reschd, rounds=8)
            bad[reschd] = len(result.violating) + result.n_undeployed
        assert bad[8] <= bad[1]


class TestQuincyDecode:
    def test_flow_decode_matches_capacity(self):
        """The aggregated min-cost-flow decode never overfills machines."""
        apps = make_apps((10, 4.0, 0, False, ()), (5, 8.0, 0, False, ()))
        result, state = run(apps, n_machines=3, policy=FirmamentPolicy.QUINCY)
        assert (state.available >= 0).all()
        # 80 CPU demanded, 96 available: everything must fit.
        assert result.n_undeployed == 0


class TestRandomPolicy:
    """RANDOM is one more of Firmament's eight policies, kept as a
    floor baseline for ablations."""

    def test_random_deploys_with_room(self):
        apps = make_apps((6, 4.0, 0, False, ()))
        result, state = run(apps, policy=FirmamentPolicy.RANDOM)
        assert result.n_undeployed == 0

    def test_random_is_seed_deterministic(self):
        apps = make_apps((8, 2.0, 0, False, ()))
        placements = []
        for _ in range(2):
            sched = FirmamentScheduler(FirmamentPolicy.RANDOM, seed=5)
            state = state_for(apps, n_machines=6)
            placements.append(
                sched.schedule(containers_for(apps), state).placements
            )
        assert placements[0] == placements[1]

    def test_random_conflict_repair_still_works(self):
        apps = make_apps((4, 2.0, 0, True, ()))
        result, state = run(apps, policy=FirmamentPolicy.RANDOM, reschd=4)
        assert state.anti_affinity_violations() == 0
