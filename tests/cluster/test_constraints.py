"""Unit tests for the anti-affinity constraint index."""

import pytest

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Application


class TestAntiAffinityRule:
    def test_within_detection(self):
        assert AntiAffinityRule(3, 3).within
        assert not AntiAffinityRule(3, 4).within

    def test_normalized_orders_pair(self):
        rule = AntiAffinityRule(7, 2).normalized()
        assert (rule.app_a, rule.app_b) == (2, 7)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            AntiAffinityRule(-1, 2)

    def test_rejects_bad_hardness(self):
        with pytest.raises(ValueError):
            AntiAffinityRule(1, 2, hardness=7)


class TestConstraintSet:
    def test_cross_rules_are_symmetric(self):
        cs = ConstraintSet([AntiAffinityRule(1, 2)])
        assert cs.violates(1, 2)
        assert cs.violates(2, 1)
        assert 2 in cs.conflicts_of(1)
        assert 1 in cs.conflicts_of(2)

    def test_within_rule(self):
        cs = ConstraintSet([AntiAffinityRule(4, 4)])
        assert cs.has_within(4)
        assert cs.violates(4, 4)
        assert not cs.violates(4, 5)

    def test_same_app_without_within_rule_ok(self):
        cs = ConstraintSet()
        assert not cs.violates(9, 9)

    def test_conflicting_pairs_canonical(self):
        cs = ConstraintSet([AntiAffinityRule(5, 1), AntiAffinityRule(1, 5)])
        assert cs.conflicting_pairs() == {(1, 5)}

    def test_len_counts_within_and_pairs(self):
        cs = ConstraintSet(
            [AntiAffinityRule(0, 0), AntiAffinityRule(1, 2), AntiAffinityRule(2, 3)]
        )
        assert len(cs) == 3

    def test_apps_with_anti_affinity(self):
        cs = ConstraintSet([AntiAffinityRule(0, 0), AntiAffinityRule(1, 2)])
        assert cs.apps_with_anti_affinity() == {0, 1, 2}

    def test_from_applications(self):
        apps = [
            Application(0, 2, 1.0, 2.0, anti_affinity_within=True),
            Application(1, 1, 1.0, 2.0, conflicts=frozenset({0})),
            Application(2, 1, 1.0, 2.0),
        ]
        cs = ConstraintSet.from_applications(apps)
        assert cs.has_within(0)
        assert cs.violates(0, 1)
        assert not cs.violates(2, 0)

    def test_conflicts_of_unknown_app_is_empty(self):
        assert ConstraintSet().conflicts_of(42) == frozenset()
