"""Unit tests for ClusterState — the heart of all schedulers' bookkeeping."""

import numpy as np
import pytest

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster


def container(cid, app=0, cpu=4.0, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


@pytest.fixture
def state():
    topo = build_cluster(4)
    cs = ConstraintSet([AntiAffinityRule(0, 0), AntiAffinityRule(1, 2)])
    return ClusterState(topo, cs)


class TestDeployEvict:
    def test_deploy_reduces_available(self, state):
        state.deploy(container(0, cpu=4.0), 1)
        assert state.available[1].tolist() == [28.0, 56.0]
        assert state.container_count[1] == 1
        assert state.assignment[0] == 1

    def test_evict_restores_everything(self, state):
        c = container(0, cpu=4.0)
        state.deploy(c, 1)
        returned = state.evict(0)
        assert returned == c
        assert state.available[1].tolist() == [32.0, 64.0]
        assert state.container_count[1] == 0
        assert 0 not in state.assignment
        assert state.machines_hosting(0) == {}

    def test_double_deploy_rejected(self, state):
        state.deploy(container(0), 1)
        with pytest.raises(ValueError, match="already deployed"):
            state.deploy(container(0), 2)

    def test_deploy_beyond_capacity_rejected(self, state):
        state.deploy(container(0, cpu=30.0), 1)
        with pytest.raises(ValueError, match="lacks resources"):
            state.deploy(container(1, cpu=4.0), 1)

    def test_evict_unknown_rejected(self, state):
        with pytest.raises(KeyError):
            state.evict(99)

    def test_migrate_moves_atomically(self, state):
        state.deploy(container(0), 1)
        state.migrate(0, 3)
        assert state.assignment[0] == 3
        assert state.available[1, 0] == 32.0
        assert state.available[3, 0] == 28.0


class TestAntiAffinityBookkeeping:
    def test_within_app_blacklists_own_machine(self, state):
        state.deploy(container(0, app=0), 2)  # app 0 has within-AA
        mask = state.forbidden_mask(0)
        assert mask[2]
        assert mask.sum() == 1

    def test_cross_app_blacklist_symmetric(self, state):
        state.deploy(container(0, app=1), 0)
        assert state.forbidden_mask(2)[0]
        assert not state.forbidden_mask(1)[0]  # app 1 has no within rule

    def test_deploy_in_violation_requires_force(self, state):
        state.deploy(container(0, app=1), 0)
        with pytest.raises(ValueError, match="anti-affinity"):
            state.deploy(container(1, app=2), 0)
        state.deploy(container(1, app=2), 0, force=True)
        assert state.anti_affinity_violations() == 2

    def test_would_violate(self, state):
        state.deploy(container(0, app=1), 0)
        assert state.would_violate(container(1, app=2), 0)
        assert not state.would_violate(container(1, app=3), 0)

    def test_within_violation_counts_each_container(self, state):
        state.deploy(container(0, app=0), 0)
        state.deploy(container(1, app=0), 0, force=True)
        assert state.anti_affinity_violations() == 2

    def test_violations_clear_after_evict(self, state):
        state.deploy(container(0, app=1), 0)
        state.deploy(container(1, app=2), 0, force=True)
        state.evict(1)
        assert state.anti_affinity_violations() == 0


class TestQueries:
    def test_feasible_mask_resources_only(self, state):
        state.deploy(container(0, cpu=30.0), 0)
        mask = state.feasible_mask(np.array([4.0, 8.0]))
        assert mask.tolist() == [False, True, True, True]

    def test_feasible_mask_with_anti_affinity(self, state):
        state.deploy(container(0, app=1), 0)
        mask = state.feasible_mask(np.array([4.0, 8.0]), app_id=2)
        assert mask.tolist() == [False, True, True, True]

    def test_used_machines_and_utilization(self, state):
        state.deploy(container(0, cpu=16.0), 0)
        state.deploy(container(1, app=3, cpu=8.0), 2)
        assert state.used_machines() == 2
        util = state.used_utilization(dim=0)
        assert sorted(util.tolist()) == [0.25, 0.5]

    def test_snapshot_is_independent(self, state):
        state.deploy(container(0), 1)
        snap = state.snapshot()
        state.deploy(container(1, app=3), 2)
        assert 1 not in snap.assignment
        assert snap.available[1, 0] == 28.0
        snap.evict(0)
        assert state.assignment[0] == 1

    def test_deployed_containers_listing(self, state):
        c = container(0)
        state.deploy(c, 1)
        assert state.deployed_containers(1) == [c]
        assert state.deployed_containers(0) == []


class TestDirtyLogCompactionBoundary:
    """Regression: consumers synced before the compaction base must get
    ``None`` ("everything may have changed"), never a mis-sliced tail of
    the log or stale verdicts.  The ``version < _log_base`` guards in
    ``dirty_since``/``dirty_array_since`` pin this; without them the
    slice index ``version - _log_base`` would go negative and silently
    return the wrong suffix of the log.
    """

    def _compact(self, state):
        for _ in range(state._log_limit + 1):
            state.touch(3)
        assert state._log_base > 0  # compaction actually happened

    def test_pre_compaction_version_returns_none(self, state):
        state.deploy(container(0, app=3), 1)
        synced = state.version
        self._compact(state)
        assert synced < state._log_base
        assert state.dirty_since(synced) is None
        assert state.dirty_array_since(synced) is None

    def test_version_exactly_at_base_still_served(self, state):
        self._compact(state)
        base = state._log_base
        dirty = state.dirty_since(base)
        assert dirty is not None
        assert dirty == {3}
        arr = state.dirty_array_since(base)
        assert arr is not None and arr.tolist() == [3]

    def test_negative_slice_would_lie_guard_prevents_it(self, state):
        # Dirty machines 0 and 1 before compaction, then only 3 after.
        state.touch(0)
        state.touch(1)
        synced = 1  # synced after touch(0), before touch(1)
        self._compact(state)
        # A naive slice self._dirty_log[synced - self._log_base:] would
        # return a short tail of post-compaction entries — all machine 3
        # — silently omitting machine 1's mutation.  The guard reports
        # "unknown" instead.
        assert state.dirty_since(synced) is None

    def test_current_version_is_empty_even_after_compaction(self, state):
        self._compact(state)
        assert state.dirty_since(state.version) == set()
        assert state.dirty_array_since(state.version).size == 0

    def test_cache_falls_back_to_full_recompute(self, state):
        from repro.core.feascache import FeasibilityCache

        demand = np.array([4.0, 8.0])
        cache = FeasibilityCache(report_telemetry=False)
        cache.feasible_mask(state, demand, app_id=3)
        # fill machine 2 to capacity, then compact past the sync point
        state.deploy(container(7, app=3, cpu=state.available[2, 0]), 2)
        self._compact(state)
        got = cache.feasible_mask(state, demand, app_id=3)
        assert got.tolist() == state.feasible_mask(demand, app_id=3).tolist()
        assert not got[2]


class TestEventTracking:
    def test_events_recorded_when_enabled(self):
        from repro.cluster.events import EventKind

        topo = build_cluster(2)
        state = ClusterState(topo, track_events=True)
        state.deploy(container(0), 0)
        state.migrate(0, 1)
        state.evict(0)
        kinds = [e.kind for e in state.events]
        # migrate() is implemented as evict+deploy plus a MIGRATE record
        assert kinds.count(EventKind.DEPLOY) == 2
        assert kinds.count(EventKind.EVICT) == 2
        assert kinds.count(EventKind.MIGRATE) == 1

    def test_events_disabled_by_default(self, state):
        assert state.events is None
