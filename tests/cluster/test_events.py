"""Unit tests for the event log."""

from repro.cluster.events import Event, EventKind, EventLog


def ev(kind, t=0, cid=0):
    return Event(kind=kind, time=t, container_id=cid, machine_id=0)


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(ev(EventKind.DEPLOY))
        log.append(ev(EventKind.EVICT))
        assert len(log) == 2

    def test_of_kind_filters(self):
        log = EventLog()
        for kind in (EventKind.DEPLOY, EventKind.EVICT, EventKind.DEPLOY):
            log.append(ev(kind))
        assert len(log.of_kind(EventKind.DEPLOY)) == 2
        assert log.count(EventKind.EVICT) == 1
        assert log.count(EventKind.MIGRATE) == 0

    def test_iteration_preserves_order(self):
        log = EventLog()
        for t in range(5):
            log.append(ev(EventKind.SUBMIT, t=t, cid=t))
        assert [e.time for e in log] == list(range(5))

    def test_migrate_event_carries_source(self):
        e = Event(
            kind=EventKind.MIGRATE,
            time=1,
            container_id=9,
            machine_id=3,
            source_machine=1,
        )
        assert e.source_machine == 1
