"""Unit tests for Application and Container."""

import pytest

from repro.cluster.container import Application, Container, containers_of


def app(i=0, n=3, cpu=4.0, **kw):
    return Application(app_id=i, n_containers=n, cpu=cpu, mem_gb=cpu * 2, **kw)


class TestApplication:
    def test_demand_vector_default_order(self):
        assert app(cpu=4.0).demand_vector().tolist() == [4.0, 8.0]

    def test_demand_vector_custom_order(self):
        assert app(cpu=4.0).demand_vector(("mem_gb", "cpu")).tolist() == [8.0, 4.0]

    def test_has_anti_affinity_from_within(self):
        assert app(anti_affinity_within=True).has_anti_affinity

    def test_has_anti_affinity_from_conflicts(self):
        assert app(conflicts=frozenset({5})).has_anti_affinity

    def test_no_anti_affinity_by_default(self):
        assert not app().has_anti_affinity

    def test_rejects_self_in_conflicts(self):
        with pytest.raises(ValueError, match="anti_affinity_within"):
            app(i=3, conflicts=frozenset({3}))

    @pytest.mark.parametrize(
        "kw",
        [
            dict(app_id=-1),
            dict(n_containers=0),
            dict(cpu=0.0),
            dict(mem_gb=-1.0),
            dict(priority=-2),
        ],
    )
    def test_rejects_invalid_fields(self, kw):
        base = dict(app_id=0, n_containers=1, cpu=1.0, mem_gb=2.0, priority=0)
        base.update(kw)
        with pytest.raises(ValueError):
            Application(**base)


class TestContainersOf:
    def test_expands_all_instances(self):
        apps = [app(0, n=3), app(1, n=2)]
        cs = containers_of(apps)
        assert len(cs) == 5
        assert [c.app_id for c in cs] == [0, 0, 0, 1, 1]
        assert [c.instance for c in cs] == [0, 1, 2, 0, 1]

    def test_container_ids_are_dense_and_positional(self):
        cs = containers_of([app(0, n=2), app(1, n=2)], start_id=10)
        assert [c.container_id for c in cs] == [10, 11, 12, 13]

    def test_containers_inherit_app_demand_and_priority(self):
        cs = containers_of([app(0, n=2, cpu=8.0, priority=3)])
        for c in cs:
            assert (c.cpu, c.mem_gb, c.priority) == (8.0, 16.0, 3)

    def test_container_demand_vector(self):
        c = Container(container_id=0, app_id=0, instance=0, cpu=2.0, mem_gb=4.0)
        assert c.demand_vector(("cpu",)).tolist() == [2.0]
