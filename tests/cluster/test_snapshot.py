"""Snapshot envelope + ClusterState checkpoint/restore guarantees.

Pins the three properties the crash-resume machinery rests on:
integrity (checksum rejects corruption), atomicity (write-rename never
leaves a partial file), and the stale-watermark contract (a consumer
whose persisted version predates log compaction falls back to a full
resync, never to stale verdicts).
"""

import os
import pickle

import numpy as np
import pytest

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.snapshot import (
    _HEADER,
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.feascache import FeasibilityCache


def container(cid, app=0, cpu=4.0, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


@pytest.fixture
def topo():
    return build_cluster(6)


@pytest.fixture
def constraints():
    return ConstraintSet([AntiAffinityRule(0, 0), AntiAffinityRule(1, 2)])


def populated_state(topo, constraints, track_events=False):
    state = ClusterState(topo, constraints, track_events=track_events)
    state.deploy(container(0, app=0, cpu=4.0), 1)
    state.deploy(container(1, app=1, cpu=8.0), 2)
    state.deploy(container(2, app=3, cpu=2.0), 2)
    state.deploy(container(3, app=3, cpu=2.0), 4)
    state.migrate(3, 5)
    state.evict(2)
    state.touch(0)
    return state


# ----------------------------------------------------------------------
# envelope: round-trip, integrity, atomicity
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        payload = {"a": np.arange(4), "b": [1, 2, 3]}
        write_snapshot(path, payload, kind="test")
        back = read_snapshot(path, kind="test")
        assert back["b"] == [1, 2, 3]
        assert back["a"].tolist() == [0, 1, 2, 3]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(str(tmp_path / "absent.bin"), kind="test")

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        write_snapshot(path, {"x": 1}, kind="test")
        data = open(path, "rb").read()
        open(path, "wb").write(data[: _HEADER.size - 3])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path, kind="test")

    def test_truncated_payload_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        write_snapshot(path, {"x": list(range(100))}, kind="test")
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-7])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path, kind="test")

    def test_corrupted_payload_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        write_snapshot(path, {"x": list(range(100))}, kind="test")
        data = bytearray(open(path, "rb").read())
        data[_HEADER.size + 10] ^= 0xFF  # flip one payload bit-pattern
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(path, kind="test")

    def test_foreign_file_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        open(path, "wb").write(b"not a snapshot at all" * 10)
        with pytest.raises(SnapshotError, match="not an Aladdin snapshot"):
            read_snapshot(path, kind="test")

    def test_future_format_version_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        blob = pickle.dumps({"kind": "test", "payload": 1})
        import hashlib

        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION + 1, hashlib.sha256(blob).digest(), len(blob)
        )
        open(path, "wb").write(header + blob)
        with pytest.raises(SnapshotError, match="format version"):
            read_snapshot(path, kind="test")

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        write_snapshot(path, {"x": 1}, kind="cluster-state")
        with pytest.raises(SnapshotError, match="expected 'online-sim'"):
            read_snapshot(path, kind="online-sim")

    def test_write_is_atomic_no_partial_or_tmp_residue(self, tmp_path, monkeypatch):
        path = str(tmp_path / "snap.bin")
        write_snapshot(path, {"gen": 1}, kind="test")

        # Crash the rename step of the next write: the previous
        # complete snapshot must survive and no temp file may linger.
        def boom(src, dst):
            raise OSError("simulated crash mid-rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            write_snapshot(path, {"gen": 2}, kind="test")
        monkeypatch.undo()

        assert read_snapshot(path, kind="test") == {"gen": 1}
        assert os.listdir(tmp_path) == ["snap.bin"]


# ----------------------------------------------------------------------
# ClusterState round-trip
# ----------------------------------------------------------------------
class TestStateRoundTrip:
    def test_everything_survives(self, tmp_path, topo, constraints):
        state = populated_state(topo, constraints)
        path = str(tmp_path / "state.bin")
        state.save(path)
        back = ClusterState.restore(path, topo, constraints)

        assert back.assignment == state.assignment
        assert np.array_equal(back.available, state.available)
        assert np.array_equal(back.container_count, state.container_count)
        assert back.version == state.version
        assert back.dirty_log == state.dirty_log
        assert back._log_base == state._log_base
        assert back.app_machines == state.app_machines
        # resident enumeration order is part of the determinism contract
        assert {m: list(d) for m, d in back.machine_containers.items()} == {
            m: list(d) for m, d in state.machine_containers.items()
        }
        assert back.anti_affinity_violations() == state.anti_affinity_violations()

    def test_restored_state_keeps_mutating(self, tmp_path, topo, constraints):
        state = populated_state(topo, constraints)
        path = str(tmp_path / "state.bin")
        state.save(path)
        back = ClusterState.restore(path, topo, constraints)
        back.deploy(container(50, app=3), 0)
        state.deploy(container(50, app=3), 0)
        assert back.assignment == state.assignment
        assert back.version == state.version

    def test_fresh_uid_forces_foreign_consumers_to_reset(
        self, tmp_path, topo, constraints
    ):
        state = populated_state(topo, constraints)
        path = str(tmp_path / "state.bin")
        state.save(path)
        back = ClusterState.restore(path, topo, constraints)
        assert back.state_uid != state.state_uid

    def test_events_survive(self, tmp_path, topo, constraints):
        state = populated_state(topo, constraints, track_events=True)
        path = str(tmp_path / "state.bin")
        state.save(path)
        back = ClusterState.restore(path, topo, constraints)
        assert back.events == state.events

    def test_topology_mismatch_rejected(self, tmp_path, topo, constraints):
        state = populated_state(topo, constraints)
        path = str(tmp_path / "state.bin")
        state.save(path)
        with pytest.raises(SnapshotError, match="machines"):
            ClusterState.restore(path, build_cluster(3), constraints)


# ----------------------------------------------------------------------
# stale-watermark contract: compaction past the persisted version
# means full resync, never silently stale verdicts
# ----------------------------------------------------------------------
class TestStaleWatermarkFallback:
    def test_cache_restored_past_compaction_recomputes_fully(
        self, topo, constraints
    ):
        state = populated_state(topo, constraints)
        demand = np.array([4.0, 8.0])
        cache = FeasibilityCache(report_telemetry=False)
        cache.feasible_mask(state, demand, app_id=3)
        cache.feasible_mask(state, demand, app_id=3)  # recurrence: entry stored
        image = cache.checkpoint()
        synced_at = next(iter(image["entries"].values()))[1]

        # Compact the log well past the checkpointed watermark while
        # mutating actual feasibility (fill machine 3 completely).
        state.deploy(container(90, app=4, cpu=state.available[3, 0]), 3)
        for _ in range(state._log_limit + 1):
            state.touch(0)
        assert state.dirty_since(synced_at) is None  # log really compacted

        restored = FeasibilityCache(report_telemetry=False)
        restored.restore(image, state.state_uid)
        got = restored.feasible_mask(state, demand, app_id=3)
        want = state.feasible_mask(demand, app_id=3)
        assert got.tolist() == want.tolist()
        assert not got[3]  # the post-checkpoint mutation is visible

    def test_resync_inside_log_window_is_warm(self, topo, constraints):
        state = populated_state(topo, constraints)
        demand = np.array([4.0, 8.0])
        cache = FeasibilityCache(report_telemetry=False)
        cache.feasible_mask(state, demand, app_id=3)
        cache.feasible_mask(state, demand, app_id=3)  # recurrence: entry stored
        image = cache.checkpoint()

        state.deploy(container(91, app=4, cpu=state.available[3, 0]), 3)
        restored = FeasibilityCache(report_telemetry=False)
        restored.restore(image, state.state_uid)
        before = restored.misses
        got = restored.feasible_mask(state, demand, app_id=3)
        assert got.tolist() == state.feasible_mask(demand, app_id=3).tolist()
        # only the one dirtied machine was recomputed — warm, not cold
        assert restored.misses - before == 1


class TestEnvelopeFuzz:
    """Seeded mutation fuzz over the snapshot envelope.

    Every corruption of a valid snapshot file — random byte flips,
    truncations, appended garbage — must surface as a loud
    :class:`SnapshotError`, never load silently wrong.  The three
    mutation classes cover the whole envelope surface: a flipped byte
    lands in the magic, version, digest, length or payload (each
    individually validated); a truncation breaks the header or the
    declared length; an append breaks the exact-length check.
    """

    PAYLOAD = {
        "numbers": list(range(128)),
        "array": np.arange(64, dtype=np.float64),
        "nested": {"a": {"b": [1.5, 2.5]}, "ids": {7: 3, 9: 1}},
    }

    @pytest.fixture()
    def snapshot_bytes(self, tmp_path):
        path = str(tmp_path / "valid.bin")
        write_snapshot(path, self.PAYLOAD, kind="fuzz")
        with open(path, "rb") as fh:
            return fh.read()

    @staticmethod
    def _must_reject(tmp_path, data):
        path = str(tmp_path / "mutated.bin")
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(SnapshotError):
            read_snapshot(path, kind="fuzz")
        # and the rejection must not depend on the expected kind
        with pytest.raises(SnapshotError):
            read_snapshot(path, kind="anything-else")

    def test_valid_snapshot_loads(self, snapshot_bytes, tmp_path):
        path = str(tmp_path / "copy.bin")
        with open(path, "wb") as fh:
            fh.write(snapshot_bytes)
        got = read_snapshot(path, kind="fuzz")
        assert got["numbers"] == self.PAYLOAD["numbers"]
        assert np.array_equal(got["array"], self.PAYLOAD["array"])

    def test_byte_flips_always_rejected(self, snapshot_bytes, tmp_path):
        """~100 random single-byte flips (XOR with a nonzero mask, so
        the file is guaranteed different) across the whole file."""
        rng = np.random.default_rng(0xA17ADD1)
        for i in range(100):
            pos = int(rng.integers(0, len(snapshot_bytes)))
            mask = int(rng.integers(1, 256))
            mutated = bytearray(snapshot_bytes)
            mutated[pos] ^= mask
            self._must_reject(tmp_path, bytes(mutated))

    def test_truncations_always_rejected(self, snapshot_bytes, tmp_path):
        """~50 random strict truncations, plus the empty file and the
        bare header."""
        rng = np.random.default_rng(0xA17ADD2)
        cuts = {0, _HEADER.size, len(snapshot_bytes) - 1}
        cuts.update(
            int(rng.integers(0, len(snapshot_bytes))) for _ in range(50)
        )
        for cut in sorted(cuts):
            self._must_reject(tmp_path, snapshot_bytes[:cut])

    def test_appends_always_rejected(self, snapshot_bytes, tmp_path):
        """~50 random non-empty suffixes appended to a valid file."""
        rng = np.random.default_rng(0xA17ADD3)
        for i in range(50):
            n = int(rng.integers(1, 64))
            junk = rng.integers(0, 256, n, dtype=np.uint8).tobytes()
            self._must_reject(tmp_path, snapshot_bytes + junk)

    def test_combined_mutations_rejected(self, snapshot_bytes, tmp_path):
        """Flip + truncate + append stacked (seeded, 20 rounds) — the
        compound corruptions a real torn disk produces."""
        rng = np.random.default_rng(0xA17ADD4)
        for i in range(20):
            data = bytearray(snapshot_bytes)
            pos = int(rng.integers(0, len(data)))
            data[pos] ^= int(rng.integers(1, 256))
            data = data[: int(rng.integers(1, len(data)))]
            data += rng.integers(0, 256, 8, dtype=np.uint8).tobytes()
            self._must_reject(tmp_path, bytes(data))
