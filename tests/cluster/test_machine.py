"""Unit tests for MachineSpec."""

import numpy as np
import pytest

from repro.cluster.machine import (
    ALIBABA_MACHINE_CPU,
    ALIBABA_MACHINE_MEM_GB,
    MachineSpec,
)


class TestDefaults:
    def test_matches_alibaba_trace_shape(self):
        spec = MachineSpec()
        assert spec.cpu == ALIBABA_MACHINE_CPU == 32.0
        assert spec.mem_gb == ALIBABA_MACHINE_MEM_GB == 64.0

    def test_capacity_vector_order_follows_resources(self):
        spec = MachineSpec(cpu=8, mem_gb=16, resources=("mem_gb", "cpu"))
        assert spec.capacity_vector().tolist() == [16.0, 8.0]

    def test_capacity_vector_dtype(self):
        assert MachineSpec().capacity_vector().dtype == np.float64

    def test_n_dims_counts_resources(self):
        assert MachineSpec().n_dims == 2
        assert MachineSpec(resources=("cpu",)).n_dims == 1


class TestValidation:
    @pytest.mark.parametrize("cpu", [0, -1, -32])
    def test_rejects_nonpositive_cpu(self, cpu):
        with pytest.raises(ValueError, match="cpu"):
            MachineSpec(cpu=cpu)

    @pytest.mark.parametrize("mem", [0, -64])
    def test_rejects_nonpositive_memory(self, mem):
        with pytest.raises(ValueError, match="mem_gb"):
            MachineSpec(mem_gb=mem)

    def test_rejects_unknown_resource_dimension(self):
        with pytest.raises(ValueError, match="unknown resource"):
            MachineSpec(resources=("cpu", "gpu"))

    def test_rejects_empty_resources(self):
        with pytest.raises(ValueError, match="at least one"):
            MachineSpec(resources=())

    def test_spec_is_immutable(self):
        spec = MachineSpec()
        with pytest.raises(AttributeError):
            spec.cpu = 64
