"""Heterogeneous clusters — the paper's stated future work (Section VII).

Every scheduler reads capacities through ``ClusterTopology.capacity``,
so mixed machine shapes work throughout; these tests pin that down.
"""

import numpy as np
import pytest

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    GoKubeScheduler,
    MachineSpec,
    MedeaScheduler,
    MedeaWeights,
    build_heterogeneous_cluster,
)
from repro.cluster.container import containers_of
from repro.cluster.topology import ClusterSpec, ClusterTopology


def mixed_topology():
    return build_heterogeneous_cluster(
        [
            (4, MachineSpec(cpu=8.0, mem_gb=16.0)),
            (2, MachineSpec(cpu=64.0, mem_gb=128.0)),
        ],
        machines_per_rack=4,
    )


class TestTopology:
    def test_capacity_per_group(self):
        topo = mixed_topology()
        assert topo.n_machines == 6
        assert topo.capacity[0].tolist() == [8.0, 16.0]
        assert topo.capacity[5].tolist() == [64.0, 128.0]
        assert not topo.is_homogeneous

    def test_homogeneous_flag(self):
        topo = build_heterogeneous_cluster([(3, MachineSpec())])
        assert topo.is_homogeneous

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError):
            build_heterogeneous_cluster([])

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            build_heterogeneous_cluster([(0, MachineSpec())])

    def test_rejects_mixed_resource_dims(self):
        with pytest.raises(ValueError, match="resource dimensions"):
            build_heterogeneous_cluster(
                [
                    (1, MachineSpec()),
                    (1, MachineSpec(resources=("cpu",))),
                ]
            )

    def test_explicit_capacity_shape_checked(self):
        spec = ClusterSpec(n_machines=3)
        with pytest.raises(ValueError, match="shape"):
            ClusterTopology(spec, capacity=np.ones((2, 2)))

    def test_explicit_capacity_positive(self):
        spec = ClusterSpec(n_machines=2)
        with pytest.raises(ValueError, match="positive"):
            ClusterTopology(spec, capacity=np.zeros((2, 2)))


class TestSchedulingOnMixedShapes:
    def apps(self):
        return [
            # only the big machines can host this
            Application(0, 2, 32.0, 64.0, anti_affinity_within=True),
            # fits anywhere
            Application(1, 6, 4.0, 8.0),
        ]

    @pytest.mark.parametrize(
        "factory",
        [
            AladdinScheduler,
            GoKubeScheduler,
            lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
        ],
    )
    def test_big_containers_land_on_big_machines(self, factory):
        apps = self.apps()
        state = ClusterState(
            mixed_topology(), ConstraintSet.from_applications(apps)
        )
        result = factory().schedule(containers_of(apps), state)
        assert result.n_undeployed == 0
        for c in containers_of(apps):
            if c.cpu == 32.0:
                assert result.placements[c.container_id] in (4, 5)
        assert (state.available >= 0).all()

    def test_utilization_uses_per_machine_capacity(self):
        apps = [Application(0, 1, 8.0, 16.0)]
        state = ClusterState(mixed_topology(), ConstraintSet())
        AladdinScheduler().schedule(containers_of(apps), state)
        util = state.used_utilization(dim=0)
        # An 8-CPU container fills a small machine (100 %), not 12.5 %.
        assert util.tolist() == [1.0]

    def test_aladdin_migration_works_on_mixed_shapes(self):
        apps = [
            Application(0, 1, 6.0, 12.0, conflicts=frozenset({1})),
            Application(1, 1, 6.0, 12.0, conflicts=frozenset({0})),
        ]
        topo = build_heterogeneous_cluster(
            [(2, MachineSpec(cpu=8.0, mem_gb=16.0))]
        )
        state = ClusterState(topo, ConstraintSet.from_applications(apps))
        result = AladdinScheduler().schedule(containers_of(apps), state)
        assert result.n_undeployed == 0
        assert len(set(result.placements.values())) == 2


class TestKubeAdaptorMixedNodes:
    def test_adaptor_builds_heterogeneous_state(self):
        from repro.kube.adaptor import ModelAdaptor
        from repro.kube.api import Node

        adaptor = ModelAdaptor()
        adaptor.add_nodes(
            [Node("small", 8, 16), Node("big", 64, 128)]
        )
        state = adaptor.state()
        assert state.topology.capacity[0, 0] == 8.0
        assert state.topology.capacity[1, 0] == 64.0

    def test_pipeline_schedules_across_mixed_nodes(self):
        from repro.kube import KubeApiServer, Node, Pod, PodPhase, SchedulingLoop

        api = KubeApiServer()
        api.add_node(Node("small-0", 8, 16))
        api.add_node(Node("big-0", 64, 128))
        api.create_pod(Pod("tiny", "a", 4, 8))
        api.create_pod(Pod("huge", "b", 48, 96))
        loop = SchedulingLoop(api)
        result = loop.run_once()
        assert result.n_deployed == 2
        nodes = {p.name: p.node_name for p in api.pods(PodPhase.SCHEDULED)}
        assert nodes["huge"] == "big-0"
