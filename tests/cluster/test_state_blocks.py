"""Batched state mutations (`evict_block` / `deploy_block` / `touch_block`).

The churn fast path commits whole windows and whole application blocks
through one vectorised mutation instead of a per-container Python loop.
These tests pin the contract that makes that safe: every block method is
**bit-identical** to its scalar fallback applied per element in order
(``np.add.at``/``np.subtract.at`` are unbuffered, so per-occurrence
updates apply in exactly the loop's sequence), and the documented edge
cases — absent ids, empty blocks, overcommitted plans — degrade the way
the shared window logic relies on.
"""

import numpy as np
import pytest

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster


def container(cid, app=0, cpu=4.0, prio=0):
    return Container(
        container_id=cid, app_id=app, instance=0, cpu=cpu, mem_gb=cpu * 2,
        priority=prio,
    )


@pytest.fixture
def topo():
    return build_cluster(8)


@pytest.fixture
def constraints():
    return ConstraintSet([AntiAffinityRule(0, 0)])


def fresh_pair(topo, constraints):
    """Two independent states with identical starting populations."""
    states = []
    for _ in range(2):
        state = ClusterState(topo, constraints)
        state.deploy(container(0, app=0, cpu=4.0), 1)
        state.deploy(container(1, app=1, cpu=8.0), 2)
        state.deploy(container(2, app=1, cpu=8.0), 2)
        state.deploy(container(3, app=2, cpu=2.0), 4)
        state.deploy(container(4, app=2, cpu=2.0), 1)
        states.append(state)
    return states


def assert_states_identical(a: ClusterState, b: ClusterState) -> None:
    assert a.assignment == b.assignment
    assert (a.available == b.available).all()  # bitwise, not allclose
    assert (a.container_count == b.container_count).all()
    assert a.version == b.version
    assert a.dirty_log == b.dirty_log
    assert {m: list(c) for m, c in a.machine_containers.items() if c} == {
        m: list(c) for m, c in b.machine_containers.items() if c
    }
    assert a.app_machines == b.app_machines


class TestEvictBlock:
    def test_bit_identical_to_scalar_loop(self, topo, constraints):
        batched, scalar = fresh_pair(topo, constraints)
        ids = [4, 0, 2]  # deliberately out of deployment order
        assert batched.evict_block(ids) == 3
        for cid in ids:
            scalar.evict(cid)
        assert_states_identical(batched, scalar)

    def test_absent_ids_skipped_not_fatal(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        # 999 was never deployed; 0 is evicted twice (absent second time)
        assert state.evict_block([0, 999]) == 1
        assert state.evict_block([0, 999]) == 0
        assert 0 not in state.assignment

    def test_empty_block_is_a_no_op(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        before = state.version
        assert state.evict_block([]) == 0
        assert state.evict_block([999]) == 0  # all-absent is empty too
        assert state.version == before

    def test_events_recorded_per_container(self, topo, constraints):
        state = ClusterState(topo, constraints, track_events=True)
        state.deploy(container(0, app=0), 1)
        state.deploy(container(1, app=0), 2)
        from repro.cluster.events import EventKind

        state.evict_block([0, 1])
        evicts = state.events.of_kind(EventKind.EVICT)
        assert [(e.container_id, e.machine_id) for e in evicts] == [
            (0, 1), (1, 2)
        ]


class TestDeployBlock:
    def test_bit_identical_to_scalar_loop(self, topo, constraints):
        batched, scalar = fresh_pair(topo, constraints)
        block = [container(10 + i, app=5, cpu=3.0) for i in range(4)]
        machines = np.array([0, 3, 0, 5], dtype=np.int64)
        demand = block[0].demand_vector(topo.resources)
        batched.deploy_block(block, machines, demand)
        for c, m in zip(block, machines.tolist()):
            scalar.deploy(c, m)
        assert_states_identical(batched, scalar)

    def test_empty_block_is_a_no_op(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        before = state.version
        state.deploy_block([], np.array([], dtype=np.int64), np.zeros(2))
        assert state.version == before

    def test_length_mismatch_rejected(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        demand = np.array([1.0, 2.0])
        with pytest.raises(ValueError, match="containers for"):
            state.deploy_block([container(10)], np.array([0, 1]), demand)

    def test_duplicate_assignment_rejected(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        demand = np.array([1.0, 2.0])
        with pytest.raises(ValueError, match="already"):
            state.deploy_block(
                [container(0, app=9, cpu=1.0)],  # id 0 is deployed
                np.array([3], dtype=np.int64),
                demand,
            )

    def test_overcommit_rolls_back_and_raises(self, topo, constraints):
        state, _ = fresh_pair(topo, constraints)
        before = state.available.copy()
        big = float(state.available[3, 0]) + 1.0
        block = [container(20, app=7, cpu=big)]
        demand = block[0].demand_vector(topo.resources)
        with pytest.raises(ValueError, match="overcommit"):
            state.deploy_block(block, np.array([3], dtype=np.int64), demand)
        assert (state.available == before).all()
        assert 20 not in state.assignment

    def test_overcommit_rollback_is_bit_exact(self, topo, constraints):
        """Rolling back by re-adding the demand is not bit-exact in
        floating point (``a - b + b`` need not equal ``a``); the block
        must restore the snapshot instead (ISSUE 10 satellite).

        The values are chosen so the old re-add rollback provably
        diverges: with 0.01 CPU left, two subtractions of 0.1 followed
        by two additions of 0.1 do not round-trip in float64.
        """
        state = ClusterState(topo, constraints)
        # Leave machine 2 nearly full so two block placements overcommit.
        state.deploy(container(0, app=0, cpu=31.99), 2)
        x = float(state.available[2, 0])
        # Find a demand whose subtract-thrice/add-thrice walk over the
        # actual remainder does not round-trip (plenty exist; the first
        # hit keeps the test deterministic).
        cpu = next(
            d for d in (k / 100 for k in range(1, 700))
            if (((x - d) - d) - d) + d + d + d != x
        )
        before = state.available.copy()
        block = [
            container(10, app=5, cpu=cpu),
            container(11, app=5, cpu=cpu),
            container(12, app=5, cpu=cpu),
            container(13, app=5, cpu=cpu),
        ]
        demand = block[0].demand_vector(topo.resources)
        machines = np.array([4, 2, 2, 2], dtype=np.int64)  # 2 overcommits
        with pytest.raises(ValueError, match="overcommit"):
            state.deploy_block(block, machines, demand)
        assert state.available.tobytes() == before.tobytes()
        assert not any(c.container_id in state.assignment for c in block)

    def test_monotonic_guard_catches_mid_block_overcommit(
        self, topo, constraints
    ):
        """Two placements that individually fit but jointly overcommit
        one machine must be rejected — the end-state guard is exact
        because ``available`` only decreases within a block."""
        state, _ = fresh_pair(topo, constraints)
        room = float(state.available[5, 0])
        cpu = room * 0.6  # one fits, two do not
        block = [container(30, app=8, cpu=cpu), container(31, app=8, cpu=cpu)]
        demand = block[0].demand_vector(topo.resources)
        with pytest.raises(ValueError, match="overcommit"):
            state.deploy_block(block, np.array([5, 5], dtype=np.int64), demand)
        assert 30 not in state.assignment and 31 not in state.assignment


class TestTouchBlock:
    def test_matches_scalar_touch_sequence(self, topo, constraints):
        a, b = fresh_pair(topo, constraints)
        ids = [3, 3, 0, 7]
        a.touch_block(np.asarray(ids, dtype=np.int64))
        for m in ids:
            b.touch(m)
        assert a.version == b.version
        assert a.dirty_log == b.dirty_log

    def test_block_append_compacts_like_scalar(self, topo, constraints):
        state = ClusterState(topo, constraints)
        limit = state._log_limit
        state.touch_block(np.zeros(limit + 10, dtype=np.int64))
        # The log compacted (dropped its oldest half) but the version
        # kept counting every touch.
        assert state.version == limit + 10
        assert len(state.dirty_log) <= limit
        # Consumers older than the compaction watermark get the
        # degrade-to-recompute signal, never a partial slice.
        assert state.dirty_since(0) is None
