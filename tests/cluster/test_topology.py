"""Unit tests for cluster topology."""

import numpy as np
import pytest

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import ClusterSpec, ClusterTopology, build_cluster


class TestGrouping:
    def test_rack_assignment_is_contiguous(self):
        topo = build_cluster(100, machines_per_rack=40)
        assert topo.n_racks == 3
        assert topo.rack_of[0] == 0
        assert topo.rack_of[39] == 0
        assert topo.rack_of[40] == 1
        assert topo.rack_of[99] == 2

    def test_cluster_assignment_groups_racks(self):
        topo = build_cluster(100, machines_per_rack=10, racks_per_cluster=5)
        assert topo.n_racks == 10
        assert topo.n_clusters == 2
        assert topo.cluster_of[49] == 0
        assert topo.cluster_of[50] == 1

    def test_full_scale_shape(self):
        """The paper's 10k-machine cluster: 250 racks, 4 sub-clusters."""
        topo = build_cluster(10_000, machines_per_rack=40, racks_per_cluster=63)
        assert topo.n_racks == 250
        assert topo.n_clusters == 4

    def test_machines_in_rack_roundtrip(self):
        topo = build_cluster(95, machines_per_rack=40)
        for rack in range(topo.n_racks):
            for m in topo.machines_in_rack(rack):
                assert topo.rack_of[m] == rack
        # Partial last rack.
        assert topo.machines_in_rack(2).tolist() == list(range(80, 95))

    def test_racks_in_cluster_roundtrip(self):
        topo = build_cluster(400, machines_per_rack=10, racks_per_cluster=7)
        seen = []
        for g in range(topo.n_clusters):
            seen.extend(topo.racks_in_cluster(g).tolist())
        assert seen == list(range(topo.n_racks))

    def test_capacity_matrix_shape_and_values(self):
        topo = build_cluster(5, machine=MachineSpec(cpu=8, mem_gb=24))
        assert topo.capacity.shape == (5, 2)
        assert (topo.capacity == np.array([8.0, 24.0])).all()


class TestValidation:
    def test_rejects_nonpositive_machines(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_machines=0)

    def test_rejects_nonpositive_rack_width(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_machines=4, machines_per_rack=0)

    def test_rejects_bad_rack_index(self):
        topo = build_cluster(10)
        with pytest.raises(IndexError):
            topo.machines_in_rack(5)

    def test_rejects_bad_cluster_index(self):
        topo = build_cluster(10)
        with pytest.raises(IndexError):
            topo.racks_in_cluster(99)

    def test_accessors(self):
        topo = build_cluster(6)
        assert topo.n_machines == 6
        assert topo.n_dims == 2
        assert topo.resources == ("cpu", "mem_gb")
