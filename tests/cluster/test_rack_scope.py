"""Rack-scoped within-app anti-affinity tests.

The flow network's rack layer (``R`` vertices) models the coarser fault
domain; rack-scoped spreading is the Kubernetes ``topologyKey`` analog
and our Section-VII-adjacent extension.
"""

import pytest

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    GoKubeScheduler,
    build_cluster,
)
from repro.cluster.constraints import AntiAffinityRule
from repro.cluster.container import containers_of
from repro.core import FlowPathSearch
from repro.core.blacklist import BlacklistFunction


def rack_app(n=3, cpu=4.0):
    return Application(
        app_id=0, n_containers=n, cpu=cpu, mem_gb=cpu * 2,
        anti_affinity_within=True, anti_affinity_scope="rack",
    )


def topo_2x4():
    """Two racks of four machines."""
    return build_cluster(8, machines_per_rack=4, racks_per_cluster=1)


class TestConstraintSet:
    def test_scope_recorded(self):
        cs = ConstraintSet.from_applications([rack_app()])
        assert cs.has_within(0)
        assert cs.within_scope(0) == "rack"

    def test_default_scope_is_machine(self):
        app = Application(0, 2, 1.0, 2.0, anti_affinity_within=True)
        cs = ConstraintSet.from_applications([app])
        assert cs.within_scope(0) == "machine"

    def test_bad_scope_rejected_on_rule(self):
        cs = ConstraintSet()
        with pytest.raises(ValueError, match="scope"):
            cs.add_rule(AntiAffinityRule(0, 0), scope="datacenter")

    def test_bad_scope_rejected_on_application(self):
        with pytest.raises(ValueError, match="anti_affinity_scope"):
            Application(0, 2, 1.0, 2.0, anti_affinity_scope="zone")


class TestStateEnforcement:
    def test_forbidden_mask_covers_whole_rack(self):
        apps = [rack_app()]
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        state.deploy(containers_of(apps)[0], 1)  # rack 0
        mask = state.forbidden_mask(0)
        assert mask[:4].all()  # all of rack 0
        assert not mask[4:].any()  # rack 1 still open

    def test_would_violate_on_rack_mate(self):
        apps = [rack_app()]
        cs = containers_of(apps)
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        state.deploy(cs[0], 1)
        assert state.would_violate(cs[1], 2)  # same rack, other machine
        assert not state.would_violate(cs[1], 5)

    def test_deploy_rejects_rack_mate(self):
        apps = [rack_app()]
        cs = containers_of(apps)
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        state.deploy(cs[0], 1)
        with pytest.raises(ValueError, match="anti-affinity"):
            state.deploy(cs[1], 3)

    def test_violations_counted_per_rack(self):
        apps = [rack_app()]
        cs = containers_of(apps)
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        state.deploy(cs[0], 1)
        state.deploy(cs[1], 3, force=True)  # same rack -> 2 violations
        assert state.anti_affinity_violations() == 2

    def test_blacklist_function_rack_aware(self):
        apps = [rack_app()]
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        state.deploy(containers_of(apps)[0], 1)
        bf = BlacklistFunction(state)
        assert not bf.admits(0, 3)  # same rack
        assert bf.admits(0, 6)  # other rack


class TestSchedulers:
    @pytest.mark.parametrize(
        "factory", [AladdinScheduler, GoKubeScheduler, FlowPathSearch]
    )
    def test_replicas_land_on_distinct_racks(self, factory):
        apps = [rack_app(n=2)]
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        result = factory().schedule(containers_of(apps), state)
        assert result.n_undeployed == 0
        racks = {
            int(state.topology.rack_of[m]) for m in result.placements.values()
        }
        assert len(racks) == 2
        assert state.anti_affinity_violations() == 0

    def test_undeployed_when_racks_exhausted(self):
        apps = [rack_app(n=3)]  # three replicas, two racks
        state = ClusterState(topo_2x4(), ConstraintSet.from_applications(apps))
        result = AladdinScheduler().schedule(containers_of(apps), state)
        assert result.n_deployed == 2
        assert result.n_undeployed == 1

    def test_roundtrip_preserves_scope(self, tmp_path):
        from repro.trace import load_trace, save_trace
        from repro.trace.schema import Trace, TraceConfig

        trace = Trace(config=TraceConfig(scale=0.01), applications=[rack_app()])
        save_trace(trace, tmp_path / "t")
        loaded = load_trace(tmp_path / "t")
        assert loaded.applications[0].anti_affinity_scope == "rack"
        assert loaded.constraints.within_scope(0) == "rack"
