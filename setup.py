"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs are unavailable; this shim enables the legacy
``pip install -e . --no-use-pep517`` path.  Metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
