"""Simulated Kubernetes object model and API server.

The paper's evaluation stubs out RPCs and task execution (Section V.A);
this module is that stub made explicit: Pods, Nodes and Bindings with a
watchable in-memory API server, enough surface for the EHC/MA/RE
pipeline to operate exactly as Fig. 6 describes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable


class PodPhase(enum.Enum):
    """Subset of the Kubernetes pod life-cycle relevant to scheduling."""

    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    RUNNING = "Running"
    FAILED = "Failed"


@dataclass
class Pod:
    """A Kubernetes pod requesting one container's worth of resources.

    ``app`` carries the LLA identity; ``anti_affinity`` lists app labels
    this pod must not share a node with (within-app anti-affinity is
    expressed by listing the pod's own app label); ``priority`` follows
    the PriorityClass model.
    """

    name: str
    app: str
    cpu: float
    mem_gb: float
    priority: int = 0
    anti_affinity: tuple[str, ...] = ()
    phase: PodPhase = PodPhase.PENDING
    node_name: str | None = None


@dataclass
class Node:
    """A Kubernetes node with allocatable resources."""

    name: str
    cpu: float
    mem_gb: float
    labels: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Binding:
    """The scheduling decision object (pod → node)."""

    pod_name: str
    node_name: str


@dataclass(frozen=True)
class WatchEvent:
    """One API-server watch event."""

    kind: str  # "ADDED" | "MODIFIED" | "DELETED"
    obj: object


class KubeApiServer:
    """In-memory API server with list/watch and binding semantics."""

    def __init__(self) -> None:
        self._pods: dict[str, Pod] = {}
        self._nodes: dict[str, Node] = {}
        self._watchers: list[Callable[[WatchEvent], None]] = []
        self._revision = itertools.count(1)
        self.bindings: list[Binding] = []

    # -- registration ---------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ValueError(f"node {node.name} already exists")
        self._nodes[node.name] = node
        self._notify(WatchEvent("ADDED", node))

    def create_pod(self, pod: Pod) -> None:
        if pod.name in self._pods:
            raise ValueError(f"pod {pod.name} already exists")
        self._pods[pod.name] = pod
        self._notify(WatchEvent("ADDED", pod))

    def delete_pod(self, pod_name: str) -> Pod:
        pod = self._pods.pop(pod_name)
        self._notify(WatchEvent("DELETED", pod))
        return pod

    # -- scheduling -----------------------------------------------------
    def bind(self, binding: Binding) -> None:
        """Apply a scheduler decision: pod moves to its node."""
        pod = self._pods[binding.pod_name]
        if binding.node_name not in self._nodes:
            raise KeyError(f"unknown node {binding.node_name}")
        if pod.phase not in (PodPhase.PENDING,):
            raise ValueError(
                f"pod {pod.name} is {pod.phase.value}, cannot bind"
            )
        pod.node_name = binding.node_name
        pod.phase = PodPhase.SCHEDULED
        self.bindings.append(binding)
        self._notify(WatchEvent("MODIFIED", pod))

    def fail_pod(self, pod_name: str) -> None:
        pod = self._pods[pod_name]
        pod.phase = PodPhase.FAILED
        self._notify(WatchEvent("MODIFIED", pod))

    # -- list/watch -------------------------------------------------------
    def pods(self, phase: PodPhase | None = None) -> list[Pod]:
        out = list(self._pods.values())
        if phase is not None:
            out = [p for p in out if p.phase is phase]
        return out

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    def watch(self, callback: Callable[[WatchEvent], None]) -> None:
        """Register a watcher; it receives every subsequent event."""
        self._watchers.append(callback)

    def _notify(self, event: WatchEvent) -> None:
        for cb in self._watchers:
            cb(event)
