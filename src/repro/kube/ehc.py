"""EHC — the events handling center (Section IV.C).

"EHC receives all kinds of changes in the LLAs' life-cycles and
resources.  Then, it forwards pre-processed events to MA."

The EHC subscribes to the API server's watch stream, coalesces the raw
events into scheduler-relevant batches (pending pods grouped by
application, node inventory changes) and hands them to the model
adaptor on :meth:`drain`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kube.api import KubeApiServer, Node, Pod, PodPhase, WatchEvent


class EventsHandlingCenter:
    """Watches the API server and batches scheduler-relevant changes."""

    def __init__(self, api: KubeApiServer) -> None:
        self.api = api
        self._pending: "OrderedDict[str, Pod]" = OrderedDict()
        self._new_nodes: list[Node] = []
        api.watch(self._on_event)
        # Pick up anything that existed before we started watching.
        for node in api.nodes():
            self._new_nodes.append(node)
        for pod in api.pods(PodPhase.PENDING):
            self._pending[pod.name] = pod

    # ------------------------------------------------------------------
    def _on_event(self, event: WatchEvent) -> None:
        obj = event.obj
        if isinstance(obj, Node):
            if event.kind == "ADDED":
                self._new_nodes.append(obj)
            return
        if not isinstance(obj, Pod):
            return
        if event.kind == "ADDED" and obj.phase is PodPhase.PENDING:
            self._pending[obj.name] = obj
        elif event.kind in ("MODIFIED", "DELETED"):
            if obj.phase is not PodPhase.PENDING or event.kind == "DELETED":
                self._pending.pop(obj.name, None)

    # ------------------------------------------------------------------
    def drain(self) -> tuple[list[Pod], list[Node]]:
        """Return and clear the pre-processed batches.

        Pods come out grouped by application (containers of one LLA are
        submitted together, Section II.A) while preserving arrival
        order between applications.
        """
        by_app: "OrderedDict[str, list[Pod]]" = OrderedDict()
        for pod in self._pending.values():
            by_app.setdefault(pod.app, []).append(pod)
        pods = [p for group in by_app.values() for p in group]
        nodes = self._new_nodes
        self._pending = OrderedDict()
        self._new_nodes = []
        return pods, nodes

    @property
    def n_pending(self) -> int:
        return len(self._pending)
