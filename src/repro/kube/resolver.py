"""RE — the resolvers, plus the end-to-end scheduling loop (Fig. 6).

"RE integrates Aladdin to map containers to resources."  The binding
resolver turns the scheduler's placement decisions into API-server
bindings (and failure marks); :class:`SchedulingLoop` wires
EHC → MA → scheduler → RE into the co-design pipeline of Fig. 6.
"""

from __future__ import annotations

from repro.base import ScheduleResult, Scheduler
from repro.core.scheduler import AladdinScheduler
from repro.kube.adaptor import ModelAdaptor
from repro.kube.api import Binding, KubeApiServer
from repro.kube.ehc import EventsHandlingCenter


class BindingResolver:
    """Maps scheduler placements back to API-server bindings."""

    def __init__(self, api: KubeApiServer, adaptor: ModelAdaptor) -> None:
        self.api = api
        self.adaptor = adaptor

    def apply(self, result: ScheduleResult) -> list[Binding]:
        """Bind every placement; mark undeployed pods failed."""
        bindings: list[Binding] = []
        for cid, machine_id in sorted(result.placements.items()):
            binding = Binding(
                pod_name=self.adaptor.pod_name(cid),
                node_name=self.adaptor.node_name(machine_id),
            )
            self.api.bind(binding)
            bindings.append(binding)
        for cid in result.undeployed:
            self.api.fail_pod(self.adaptor.pod_name(cid))
        return bindings


class SchedulingLoop:
    """The full EHC → MA → scheduler → RE pipeline of Fig. 6."""

    def __init__(
        self, api: KubeApiServer, scheduler: Scheduler | None = None
    ) -> None:
        self.api = api
        self.scheduler = scheduler if scheduler is not None else AladdinScheduler()
        self.ehc = EventsHandlingCenter(api)
        self.adaptor = ModelAdaptor()
        self.resolver = BindingResolver(api, self.adaptor)

    def run_once(self) -> ScheduleResult:
        """Drain pending events, schedule them, resolve bindings."""
        pods, nodes = self.ehc.drain()
        self.adaptor.add_nodes(nodes)
        containers = self.adaptor.to_containers(pods)
        state = self.adaptor.state()
        result = self.scheduler.schedule(containers, state)
        self.resolver.apply(result)
        return result
