"""Kubernetes co-design layer (Section IV.C, Fig. 6).

The paper integrates Aladdin with Kubernetes 1.11 through three
components; this package reproduces that architecture against a
simulated API server:

* **EHC** (:mod:`~repro.kube.ehc`) — the events handling center:
  receives life-cycle and resource change events, pre-processes them
  and forwards them to the model adaptor.
* **MA** (:mod:`~repro.kube.adaptor`) — the model adaptor: decouples
  Kubernetes objects (Pods, Nodes) from the scheduler's model
  (containers, machines) by translating between the two.
* **RE** (:mod:`~repro.kube.resolver`) — the resolvers: map the
  scheduler's placement decisions back to API bindings.

:mod:`~repro.kube.api` provides the simulated Kubernetes object model
(Pod / Node / Binding) and a watchable API-server stand-in.
"""

from repro.kube.api import Binding, KubeApiServer, Node, Pod, PodPhase
from repro.kube.ehc import EventsHandlingCenter
from repro.kube.adaptor import ModelAdaptor
from repro.kube.resolver import BindingResolver, SchedulingLoop

__all__ = [
    "Binding",
    "KubeApiServer",
    "Node",
    "Pod",
    "PodPhase",
    "EventsHandlingCenter",
    "ModelAdaptor",
    "BindingResolver",
    "SchedulingLoop",
]
