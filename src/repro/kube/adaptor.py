"""MA — the model adaptor (Section IV.C).

"MA decouples Kubernetes objects from their scheduling implementation
by delegating the watching and binding APIs."

The adaptor owns the translation between the API-server world (Pods,
Nodes, app labels) and the scheduler world (Containers, dense app ids,
a :class:`~repro.cluster.state.ClusterState`).  It keeps the mapping
stable across scheduling rounds so migrations and evictions decided on
the model side can always be resolved back to concrete pods.
"""

from __future__ import annotations

from repro.cluster.constraints import AntiAffinityRule, ConstraintSet
from repro.cluster.container import Container
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.kube.api import Node, Pod


class ModelAdaptor:
    """Translates Pods/Nodes into the scheduler's container/cluster model."""

    def __init__(self) -> None:
        self._app_ids: dict[str, int] = {}
        self._container_ids: dict[str, int] = {}  # pod name -> container id
        self._pod_names: dict[int, str] = {}  # container id -> pod name
        self._nodes: list[Node] = []
        self._node_index: dict[str, int] = {}
        self._constraints = ConstraintSet()
        self._state: ClusterState | None = None

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_nodes(self, nodes: list[Node]) -> None:
        """Register nodes; must happen before the first state build."""
        if self._state is not None and nodes:
            raise RuntimeError(
                "cluster state already built; node hot-add is not modelled"
            )
        for node in nodes:
            if node.name in self._node_index:
                raise ValueError(f"node {node.name} already registered")
            self._node_index[node.name] = len(self._nodes)
            self._nodes.append(node)

    def state(self) -> ClusterState:
        """The scheduler-side cluster state (built on first use).

        Heterogeneous node shapes — the paper's stated future work
        (Section VII) — are supported: mixed capacities become a
        heterogeneous topology.
        """
        if self._state is None:
            if not self._nodes:
                raise RuntimeError("no nodes registered")
            shapes = {(n.cpu, n.mem_gb) for n in self._nodes}
            if len(shapes) == 1:
                first = self._nodes[0]
                topo = build_cluster(
                    len(self._nodes),
                    machine=MachineSpec(cpu=first.cpu, mem_gb=first.mem_gb),
                )
            else:
                from repro.cluster.topology import ClusterTopology

                import numpy as np

                capacity = np.array(
                    [[n.cpu, n.mem_gb] for n in self._nodes], dtype=np.float64
                )
                from repro.cluster.topology import ClusterSpec

                spec = ClusterSpec(
                    n_machines=len(self._nodes),
                    machine=MachineSpec(
                        cpu=float(capacity[:, 0].max()),
                        mem_gb=float(capacity[:, 1].max()),
                    ),
                )
                topo = ClusterTopology(spec, capacity=capacity)
            self._state = ClusterState(topo, self._constraints)
        return self._state

    def node_name(self, machine_id: int) -> str:
        return self._nodes[machine_id].name

    # ------------------------------------------------------------------
    # pods
    # ------------------------------------------------------------------
    def to_containers(self, pods: list[Pod]) -> list[Container]:
        """Translate pods to containers, registering constraints."""
        out: list[Container] = []
        for pod in pods:
            app_id = self._app_id(pod.app)
            for other_label in pod.anti_affinity:
                other_id = self._app_id(other_label)
                self._constraints.add_rule(AntiAffinityRule(app_id, other_id))
            cid = self._container_ids.get(pod.name)
            if cid is None:
                cid = len(self._container_ids)
                self._container_ids[pod.name] = cid
                self._pod_names[cid] = pod.name
            out.append(
                Container(
                    container_id=cid,
                    app_id=app_id,
                    instance=cid,
                    cpu=pod.cpu,
                    mem_gb=pod.mem_gb,
                    priority=pod.priority,
                )
            )
        return out

    def pod_name(self, container_id: int) -> str:
        return self._pod_names[container_id]

    def _app_id(self, label: str) -> int:
        app_id = self._app_ids.get(label)
        if app_id is None:
            app_id = len(self._app_ids)
            self._app_ids[label] = app_id
        return app_id
