"""Cluster substrate: machines, topology, containers, constraints and state.

This package models the shared production cluster that every scheduler in
the reproduction places containers onto.  It mirrors the entities of the
paper's Section II/III:

* :class:`~repro.cluster.machine.MachineSpec` — a homogeneous machine
  (the Alibaba trace uses 32 CPU / 64 GB machines).
* :class:`~repro.cluster.topology.ClusterTopology` — machines grouped into
  racks and (sub-)clusters, matching the ``G``/``R`` vertex layers of
  Aladdin's flow network (Fig. 4).
* :class:`~repro.cluster.container.Container` /
  :class:`~repro.cluster.container.Application` — long-lived applications
  (LLAs) and their isomorphic containers.
* :class:`~repro.cluster.constraints.ConstraintSet` — anti-affinity within
  and across applications plus priority classes.
* :class:`~repro.cluster.state.ClusterState` — the vectorised mutable state
  (available resources, deployments, per-application machine sets) shared
  by all schedulers.
"""

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import (
    ClusterSpec,
    ClusterTopology,
    build_cluster,
    build_heterogeneous_cluster,
)
from repro.cluster.container import Application, Container, containers_of
from repro.cluster.constraints import (
    AntiAffinityRule,
    ConstraintSet,
    PRIORITY_CLASSES,
)
from repro.cluster.state import ClusterState
from repro.cluster.events import Event, EventKind, EventLog

__all__ = [
    "MachineSpec",
    "ClusterSpec",
    "ClusterTopology",
    "build_cluster",
    "build_heterogeneous_cluster",
    "Application",
    "Container",
    "containers_of",
    "AntiAffinityRule",
    "ConstraintSet",
    "PRIORITY_CLASSES",
    "ClusterState",
    "Event",
    "EventKind",
    "EventLog",
]
