"""Warm container pools with interchangeable keep-alive policies.

Serverless platforms keep finished containers resident for a while so
a re-invocation of the same function skips the cold start.  The pool
here models exactly that: a departed container can be *stashed*
(parked on its machine, still holding capacity) instead of evicted,
and a later arrival with the same pool key can *claim* it — reusing
the warm slot and paying no cold-start penalty.

All three keep-alive policies from the serverless literature sit
behind one eviction interface, ``evict_before(t)``:

``fixed``
    Classic fixed keep-alive: every stashed container lives exactly
    ``keep_alive_ticks`` from its stash time.
``ttl``
    Sliding TTL: a warm *hit* on a key refreshes the deadline of that
    key's remaining entries — hot functions stay warm indefinitely,
    cold ones age out.
``lru``
    Fixed deadline plus a hard capacity bound; when the pool is full
    the least-recently-stashed entry is evicted to make room.

The implementation is a single min-heap keyed by eviction deadline
with lazy deletion (claimed or discarded entries stay in the heap and
are skipped when popped), so ``evict_before`` is O(expired · log n)
regardless of policy.  Claims are LIFO (newest stash first) — the
standard warm-start order, since the most recently used sandbox is
the most likely to still be cache-hot.

Determinism: every structure iterates in insertion order (dicts) or
deadline order (heap, tie-broken by a monotonic sequence number), so
a run's pool decisions are bit-reproducible and survive
checkpoint/restore.
"""

from __future__ import annotations

import heapq
from typing import Callable

#: recognised keep-alive policies
POLICIES = ("fixed", "ttl", "lru")


class WarmPool:
    """Pool of parked containers, keyed by function identity."""

    def __init__(
        self,
        policy: str = "fixed",
        keep_alive_ticks: int = 4,
        capacity: int = 256,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown keep-alive policy {policy!r}; pick from {POLICIES}"
            )
        if keep_alive_ticks < 1:
            raise ValueError("keep_alive_ticks must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.policy = policy
        self.keep_alive_ticks = keep_alive_ticks
        self.capacity = capacity
        #: (evict_at, seq, cid) min-heap; stale entries skipped lazily
        self._heap: list[tuple[int, int, int]] = []
        #: cid -> (key, machine_id, stash_seq) for live entries
        self._entries: dict[int, tuple[object, int, int]] = {}
        #: key -> {cid: None} in stash order (dict used as ordered set)
        self._by_key: dict[object, dict[int, None]] = {}
        #: ttl only: key -> refreshed deadline from the last hit
        self._refresh: dict[object, int] = {}
        self._seq = 0
        # counters (fingerprint-relevant telemetry)
        self.stashed = 0
        self.hits = 0
        self.expired = 0
        self.overflowed = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def stash(self, key, cid: int, machine_id: int, tick: int) -> list[int]:
        """Park ``cid`` on its machine under ``key``.

        Returns container ids evicted to make room (LRU policy only;
        the caller must evict them from cluster state).
        """
        victims: list[int] = []
        if self.policy == "lru":
            while len(self._entries) >= self.capacity:
                victim = self._oldest()
                if victim is None:
                    break
                self._remove(victim)
                self.overflowed += 1
                victims.append(victim)
        elif len(self._entries) >= self.capacity:
            # fixed/ttl: a full pool simply refuses the stash; caller
            # evicts the container as it would without a pool.
            self.overflowed += 1
            victims.append(cid)
            return victims
        deadline = tick + self.keep_alive_ticks
        self._seq += 1
        self._entries[cid] = (key, machine_id, self._seq)
        self._by_key.setdefault(key, {})[cid] = None
        heapq.heappush(self._heap, (deadline, self._seq, cid))
        self.stashed += 1
        return victims

    def claim(
        self,
        key,
        tick: int,
        accept: Callable[[int, int], bool] | None = None,
    ) -> tuple[int, int] | None:
        """Take the newest pooled container for ``key``.

        ``accept(cid, machine_id)`` can veto candidates (e.g. a
        constraint check); the newest accepted entry is removed and
        returned as ``(cid, machine_id)``.
        """
        bucket = self._by_key.get(key)
        if not bucket:
            return None
        for cid in reversed(list(bucket)):
            _, machine_id, _ = self._entries[cid]
            if accept is not None and not accept(cid, machine_id):
                continue
            self._remove(cid)
            self.hits += 1
            if self.policy == "ttl":
                # A hit keeps the whole key warm: entries that would
                # expire before the refreshed deadline get re-pushed
                # when popped in evict_before.
                self._refresh[key] = tick + self.keep_alive_ticks
            return cid, machine_id
        return None

    def evict_before(self, tick: int) -> list[int]:
        """Pop every entry whose deadline is ``< tick``.

        Returns expired container ids in deadline order; the caller
        evicts them from cluster state.  This is the single interface
        all policies share — policy differences live entirely in how
        deadlines are assigned and refreshed.
        """
        out: list[int] = []
        while self._heap and self._heap[0][0] < tick:
            deadline, seq, cid = heapq.heappop(self._heap)
            entry = self._entries.get(cid)
            if entry is None or entry[2] != seq:
                continue  # lazily deleted (claimed/discarded/re-pushed)
            key = entry[0]
            refreshed = self._refresh.get(key, 0) if self.policy == "ttl" else 0
            if refreshed > deadline:
                # Key was hit since this entry was pushed: extend it.
                self._seq += 1
                self._entries[cid] = (key, entry[1], self._seq)
                heapq.heappush(self._heap, (refreshed, self._seq, cid))
                continue
            self._remove(cid)
            self.expired += 1
            out.append(cid)
        return out

    # ------------------------------------------------------------------
    def pooled_on(self, machine_id: int) -> list[int]:
        """Container ids currently parked on ``machine_id``."""
        return [
            cid for cid, (_, m, _) in self._entries.items() if m == machine_id
        ]

    def by_machine(self) -> dict[int, list[int]]:
        """machine_id -> pooled cids, insertion-ordered."""
        out: dict[int, list[int]] = {}
        for cid, (_, m, _) in self._entries.items():
            out.setdefault(m, []).append(cid)
        return out

    def discard(self, cid: int) -> bool:
        """Drop ``cid`` without counting it as expired (e.g. its
        machine was reclaimed by the drain planner or failed)."""
        if cid not in self._entries:
            return False
        self._remove(cid)
        return True

    def _oldest(self) -> int | None:
        for cid in self._entries:
            return cid
        return None

    def _remove(self, cid: int) -> None:
        key, _, _ = self._entries.pop(cid)
        bucket = self._by_key.get(key)
        if bucket is not None:
            bucket.pop(cid, None)
            if not bucket:
                del self._by_key[key]

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        return {
            "policy": self.policy,
            "keep_alive_ticks": self.keep_alive_ticks,
            "capacity": self.capacity,
            # Live heap entries only (lazy-deleted ones are noise);
            # keys are JSON-encoded as lists by the caller's serializer
            # and restored verbatim below.
            "heap": sorted(
                (d, s, c) for d, s, c in self._heap
                if self._entries.get(c, (None, None, -1))[2] == s
            ),
            "entries": [
                [cid, list(key) if isinstance(key, tuple) else key, m, s]
                for cid, (key, m, s) in self._entries.items()
            ],
            "refresh": [
                [list(key) if isinstance(key, tuple) else key, t]
                for key, t in self._refresh.items()
            ],
            "seq": self._seq,
            "stashed": self.stashed,
            "hits": self.hits,
            "expired": self.expired,
            "overflowed": self.overflowed,
        }

    def restore(self, payload: dict) -> None:
        def dekey(key):
            return tuple(key) if isinstance(key, list) else key

        self._heap = [tuple(item) for item in payload["heap"]]
        heapq.heapify(self._heap)
        self._entries = {}
        self._by_key = {}
        for cid, key, m, s in payload["entries"]:
            key = dekey(key)
            self._entries[int(cid)] = (key, int(m), int(s))
            self._by_key.setdefault(key, {})[int(cid)] = None
        self._refresh = {dekey(k): int(t) for k, t in payload["refresh"]}
        self._seq = int(payload["seq"])
        self.stashed = int(payload["stashed"])
        self.hits = int(payload["hits"])
        self.expired = int(payload["expired"])
        self.overflowed = int(payload["overflowed"])
