"""Placement constraints: anti-affinity and priority.

The paper's two LLA constraint families (Section II.A):

* **Anti-affinity within an application** — containers of one LLA must run
  on different machines (fault tolerance).
* **Anti-affinity across applications** — two LLAs must not share a
  machine (performance interference).  The paper writes such a rule as
  ``p = {T1, T2, 0}`` (Fig. 4); the trailing ``0`` marks it mandatory.
* **Priority** — a high-priority container may preempt lower-priority
  ones on placement conflicts, never the reverse.

:class:`ConstraintSet` is the queryable index the schedulers share.  It is
deliberately symmetric: if ``a`` conflicts with ``b`` then ``b`` conflicts
with ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.container import Application

#: Priority classes used by the reproduction's traces, lowest first.
PRIORITY_CLASSES: tuple[int, ...] = (0, 1, 2, 3)


@dataclass(frozen=True)
class AntiAffinityRule:
    """One anti-affinity rule in the paper's ``{a, b, hardness}`` form.

    ``a == b`` encodes anti-affinity *within* application ``a``.
    ``hardness == 0`` (the only value the paper evaluates) marks the rule
    mandatory; soft rules are kept for API completeness.
    """

    app_a: int
    app_b: int
    hardness: int = 0

    def __post_init__(self) -> None:
        if self.app_a < 0 or self.app_b < 0:
            raise ValueError("application ids must be non-negative")
        if self.hardness not in (0, 1):
            raise ValueError(f"hardness must be 0 (hard) or 1 (soft), got {self.hardness}")

    @property
    def within(self) -> bool:
        return self.app_a == self.app_b

    def normalized(self) -> "AntiAffinityRule":
        """Return the rule with ``app_a <= app_b`` for canonical storage."""
        if self.app_a <= self.app_b:
            return self
        return AntiAffinityRule(self.app_b, self.app_a, self.hardness)


class ConstraintSet:
    """Queryable index over all constraints of a workload.

    Built either from explicit :class:`AntiAffinityRule` objects or from
    the per-application fields of :class:`~repro.cluster.container.Application`.

    Within-app anti-affinity carries a *scope*: ``"machine"`` (the
    paper's case — replicas on distinct machines) or ``"rack"``
    (replicas on distinct racks, the fault-domain the network's ``R``
    vertex layer models; Kubernetes calls this a ``topologyKey``).
    """

    def __init__(self, rules: list[AntiAffinityRule] | None = None) -> None:
        self._within: set[int] = set()
        self._within_scope: dict[int, str] = {}
        self._conflicts: dict[int, set[int]] = {}
        self._affinities: dict[int, set[int]] = {}
        for rule in rules or []:
            self.add_rule(rule)

    @classmethod
    def from_applications(cls, apps: list[Application]) -> "ConstraintSet":
        """Build the symmetric constraint index from application metadata."""
        cs = cls()
        for app in apps:
            if app.anti_affinity_within:
                cs.add_rule(
                    AntiAffinityRule(app.app_id, app.app_id),
                    scope=getattr(app, "anti_affinity_scope", "machine"),
                )
            for other in app.conflicts:
                cs.add_rule(AntiAffinityRule(app.app_id, other))
            for other in getattr(app, "affinities", ()):  # soft, one-way
                cs.add_affinity(app.app_id, other)
        return cs

    def add_affinity(self, app_id: int, other: int) -> None:
        """Register a soft co-location preference (one-way)."""
        if app_id == other:
            raise ValueError("an application is trivially affine to itself")
        if self.violates(app_id, other):
            raise ValueError(
                f"apps {app_id} and {other} are anti-affine; they cannot "
                "also prefer co-location"
            )
        self._affinities.setdefault(app_id, set()).add(other)

    def affinities_of(self, app_id: int) -> frozenset[int]:
        """Applications ``app_id`` prefers to share machines with."""
        return frozenset(self._affinities.get(app_id, ()))

    def add_rule(self, rule: AntiAffinityRule, scope: str = "machine") -> None:
        """Register one rule; cross-application rules are made symmetric."""
        if scope not in ("machine", "rack"):
            raise ValueError(f"scope must be 'machine' or 'rack', got {scope!r}")
        rule = rule.normalized()
        if rule.within:
            self._within.add(rule.app_a)
            self._within_scope[rule.app_a] = scope
        else:
            self._conflicts.setdefault(rule.app_a, set()).add(rule.app_b)
            self._conflicts.setdefault(rule.app_b, set()).add(rule.app_a)

    def has_within(self, app_id: int) -> bool:
        """True when containers of ``app_id`` must be on distinct machines
        (or distinct racks, per :meth:`within_scope`)."""
        return app_id in self._within

    def within_scope(self, app_id: int) -> str:
        """Spread domain of ``app_id``'s within-rule: machine or rack."""
        return self._within_scope.get(app_id, "machine")

    def has_conflicts(self, app_id: int) -> bool:
        """True when any cross-application rule names ``app_id``.

        Allocation-free membership test for hot paths;
        :meth:`conflicts_of` materialises the actual set.
        """
        return app_id in self._conflicts

    def conflicts_of(self, app_id: int) -> frozenset[int]:
        """Applications that must not share a machine with ``app_id``."""
        return frozenset(self._conflicts.get(app_id, ()))

    def conflicting_pairs(self) -> set[tuple[int, int]]:
        """All cross-application conflict pairs, canonically ordered."""
        pairs: set[tuple[int, int]] = set()
        for a, others in self._conflicts.items():
            for b in others:
                pairs.add((a, b) if a <= b else (b, a))
        return pairs

    def apps_with_anti_affinity(self) -> set[int]:
        """Every application touched by at least one anti-affinity rule."""
        touched = set(self._within)
        touched.update(self._conflicts)
        return touched

    def violates(self, app_a: int, app_b: int) -> bool:
        """True when co-locating containers of ``app_a`` and ``app_b``
        on one machine breaks a rule (including ``app_a == app_b``)."""
        if app_a == app_b:
            return app_a in self._within
        return app_b in self._conflicts.get(app_a, ())

    def __len__(self) -> int:
        return len(self._within) + len(self.conflicting_pairs())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConstraintSet(within={len(self._within)}, "
            f"cross_pairs={len(self.conflicting_pairs())})"
        )
