"""Cluster topology: machines grouped into racks and sub-clusters.

Aladdin's flow network introduces cluster vertices ``G`` and rack vertices
``R`` between applications and machines (Section III.A) to cut the edge
count from ``O(|T|·|N|)`` to ``O(|T| + |A|·|R| + |N|)``.  This module
provides the static grouping those vertex layers are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import MachineSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters describing a homogeneous cluster.

    Defaults approximate the paper's evaluation topology: racks of 40
    machines and sub-clusters of 2,500 machines, which at the full 10,000
    machine scale yields 250 racks and 4 sub-clusters.

    Parameters
    ----------
    n_machines:
        Total machine count.
    machine:
        Per-machine resource capacity.
    machines_per_rack:
        Rack width; the final rack may be partially filled.
    racks_per_cluster:
        Number of racks grouped into one sub-cluster vertex ``G``.
    """

    n_machines: int
    machine: MachineSpec = MachineSpec()
    machines_per_rack: int = 40
    racks_per_cluster: int = 63

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError(f"n_machines must be positive, got {self.n_machines}")
        if self.machines_per_rack <= 0:
            raise ValueError("machines_per_rack must be positive")
        if self.racks_per_cluster <= 0:
            raise ValueError("racks_per_cluster must be positive")


class ClusterTopology:
    """Static machine → rack → sub-cluster grouping.

    Machines, racks and sub-clusters are identified by dense integer ids
    so every lookup is a NumPy gather.

    The paper's evaluation cluster is homogeneous; heterogeneous
    capacities (its stated future work, Section VII) are supported by
    passing an explicit per-machine ``capacity`` matrix — every
    scheduler in the repository reads capacities through this matrix,
    so mixed machine shapes work throughout.

    Attributes
    ----------
    rack_of:
        ``int32`` array mapping machine id → rack id.
    cluster_of:
        ``int32`` array mapping machine id → sub-cluster id.
    capacity:
        ``(n_machines, n_dims)`` float array of per-machine capacity.
    """

    def __init__(
        self, spec: ClusterSpec, capacity: np.ndarray | None = None
    ) -> None:
        self.spec = spec
        n = spec.n_machines
        machine_ids = np.arange(n, dtype=np.int32)
        self.rack_of = machine_ids // spec.machines_per_rack
        self.cluster_of = self.rack_of // spec.racks_per_cluster
        self.n_racks = int(self.rack_of[-1]) + 1
        self.n_clusters = int(self.cluster_of[-1]) + 1
        if capacity is None:
            capacity = np.tile(spec.machine.capacity_vector(), (n, 1))
        else:
            capacity = np.asarray(capacity, dtype=np.float64)
            if capacity.shape != (n, spec.machine.n_dims):
                raise ValueError(
                    f"capacity shape {capacity.shape} does not match "
                    f"({n}, {spec.machine.n_dims})"
                )
            if (capacity <= 0).any():
                raise ValueError("per-machine capacities must be positive")
        self.capacity = capacity

    @property
    def is_homogeneous(self) -> bool:
        """True when every machine has the same capacity vector."""
        return bool((self.capacity == self.capacity[0]).all())

    @property
    def n_machines(self) -> int:
        return self.spec.n_machines

    @property
    def n_dims(self) -> int:
        return self.spec.machine.n_dims

    @property
    def resources(self) -> tuple[str, ...]:
        return self.spec.machine.resources

    def machines_in_rack(self, rack_id: int) -> np.ndarray:
        """Return machine ids that belong to ``rack_id``."""
        if not 0 <= rack_id < self.n_racks:
            raise IndexError(f"rack {rack_id} out of range [0, {self.n_racks})")
        lo = rack_id * self.spec.machines_per_rack
        hi = min(lo + self.spec.machines_per_rack, self.n_machines)
        return np.arange(lo, hi, dtype=np.int32)

    def racks_in_cluster(self, cluster_id: int) -> np.ndarray:
        """Return rack ids that belong to sub-cluster ``cluster_id``."""
        if not 0 <= cluster_id < self.n_clusters:
            raise IndexError(
                f"cluster {cluster_id} out of range [0, {self.n_clusters})"
            )
        lo = cluster_id * self.spec.racks_per_cluster
        hi = min(lo + self.spec.racks_per_cluster, self.n_racks)
        return np.arange(lo, hi, dtype=np.int32)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterTopology(n_machines={self.n_machines}, "
            f"n_racks={self.n_racks}, n_clusters={self.n_clusters})"
        )


def build_cluster(
    n_machines: int,
    machine: MachineSpec | None = None,
    machines_per_rack: int = 40,
    racks_per_cluster: int = 63,
) -> ClusterTopology:
    """Convenience constructor for a homogeneous cluster topology."""
    spec = ClusterSpec(
        n_machines=n_machines,
        machine=machine if machine is not None else MachineSpec(),
        machines_per_rack=machines_per_rack,
        racks_per_cluster=racks_per_cluster,
    )
    return ClusterTopology(spec)


def build_heterogeneous_cluster(
    groups: list[tuple[int, MachineSpec]],
    machines_per_rack: int = 40,
    racks_per_cluster: int = 63,
) -> ClusterTopology:
    """Cluster with mixed machine shapes (the paper's future work).

    ``groups`` is a list of ``(count, spec)`` pairs; machines are laid
    out group-by-group, so each rack tends to be shape-uniform, as real
    procurement generations are.  All groups must share the same
    resource-dimension tuple.

    >>> topo = build_heterogeneous_cluster([
    ...     (100, MachineSpec(cpu=32, mem_gb=64)),
    ...     (50, MachineSpec(cpu=96, mem_gb=384)),
    ... ])
    """
    if not groups:
        raise ValueError("at least one machine group is required")
    resources = groups[0][1].resources
    rows = []
    for count, spec in groups:
        if count <= 0:
            raise ValueError(f"group count must be positive, got {count}")
        if spec.resources != resources:
            raise ValueError(
                "all machine groups must share the same resource dimensions"
            )
        rows.append(np.tile(spec.capacity_vector(), (count, 1)))
    capacity = np.concatenate(rows, axis=0)
    spec = ClusterSpec(
        n_machines=capacity.shape[0],
        machine=groups[0][1],
        machines_per_rack=machines_per_rack,
        racks_per_cluster=racks_per_cluster,
    )
    return ClusterTopology(spec, capacity=capacity)
