"""Lifecycle events.

The paper's implementation (Section IV.C, Fig. 6) routes "all kinds of
changes in the LLAs' life-cycles and resources" through an events
handling center.  This module defines the event records; the EHC itself
lives in :mod:`repro.kube.ehc`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """Kinds of cluster life-cycle events."""

    SUBMIT = "submit"
    DEPLOY = "deploy"
    EVICT = "evict"
    MIGRATE = "migrate"
    FAIL = "fail"


@dataclass(frozen=True)
class Event:
    """One life-cycle event.

    ``source_machine`` is only set for :attr:`EventKind.MIGRATE` and
    holds the machine the container moved away from.
    """

    kind: EventKind
    time: int
    container_id: int
    machine_id: int | None = None
    source_machine: int | None = None


@dataclass
class EventLog:
    """Append-only event sequence with simple query helpers."""

    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
