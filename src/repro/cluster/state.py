"""Mutable, vectorised cluster state shared by all schedulers.

``ClusterState`` tracks, per machine, the remaining resource vector and
the deployed containers, plus the inverted index (application → machines
hosting it) that makes the paper's blacklist function (Equations 7–8)
cheap to evaluate: the blacklist of a machine is induced by the
applications already deployed on it, so the set of machines *forbidden*
for an application is the union of the machine sets of its conflicting
applications.

All hot paths are NumPy operations over dense machine ids; Python-level
dictionaries only appear per-deployment, never per-machine-scan.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Container
from repro.cluster.events import Event, EventKind, EventLog
from repro.cluster.topology import ClusterTopology

#: distinguishes state instances without relying on ``id()`` reuse —
#: cross-round caches key their entries on this uid.
_state_uids = itertools.count()

#: shared "nothing changed" answer of :meth:`ClusterState.dirty_array_since`
#: (callers treat it as read-only)
_NO_DIRTY = np.empty(0, dtype=np.int64)


class ClusterState:
    """Resource and deployment state of a cluster during scheduling.

    Parameters
    ----------
    topology:
        Static machine/rack/cluster layout and capacities.
    constraints:
        Anti-affinity index for the workload being scheduled.
    track_events:
        When true, every deploy/evict/migrate is appended to
        :attr:`events` (used by the Kubernetes co-design layer and by
        tests; off by default for speed).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        constraints: ConstraintSet | None = None,
        track_events: bool = False,
    ) -> None:
        self.topology = topology
        self.constraints = constraints if constraints is not None else ConstraintSet()
        n = topology.n_machines
        #: remaining resources, shape (n_machines, n_dims)
        self.available = topology.capacity.copy()
        #: number of containers deployed per machine
        self.container_count = np.zeros(n, dtype=np.int32)
        #: container id -> machine id
        self.assignment: dict[int, int] = {}
        #: container id -> Container (for eviction/migration bookkeeping)
        self._containers: dict[int, Container] = {}
        #: machine id -> deployed container ids (an insertion-ordered
        #: dict used as an ordered set; the values are always ``None``).
        #: Iteration order is the deployment order of the residents
        #: still present, which is deterministic for a given mutation
        #: history, stable between mutations of that machine — the
        #: rescue kernel's resident ledger caches per-machine summaries
        #: keyed to this enumeration order and rebuilds them whenever
        #: the dirty log reports the machine touched — and, unlike a
        #: ``set``'s, survives a pickle round-trip unchanged, which is
        #: what lets checkpoint/restore promise bit-identical resumed
        #: decisions.
        self.machine_containers: dict[int, dict[int, None]] = {}
        #: app id -> {machine id -> number of its containers there}
        self.app_machines: dict[int, dict[int, int]] = {}
        self.events: EventLog | None = EventLog() if track_events else None
        self._clock = 0
        #: stable identity for cross-round caches (survives ``id()`` reuse)
        self.state_uid = next(_state_uids)
        #: monotonically increasing mutation counter; every deploy,
        #: evict, migrate or external touch bumps it by one
        self.version = 0
        # Dirty log: machine id per mutation, indexed by version.  A
        # consumer that remembers the version it last synced at reads
        # ``dirty_since(v)`` to learn exactly which machines changed.
        # The log is compacted once it outgrows ``_log_limit``; consumers
        # older than the compaction base get ``None`` ("everything may
        # have changed") and must recompute fully.
        #
        # The log lives in a growable int64 buffer (``_log_buf`` holds
        # ``_log_len`` live entries) rather than a Python list: the hot
        # consumers dedup a *slice* of it on every sync, and slicing an
        # array is free where converting a list slice costs O(entries)
        # Python-object unboxing per query — under storm churn that
        # conversion, repeated per cache shape and index sync, was the
        # dominant cache-side cost.
        self._log_buf = np.empty(1024, dtype=np.int64)
        self._log_len = 0
        self._log_base = 0
        self._log_limit = max(4096, 16 * n)

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    def touch(self, machine_id: int) -> None:
        """Record an out-of-band mutation of ``machine_id``.

        Every mutation through :meth:`deploy`/:meth:`evict`/:meth:`migrate`
        is tracked automatically; callers that modify :attr:`available`
        directly (e.g. fault injection zeroing a machine's capacity) must
        call this so cross-round caches invalidate the machine.
        """
        self.version += 1
        if self._log_len == self._log_buf.size:
            self._grow_log(self._log_len + 1)
        self._log_buf[self._log_len] = machine_id
        self._log_len += 1
        if self._log_len > self._log_limit:
            self._compact_log()

    def touch_block(self, machine_ids) -> None:
        """Record one mutation per entry of ``machine_ids``, in order.

        Equivalent to calling :meth:`touch` per id — the version counter
        advances by ``len(machine_ids)`` and the log gains the same
        entries in the same order — but pays the append once per block.
        Compaction fires at most once, after the extend; the boundary can
        therefore differ from the scalar path's, which is safe because a
        consumer older than the base always recomputes fully.
        """
        ids = np.asarray(machine_ids, dtype=np.int64)
        k = int(ids.size)
        if k == 0:
            return
        self.version += k
        end = self._log_len + k
        if end > self._log_buf.size:
            self._grow_log(end)
        self._log_buf[self._log_len : end] = ids
        self._log_len = end
        if self._log_len > self._log_limit:
            self._compact_log()

    def _grow_log(self, needed: int) -> None:
        new = np.empty(max(needed, 2 * self._log_buf.size), dtype=np.int64)
        new[: self._log_len] = self._log_buf[: self._log_len]
        self._log_buf = new

    def _compact_log(self) -> None:
        # Drop the oldest half; consumers synced before the new base
        # fall back to a full recompute, never to stale verdicts.
        drop = self._log_len // 2
        keep = self._log_len - drop
        self._log_buf[:keep] = self._log_buf[drop : self._log_len]
        self._log_len = keep
        self._log_base += drop

    @property
    def dirty_log(self) -> list[int]:
        """The live dirty-log entries, oldest first (one machine id per
        version since :attr:`_log_base`).  Diagnostic/test accessor —
        hot paths use :meth:`dirty_array_since`."""
        return self._log_buf[: self._log_len].tolist()

    def dirty_since(self, version: int) -> set[int] | None:
        """Machines mutated after ``version``, or ``None`` when unknown.

        ``None`` means the log no longer reaches back to ``version``
        (compaction, or a version from another state instance): the
        caller must treat every machine as dirty.
        """
        if version >= self.version:
            return set()
        if version < self._log_base:
            return None
        return set(
            self._log_buf[version - self._log_base : self._log_len].tolist()
        )

    def dirty_array_since(self, version: int) -> np.ndarray | None:
        """Like :meth:`dirty_since`, as a deduplicated ascending array.

        The array form is what the hot-path consumers (the feasibility
        cache and the packed-first machine index) index with directly,
        skipping the Python-set round trip.  Callers must treat the
        result as read-only.
        """
        if version >= self.version:
            return _NO_DIRTY
        if version < self._log_base:
            return None
        raw = self._log_buf[version - self._log_base : self._log_len]
        n = self.topology.n_machines
        if raw.size > n:
            # Dense slice: a boolean scatter + flatnonzero dedups in
            # O(slice + n) — same ascending-unique result as np.unique
            # without the O(slice log slice) sort.
            flags = np.zeros(n, dtype=bool)
            flags[raw] = True
            return np.flatnonzero(flags)
        return np.unique(raw)

    def dirty_raw_since(self, version: int) -> np.ndarray | None:
        """Like :meth:`dirty_array_since`, without deduplication.

        The raw log slice in mutation order: a machine touched twice
        since ``version`` appears twice.  For consumers whose per-entry
        work is idempotent (the feasibility cache rewrites the same
        verdict), indexing with duplicates is cheaper than any dedup
        when the slice is short.  Callers must treat the result as
        read-only.
        """
        if version >= self.version:
            return _NO_DIRTY
        if version < self._log_base:
            return None
        return self._log_buf[version - self._log_base : self._log_len]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        return self.topology.n_machines

    def machines_hosting(self, app_id: int) -> dict[int, int]:
        """Machines currently hosting ``app_id`` (machine id → count)."""
        return self.app_machines.get(app_id, {})

    def forbidden_mask(self, app_id: int) -> np.ndarray:
        """Boolean mask of machines blacklisted for ``app_id``.

        This realises the nonlinear, set-based capacity function of
        Equations 7–8: machine ``N`` is forbidden for a container of
        application ``a`` when ``N`` already hosts a container of ``a``
        itself (anti-affinity within) or of any application conflicting
        with ``a`` (anti-affinity across).
        """
        mask = np.zeros(self.n_machines, dtype=bool)
        cs = self.constraints
        if cs.has_within(app_id):
            hosting = self.app_machines.get(app_id)
            if hosting:
                if cs.within_scope(app_id) == "rack":
                    # Rack-domain spreading: every machine in a rack
                    # already hosting the app is blacklisted.
                    racks = np.unique(self.topology.rack_of[list(hosting)])
                    mask[np.isin(self.topology.rack_of, racks)] = True
                else:
                    mask[list(hosting)] = True
        for other in cs.conflicts_of(app_id):
            hosting = self.app_machines.get(other)
            if hosting:
                mask[list(hosting)] = True
        return mask

    def feasible_mask(
        self,
        demand: np.ndarray,
        app_id: int | None = None,
        respect_anti_affinity: bool = True,
    ) -> np.ndarray:
        """Machines that can legally accept one container of ``demand``.

        A machine is feasible when its remaining resource vector
        dominates ``demand`` (Equation 6) and — if ``app_id`` is given
        and ``respect_anti_affinity`` — it is not blacklisted.
        """
        ok = (self.available >= demand).all(axis=1)
        if app_id is not None and respect_anti_affinity:
            ok &= ~self.forbidden_mask(app_id)
        return ok

    def would_violate(self, container: Container, machine_id: int) -> bool:
        """True if placing ``container`` on ``machine_id`` breaks an
        anti-affinity rule (resources are not checked here)."""
        cs = self.constraints
        for cid in self.machine_containers.get(machine_id, ()):
            other = self._containers[cid]
            if cs.violates(container.app_id, other.app_id):
                return True
        # Rack-scoped within-rules also forbid rack-mates.
        if (
            cs.has_within(container.app_id)
            and cs.within_scope(container.app_id) == "rack"
        ):
            rack = int(self.topology.rack_of[machine_id])
            for m in self.app_machines.get(container.app_id, ()):
                if int(self.topology.rack_of[m]) == rack:
                    return True
        return False

    def fits(self, demand: np.ndarray, machine_id: int) -> bool:
        """True when ``machine_id`` has room for ``demand``."""
        return bool((self.available[machine_id] >= demand).all())

    def affinity_mask(self, app_id: int) -> np.ndarray | None:
        """Machines hosting an application ``app_id`` is affine to.

        ``None`` when the app has no affinity preferences (the common
        case — callers skip the soft-scoring branch entirely).
        """
        affine = self.constraints.affinities_of(app_id)
        if not affine:
            return None
        mask = np.zeros(self.n_machines, dtype=bool)
        for other in affine:
            hosting = self.app_machines.get(other)
            if hosting:
                mask[list(hosting)] = True
        return mask

    def container(self, container_id: int) -> Container:
        """Return the deployed container with ``container_id``."""
        return self._containers[container_id]

    def deployed_containers(self, machine_id: int) -> list[Container]:
        """Containers currently deployed on ``machine_id``."""
        return [
            self._containers[cid]
            for cid in self.machine_containers.get(machine_id, ())
        ]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def deploy(
        self,
        container: Container,
        machine_id: int,
        demand: np.ndarray | None = None,
        force: bool = False,
    ) -> None:
        """Place ``container`` on ``machine_id`` and update all indices.

        ``force=True`` permits anti-affinity violations (some baseline
        schedulers knowingly place in violation — e.g. Medea with a
        non-zero violation weight); resource capacity is never allowed
        to go negative.
        """
        if container.container_id in self.assignment:
            raise ValueError(
                f"container {container.container_id} is already deployed on "
                f"machine {self.assignment[container.container_id]}"
            )
        if demand is None:
            demand = container.demand_vector(self.topology.resources)
        if not self.fits(demand, machine_id):
            raise ValueError(
                f"machine {machine_id} lacks resources for container "
                f"{container.container_id}: available="
                f"{self.available[machine_id]}, demand={demand}"
            )
        if not force and self.would_violate(container, machine_id):
            raise ValueError(
                f"placing container {container.container_id} "
                f"(app {container.app_id}) on machine {machine_id} violates "
                "an anti-affinity constraint (pass force=True to override)"
            )
        self.available[machine_id] -= demand
        self.container_count[machine_id] += 1
        self.assignment[container.container_id] = machine_id
        self._containers[container.container_id] = container
        self.machine_containers.setdefault(machine_id, {})[
            container.container_id
        ] = None
        per_machine = self.app_machines.setdefault(container.app_id, {})
        per_machine[machine_id] = per_machine.get(machine_id, 0) + 1
        self.touch(machine_id)
        self._record(EventKind.DEPLOY, container.container_id, machine_id)

    def evict(self, container_id: int) -> Container:
        """Remove a deployed container, returning it for re-queueing."""
        if container_id not in self.assignment:
            raise KeyError(f"container {container_id} is not deployed")
        machine_id = self.assignment.pop(container_id)
        container = self._containers.pop(container_id)
        demand = container.demand_vector(self.topology.resources)
        self.available[machine_id] += demand
        self.container_count[machine_id] -= 1
        self.machine_containers[machine_id].pop(container_id, None)
        per_machine = self.app_machines[container.app_id]
        per_machine[machine_id] -= 1
        if per_machine[machine_id] == 0:
            del per_machine[machine_id]
        self.touch(machine_id)
        self._record(EventKind.EVICT, container_id, machine_id)
        return container

    def evict_block(self, container_ids) -> int:
        """Evict every *deployed* container of ``container_ids`` at once.

        Ids not currently deployed are skipped — the shared window logic
        relies on this, since a departing container may already have been
        displaced by a fault in the same window.  Returns the number of
        containers actually evicted.

        Bit-identical to calling :meth:`evict` per id in order
        (:func:`np.add.at` is unbuffered: the per-occurrence additions to
        ``available`` apply in exactly the scalar loop's sequence), but
        the numpy call overhead and the dirty-log append are paid once
        per window instead of once per container.  :meth:`evict` remains
        the scalar fallback for single-container callers.
        """
        assignment = self.assignment
        # First occurrence wins; a duplicate id in the same window is
        # "already evicted" by the time the loop would reach it, exactly
        # like the absent-id case under the scalar loop.
        present: list[int] = []
        picked: set[int] = set()
        for cid in container_ids:
            if cid in assignment and cid not in picked:
                picked.add(cid)
                present.append(cid)
        if not present:
            return 0
        resources = self.topology.resources
        containers = self._containers
        machine_containers = self.machine_containers
        app_machines = self.app_machines
        # All containers of an application are identical (the IL
        # premise), so the demand vector is derived once per app.
        demand_of: dict[int, np.ndarray] = {}
        machines: list[int] = []
        rows: list[np.ndarray] = []
        for cid in present:
            machine_id = assignment.pop(cid)
            container = containers.pop(cid)
            app_id = container.app_id
            demand = demand_of.get(app_id)
            if demand is None:
                demand = container.demand_vector(resources)
                demand_of[app_id] = demand
            machines.append(machine_id)
            rows.append(demand)
            machine_containers[machine_id].pop(cid, None)
            per_machine = app_machines[app_id]
            per_machine[machine_id] -= 1
            if per_machine[machine_id] == 0:
                del per_machine[machine_id]
        idx = np.asarray(machines, dtype=np.int64)
        np.add.at(self.available, idx, np.asarray(rows))
        np.subtract.at(self.container_count, idx, 1)
        self.touch_block(idx)
        if self.events is not None:
            for cid, machine_id in zip(present, machines):
                self._record(EventKind.EVICT, cid, machine_id)
        return len(present)

    def deploy_block(self, containers, machine_ids, demand: np.ndarray) -> None:
        """Deploy ``containers[i]`` on ``machine_ids[i]`` in one pass.

        The fast path behind the batch kernel's commit: the containers
        are one application block sharing a single ``demand`` vector,
        and the caller has already established per-placement feasibility
        (the kernel plans within per-machine fit quotas over the admit
        mask, which excludes blacklisted machines), so the per-container
        capacity and anti-affinity prechecks of :meth:`deploy` are
        replaced by one vectorised capacity guard over the touched
        machines.  Bit-identical to calling :meth:`deploy` per pair in
        order; :meth:`deploy` remains the scalar fallback used by the
        overflow/rescue paths.

        Raises ``ValueError`` with the block's resource updates rolled
        back if any touched machine would go negative — a planner that
        trips this guard has a bug (the guard is exact: ``available``
        only decreases within the block, so a non-negative end state
        implies every intermediate state was feasible too).
        """
        idx = np.asarray(machine_ids, dtype=np.int64)
        k = int(idx.size)
        if k == 0:
            return
        if len(containers) != k:
            raise ValueError(
                f"deploy_block got {len(containers)} containers for "
                f"{k} machines"
            )
        assignment = self.assignment
        for container in containers:
            if container.container_id in assignment:
                raise ValueError(
                    f"container {container.container_id} is already "
                    f"deployed on machine "
                    f"{assignment[container.container_id]}"
                )
        touched = np.unique(idx)
        # Snapshot the touched rows before mutating: rolling back by
        # re-adding the demand is not bit-exact in floating point
        # (a - b + b need not equal a), restoring the snapshot is.
        before = self.available[touched].copy()
        np.subtract.at(self.available, idx, demand)
        short = (self.available[touched] < 0.0).any(axis=1)
        if short.any():
            bad = touched[short].tolist()
            self.available[touched] = before
            raise ValueError(
                f"deploy_block plan overcommits machines {bad}: the "
                "caller must establish feasibility before the block "
                "commit"
            )
        np.add.at(self.container_count, idx, 1)
        mlist = idx.tolist()
        machine_containers = self.machine_containers
        app_machines = self.app_machines
        for container, machine_id in zip(containers, mlist):
            cid = container.container_id
            assignment[cid] = machine_id
            self._containers[cid] = container
            machine_containers.setdefault(machine_id, {})[cid] = None
            per_machine = app_machines.setdefault(container.app_id, {})
            per_machine[machine_id] = per_machine.get(machine_id, 0) + 1
        self.touch_block(idx)
        if self.events is not None:
            for container, machine_id in zip(containers, mlist):
                self._record(EventKind.DEPLOY, container.container_id, machine_id)

    def migrate(self, container_id: int, target_machine: int) -> None:
        """Move a deployed container to ``target_machine`` atomically."""
        source = self.assignment.get(container_id)
        if source is None:
            raise KeyError(f"container {container_id} is not deployed")
        container = self.evict(container_id)
        self.deploy(container, target_machine)
        self._record(EventKind.MIGRATE, container_id, target_machine, source)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def used_machines(self) -> int:
        """Number of machines hosting at least one container."""
        return int((self.container_count > 0).sum())

    def utilization(self, dim: int = 0) -> np.ndarray:
        """Per-machine utilisation fraction along resource ``dim``."""
        cap = self.topology.capacity[:, dim]
        return (cap - self.available[:, dim]) / cap

    def used_utilization(self, dim: int = 0) -> np.ndarray:
        """Utilisation of only the machines that host containers."""
        util = self.utilization(dim)
        return util[self.container_count > 0]

    def anti_affinity_violations(self) -> int:
        """Count deployed containers whose placement breaks a rule.

        Each offending container counts once (a machine hosting two
        containers of a within-anti-affinity app contributes two; for
        rack-scoped rules the co-location domain is the rack).
        """
        cs = self.constraints
        violations = 0
        for machine_id, cids in self.machine_containers.items():
            if len(cids) < 2:
                continue
            apps: dict[int, int] = {}
            for cid in cids:
                app = self._containers[cid].app_id
                apps[app] = apps.get(app, 0) + 1
            app_ids = list(apps)
            bad_apps: set[int] = set()
            for i, a in enumerate(app_ids):
                if (
                    apps[a] > 1
                    and cs.has_within(a)
                    and cs.within_scope(a) == "machine"
                ):
                    bad_apps.add(a)
                for b in app_ids[i + 1 :]:
                    if cs.violates(a, b):
                        bad_apps.add(a)
                        bad_apps.add(b)
            for a in bad_apps:
                violations += apps[a]
        # Rack-scoped within-rules: count containers sharing a rack with
        # a sibling of the same application.
        for app_id, per_machine in self.app_machines.items():
            if not per_machine or not cs.has_within(app_id):
                continue
            if cs.within_scope(app_id) != "rack":
                continue
            rack_counts: dict[int, int] = {}
            for m, count in per_machine.items():
                rack = int(self.topology.rack_of[m])
                rack_counts[rack] = rack_counts.get(rack, 0) + count
            for count in rack_counts.values():
                if count > 1:
                    violations += count
        return violations

    def snapshot(self) -> "ClusterState":
        """Deep-copy the mutable state (topology/constraints are shared).

        The clone gets a fresh :attr:`state_uid` and an empty dirty log:
        caches keyed on the original keep their entries, caches handed
        the clone start cold — stale cross-talk is impossible.
        """
        clone = ClusterState(self.topology, self.constraints)
        clone.available = self.available.copy()
        clone.container_count = self.container_count.copy()
        clone.assignment = dict(self.assignment)
        clone._containers = dict(self._containers)
        clone.machine_containers = {
            m: dict(d) for m, d in self.machine_containers.items()
        }
        clone.app_machines = {
            a: dict(d) for a, d in self.app_machines.items()
        }
        return clone

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint_payload(self) -> dict:
        """Serialisable image of the mutable state, including the dirty
        log and its compaction base.

        The dirty log is persisted *verbatim* with its exact version
        numbering: consumer checkpoints (feasibility cache, machine
        index, rescue kernel) store the versions they are synced at,
        and restoring both sides together keeps those watermarks valid
        — the restored consumers resync from the persisted watermark
        instead of rebuilding cold.  ``available`` is copied out, so a
        state whose array is currently adopted into the parallel
        sweep's shared memory checkpoints its private values.
        """
        return {
            "n_machines": self.n_machines,
            "n_dims": int(self.available.shape[1]),
            "available": np.array(self.available),
            "container_count": self.container_count.copy(),
            "assignment": dict(self.assignment),
            "containers": dict(self._containers),
            "machine_containers": {
                m: list(d) for m, d in self.machine_containers.items()
            },
            "app_machines": {a: dict(d) for a, d in self.app_machines.items()},
            "version": self.version,
            "dirty_log": self._log_buf[: self._log_len].tolist(),
            "log_base": self._log_base,
            "clock": self._clock,
            "events": self.events,
        }

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        topology: ClusterTopology,
        constraints: ConstraintSet | None = None,
    ) -> "ClusterState":
        """Rebuild a state from :meth:`checkpoint_payload`.

        The restored state gets a **fresh** :attr:`state_uid` (uids are
        process-local); consumers restored from the same checkpoint are
        rebound to it explicitly.  Topology and constraints are not
        serialised — the caller re-derives them (they are static) and a
        machine-count mismatch is rejected up front.
        """
        from repro.cluster.snapshot import SnapshotError

        if payload["n_machines"] != topology.n_machines:
            raise SnapshotError(
                f"snapshot holds {payload['n_machines']} machines, "
                f"topology has {topology.n_machines}"
            )
        if payload["n_dims"] != topology.capacity.shape[1]:
            raise SnapshotError(
                f"snapshot holds {payload['n_dims']} resource dims, "
                f"topology has {topology.capacity.shape[1]}"
            )
        state = cls(topology, constraints)
        state.available = np.array(payload["available"], dtype=np.float64)
        state.container_count = np.array(
            payload["container_count"], dtype=np.int32
        )
        state.assignment = dict(payload["assignment"])
        state._containers = dict(payload["containers"])
        state.machine_containers = {
            m: {cid: None for cid in cids}
            for m, cids in payload["machine_containers"].items()
        }
        state.app_machines = {
            a: dict(d) for a, d in payload["app_machines"].items()
        }
        state.version = payload["version"]
        log = np.asarray(payload["dirty_log"], dtype=np.int64)
        if log.size > state._log_buf.size:
            state._grow_log(log.size)
        state._log_buf[: log.size] = log
        state._log_len = int(log.size)
        state._log_base = payload["log_base"]
        state._clock = payload["clock"]
        state.events = payload["events"]
        return state

    def save(self, path: str) -> None:
        """Write a checksummed snapshot of this state to ``path``
        (atomic write-rename; see :mod:`repro.cluster.snapshot`)."""
        from repro.cluster.snapshot import write_snapshot

        write_snapshot(path, self.checkpoint_payload(), kind="cluster-state")

    @classmethod
    def restore(
        cls,
        path: str,
        topology: ClusterTopology,
        constraints: ConstraintSet | None = None,
    ) -> "ClusterState":
        """Load a state saved by :meth:`save`, verifying its checksum."""
        from repro.cluster.snapshot import read_snapshot

        return cls.from_payload(
            read_snapshot(path, kind="cluster-state"), topology, constraints
        )

    def _record(
        self,
        kind: EventKind,
        container_id: int,
        machine_id: int,
        source_machine: int | None = None,
    ) -> None:
        if self.events is not None:
            self._clock += 1
            self.events.append(
                Event(
                    kind=kind,
                    time=self._clock,
                    container_id=container_id,
                    machine_id=machine_id,
                    source_machine=source_machine,
                )
            )


#: shard views are identified like full states, from the same uid space
_shard_uids = _state_uids


class ShardView:
    """A worker-local, dirty-log-tracked window onto one machine shard.

    The parallel sweep (:mod:`repro.core.parallel`) partitions machines
    by rack into contiguous ``[lo, hi)`` ranges.  Each worker process
    holds one ``ShardView``: a zero-copy slice of the coordinator's
    shared-memory ``available`` array plus a *local* dirty log fed by
    the coordinator's messages.  The view quacks like a
    :class:`ClusterState` for exactly the consumers the worker runs —
    the :class:`~repro.core.feascache.FeasibilityCache` and the
    :class:`~repro.core.machindex.MachineIndex` — which only read
    :attr:`available`, :attr:`n_machines`, :attr:`state_uid`,
    :attr:`version`, :attr:`constraints` and the ``dirty_*_since``
    queries.  Machine ids are shard-local (``0 .. hi - lo``); the
    coordinator translates to and from global ids at the boundary.

    The view's :attr:`constraints` are deliberately empty: anti-affinity
    blacklists are application-specific coordinator state, so the
    coordinator evaluates them and ships the forbidden ids with each
    query — the worker's cache holds only the app-independent capacity
    dominance term, mirroring the serial cache's split.

    Versioning is local: :meth:`advance` bumps :attr:`version` by one
    per coordinator message and appends that message's dirty ids as one
    log segment.  ``advance(None)`` models a compacted coordinator log
    ("everything may have changed"): the local log is cleared and every
    consumer synced before this point recomputes fully, mirroring
    :meth:`ClusterState.dirty_since` semantics.
    """

    #: dirty-log segments kept before compaction drops the oldest half
    MAX_SEGMENTS = 512

    def __init__(self, available: np.ndarray) -> None:
        #: remaining resources of this shard, shape (hi - lo, n_dims) —
        #: typically a live view into the coordinator's shared memory
        self.available = available
        #: empty on purpose — blacklists are evaluated coordinator-side
        self.constraints = ConstraintSet()
        self.state_uid = next(_shard_uids)
        self.version = 0
        self._segments: list[np.ndarray] = []
        self._base = 0

    @property
    def n_machines(self) -> int:
        return int(self.available.shape[0])

    # ------------------------------------------------------------------
    def advance(self, dirty_local: np.ndarray | None) -> None:
        """Apply one coordinator sync message to the local dirty log.

        ``dirty_local`` holds the shard-local ids mutated since the last
        message (possibly empty); ``None`` means the coordinator's own
        log was compacted past the shard's sync point, so the whole
        shard must be treated as dirty.
        """
        self.version += 1
        if dirty_local is None:
            self._segments.clear()
            self._base = self.version
            return
        self._segments.append(np.asarray(dirty_local, dtype=np.int64))
        if len(self._segments) > self.MAX_SEGMENTS:
            drop = len(self._segments) // 2
            del self._segments[:drop]
            self._base += drop

    def dirty_array_since(self, version: int) -> np.ndarray | None:
        """Shard-local ids dirtied after ``version`` (``None``: unknown)."""
        if version >= self.version:
            return _NO_DIRTY
        if version < self._base:
            return None
        segments = self._segments[version - self._base :]
        if len(segments) == 1:
            return np.unique(segments[0])
        return np.unique(np.concatenate(segments))

    def dirty_raw_since(self, version: int) -> np.ndarray | None:
        """Raw, possibly duplicated form of :meth:`dirty_array_since`.

        Skips the dedup sort for consumers whose resync is idempotent
        (the feasibility cache rewrites verdicts in place), matching
        :meth:`ClusterState.dirty_raw_since`.
        """
        if version >= self.version:
            return _NO_DIRTY
        if version < self._base:
            return None
        segments = self._segments[version - self._base :]
        if len(segments) == 1:
            return segments[0]
        return np.concatenate(segments)

    def dirty_since(self, version: int) -> set[int] | None:
        """Set form of :meth:`dirty_array_since` (parity with states)."""
        dirty = self.dirty_array_since(version)
        return None if dirty is None else set(int(m) for m in dirty)
