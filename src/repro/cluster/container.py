"""Long-lived applications (LLAs) and their containers.

An LLA comprises one or more long-lived containers; all containers of one
application share the same resource requirement — the *isomorphism*
property Aladdin's IL pruning exploits (Section IV.A).  Containers are
*impartible*: a 4-CPU container cannot be split across machines
(Section IV.D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import DEFAULT_RESOURCES


@dataclass(frozen=True)
class Application:
    """One long-lived application (LLA).

    Parameters
    ----------
    app_id:
        Dense integer id of the application.
    n_containers:
        Number of isomorphic container instances.
    cpu, mem_gb:
        Per-container resource demand (identical across instances).
    priority:
        Priority class, 0 = lowest.  Roughly 15 % of the trace's LLAs
        carry an elevated priority (Fig. 8b).
    anti_affinity_within:
        Whether the application's own containers must land on distinct
        machines (the paper's *anti-affinity within an application*).
    anti_affinity_scope:
        Spread domain for the within-rule: ``"machine"`` (paper default)
        or ``"rack"`` — replicas on distinct racks, the coarser fault
        domain the flow network's ``R`` vertex layer models.
    conflicts:
        Ids of other applications this one must not share a machine with
        (*anti-affinity across applications*).
    affinities:
        Ids of applications this one *prefers* to share a machine with —
        a soft constraint (Borg-style affinity; the related-work section
        notes Borg "only considers affinity constraints").  Schedulers
        may use it as a tie-break; it never overrides anti-affinity or
        capacity.
    name:
        Optional human-readable label.
    """

    app_id: int
    n_containers: int
    cpu: float
    mem_gb: float
    priority: int = 0
    anti_affinity_within: bool = False
    anti_affinity_scope: str = "machine"
    conflicts: frozenset[int] = field(default_factory=frozenset)
    affinities: frozenset[int] = field(default_factory=frozenset)
    name: str = ""

    def __post_init__(self) -> None:
        if self.app_id < 0:
            raise ValueError(f"app_id must be non-negative, got {self.app_id}")
        if self.n_containers <= 0:
            raise ValueError(
                f"n_containers must be positive, got {self.n_containers}"
            )
        if self.cpu <= 0 or self.mem_gb <= 0:
            raise ValueError(
                f"container demand must be positive, got cpu={self.cpu} "
                f"mem_gb={self.mem_gb}"
            )
        if self.priority < 0:
            raise ValueError(f"priority must be non-negative, got {self.priority}")
        if self.app_id in self.conflicts:
            raise ValueError(
                "use anti_affinity_within for self-conflicts, not the "
                "cross-application conflict set"
            )
        if self.anti_affinity_scope not in ("machine", "rack"):
            raise ValueError(
                f"anti_affinity_scope must be 'machine' or 'rack', got "
                f"{self.anti_affinity_scope!r}"
            )
        overlap = self.affinities & self.conflicts
        if overlap:
            raise ValueError(
                f"applications {sorted(overlap)} appear in both affinities "
                "and conflicts"
            )

    def demand_vector(self, resources: tuple[str, ...] = DEFAULT_RESOURCES) -> np.ndarray:
        """Per-container demand ordered like ``resources``."""
        values = {"cpu": self.cpu, "mem_gb": self.mem_gb}
        return np.array([values[name] for name in resources], dtype=np.float64)

    @property
    def has_anti_affinity(self) -> bool:
        """True when any anti-affinity constraint applies to this LLA."""
        return self.anti_affinity_within or bool(self.conflicts)


@dataclass(frozen=True)
class Container:
    """One container instance of an LLA.

    ``container_id`` is globally dense; ``instance`` is the index of this
    container within its application (0-based).
    """

    container_id: int
    app_id: int
    instance: int
    cpu: float
    mem_gb: float
    priority: int = 0

    def demand_vector(self, resources: tuple[str, ...] = DEFAULT_RESOURCES) -> np.ndarray:
        """Per-container demand ordered like ``resources``."""
        values = {"cpu": self.cpu, "mem_gb": self.mem_gb}
        return np.array([values[name] for name in resources], dtype=np.float64)


def containers_of(
    apps: list[Application], start_id: int = 0
) -> list[Container]:
    """Expand applications into their container instances.

    Container ids are assigned densely in application order starting at
    ``start_id``, so ``containers_of(apps)[k].container_id == start_id + k``.
    """
    out: list[Container] = []
    next_id = start_id
    for app in apps:
        for instance in range(app.n_containers):
            out.append(
                Container(
                    container_id=next_id,
                    app_id=app.app_id,
                    instance=instance,
                    cpu=app.cpu,
                    mem_gb=app.mem_gb,
                    priority=app.priority,
                )
            )
            next_id += 1
    return out
