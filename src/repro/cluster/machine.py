"""Machine specification.

The paper's evaluation cluster is homogeneous: every machine offers
32 CPUs and 64 GB of memory (Section V.A).  We keep the specification
multidimensional — Aladdin's capacity function is explicitly
*multidimensional* (Section III.A) — but the evaluation defaults to the
(cpu, mem_gb) pair, and the Firmament-fairness experiments restrict the
comparison to CPU only (Section V.A, limitation (i)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Resource dimensions used throughout the reproduction, in array order.
DEFAULT_RESOURCES: tuple[str, ...] = ("cpu", "mem_gb")

#: The Alibaba trace machine shape (Section V.A).
ALIBABA_MACHINE_CPU = 32.0
ALIBABA_MACHINE_MEM_GB = 64.0


@dataclass(frozen=True)
class MachineSpec:
    """Immutable description of a single machine's resource capacity.

    Parameters
    ----------
    cpu:
        Number of CPU cores the machine offers.
    mem_gb:
        Memory in gigabytes.
    resources:
        Names of the resource dimensions, in the order used by
        :meth:`capacity_vector`.  Extending this tuple (e.g. with
        ``"gpu"``) grows the dimension count ``c`` of the capacity
        function; the paper notes the effect of ``c`` on the algorithm
        is linear (Section IV.D).
    """

    cpu: float = ALIBABA_MACHINE_CPU
    mem_gb: float = ALIBABA_MACHINE_MEM_GB
    resources: tuple[str, ...] = field(default=DEFAULT_RESOURCES)

    def __post_init__(self) -> None:
        if self.cpu <= 0:
            raise ValueError(f"machine cpu must be positive, got {self.cpu}")
        if self.mem_gb <= 0:
            raise ValueError(f"machine mem_gb must be positive, got {self.mem_gb}")
        unknown = set(self.resources) - {"cpu", "mem_gb"}
        if unknown:
            raise ValueError(f"unknown resource dimensions: {sorted(unknown)}")
        if not self.resources:
            raise ValueError("at least one resource dimension is required")

    def capacity_vector(self) -> np.ndarray:
        """Return this machine's capacity as a float vector.

        The vector is ordered like :attr:`resources` so it can be compared
        element-wise against container demand vectors (the ``≤`` of the
        paper's Equation 6).
        """
        values = {"cpu": self.cpu, "mem_gb": self.mem_gb}
        return np.array([values[name] for name in self.resources], dtype=np.float64)

    @property
    def n_dims(self) -> int:
        """Dimension count ``c`` of the capacity function."""
        return len(self.resources)
