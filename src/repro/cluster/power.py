"""Per-machine power lifecycle: scale-to-zero for idle machines.

The paper's Fig. 10 counts *used* machines; this module turns that
curve into an energy/cost dimension by actually powering the unused
tail down.  Every machine is in one of three states:

``on``
    Normal: full capacity row, admits placements.
``draining``
    Selected for power-down: its ``available`` row is zeroed (sealed)
    so no engine places on it, and after ``drain_ticks`` windows it
    transitions to ``off``.  Waking a draining machine is free — it
    never finished spinning down.
``off``
    Powered off.  Waking it costs ``cold_start_ticks``: the machine's
    ``cold_until`` marks when it is warm again, and placements that
    land on it before then are charged the remaining spin-up as a
    cold-start penalty (see :mod:`repro.sim.lifecycle`).

Sealing works by zeroing the machine's capacity row and touching the
dirty log — exactly the administratively-down convention
:func:`repro.core.validate.validate_state` already excludes from its
Eq. 9 bookkeeping audit, and the same signal that makes the
feasibility cache, machine index and rescue kernel drop their entries
for the machine.  No engine needs power-specific code.

The drain planner powers down **packed-last first**: among machines
that host nothing (or only warm-pool containers the caller is willing
to reclaim), the highest machine ids — the tail of the packed-first
placement order every engine fills — are sealed first, so power-down
cooperates with consolidation instead of fighting it.  Per-machine
density comes from the rescue kernel's resident ledger when one is
available (the ledger already maintains dirty-log-synced resident
summaries), falling back to ``state.machine_containers``.

Machines failed by :mod:`repro.sim.faults` present the same all-zero
row while still marked ``on`` here; the planner never drains or wakes
them (a wake would silently repair the fault).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState

#: power states (int8 codes)
POWER_ON = 0
POWER_DRAINING = 1
POWER_OFF = 2

#: state code -> CLI/debug name
POWER_NAMES = {POWER_ON: "on", POWER_DRAINING: "draining", POWER_OFF: "off"}


@dataclass(frozen=True)
class PowerConfig:
    """Knobs of the drain planner.

    Parameters
    ----------
    drain_ticks:
        Windows a machine spends ``draining`` before it is ``off``.
    cold_start_ticks:
        Spin-up time of an ``off`` machine, in ticks; placements that
        land on it before it is warm are charged the remainder.
    min_on:
        Machines never powered below this count.
    headroom:
        Spare machine-capacities of CPU kept powered beyond the
        current window's demand — the buffer that absorbs the next
        window's arrivals without a cold start.
    """

    drain_ticks: int = 1
    cold_start_ticks: int = 2
    min_on: int = 1
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.drain_ticks < 1:
            raise ValueError("drain_ticks must be >= 1")
        if self.cold_start_ticks < 0:
            raise ValueError("cold_start_ticks must be >= 0")
        if self.min_on < 0:
            raise ValueError("min_on must be >= 0")
        if self.headroom < 0:
            raise ValueError("headroom must be >= 0")


class PowerManager:
    """Tracks per-machine power state and plans wake/drain transitions.

    All decisions are pure functions of ``(state, tick, demand)`` and
    the manager's own arrays, and every candidate scan is ordered by
    machine id — a run is bit-deterministic, which is what lets the
    autoscale differential axis hold.
    """

    def __init__(self, n_machines: int, config: PowerConfig | None = None):
        self.config = config if config is not None else PowerConfig()
        self.n_machines = n_machines
        self.power = np.zeros(n_machines, dtype=np.int8)
        #: tick of the machine's last seal (valid while draining)
        self.sealed_at = np.zeros(n_machines, dtype=np.int64)
        #: first tick a woken-from-off machine is warm again
        self.cold_until = np.zeros(n_machines, dtype=np.int64)
        #: cumulative powered (on + draining) machine-ticks
        self.machine_ticks = 0
        self.wakes = 0
        self.cold_wakes = 0
        self.drains = 0

    # ------------------------------------------------------------------
    def is_on(self, machine_id: int) -> bool:
        return int(self.power[machine_id]) == POWER_ON

    def counts(self) -> tuple[int, int, int]:
        """(on, draining, off) machine counts."""
        on = int((self.power == POWER_ON).sum())
        draining = int((self.power == POWER_DRAINING).sum())
        return on, draining, self.n_machines - on - draining

    def cold_penalty(self, machine_id: int, tick: int) -> int:
        """Remaining spin-up ticks a placement on ``machine_id`` pays."""
        return max(0, int(self.cold_until[machine_id]) - tick)

    # ------------------------------------------------------------------
    def step(
        self,
        state: ClusterState,
        tick: int,
        demand_cpu: float,
        *,
        reclaimable: dict[int, list[int]] | None = None,
    ) -> tuple[list[int], list[int], list[int]]:
        """One per-window power pass.

        ``demand_cpu`` is the CPU the window's remaining batch needs;
        ``reclaimable`` maps machines whose only residents are
        warm-pool containers to those container ids — draining such a
        machine reclaims (evicts) them.

        Returns ``(woken, drained, reclaimed_cids)``.  The caller must
        evict ``reclaimed_cids``; their rows were *not* zeroed past the
        eviction (drain seals the machine after the pool gives it up).
        """
        cfg = self.config
        reclaimable = reclaimable or {}
        # 1. draining machines whose timer expired finish powering off
        draining = np.flatnonzero(self.power == POWER_DRAINING)
        for m in draining.tolist():
            if tick - int(self.sealed_at[m]) >= cfg.drain_ticks:
                self.power[m] = POWER_OFF

        # 2. wake machines until powered free CPU covers the demand
        # plus headroom (free CPU is an optimistic placeability proxy —
        # fragmentation eats into it, which is what the headroom
        # buffer absorbs).  Sealed and failed rows are all-zero, so
        # the sum *is* the free CPU of healthy powered machines.
        free = float(state.available[:, 0].sum())
        capacity = state.topology.capacity
        keep_cpu = demand_cpu + cfg.headroom * float(capacity[:, 0].mean())
        woken: list[int] = []
        if free < keep_cpu:
            for pool_state in (POWER_DRAINING, POWER_OFF):
                if free >= keep_cpu:
                    break
                for m in np.flatnonzero(self.power == pool_state).tolist():
                    self._wake(state, m, tick, cold=pool_state == POWER_OFF)
                    woken.append(m)
                    free += float(capacity[m, 0])
                    if free >= keep_cpu:
                        break

        # 3. drain the idle tail: packed-last first, truly empty
        # machines before warm-pool reclaims (which are ordered by
        # resident count so the cheapest reclaim drains first).
        drained: list[int] = []
        reclaimed: list[int] = []
        if not woken:
            empty: list[int] = []
            warm_only: list[tuple[int, int]] = []
            for m in range(self.n_machines):
                if self.power[m] != POWER_ON:
                    continue
                residents = state.machine_containers.get(m)
                if residents:
                    cids = reclaimable.get(m)
                    if cids is not None and len(cids) == len(residents):
                        warm_only.append((len(cids), m))
                elif state.available[m].any():  # healthy; failed stay put
                    empty.append(m)
            empty.sort(reverse=True)
            warm_only.sort(key=lambda item: (item[0], -item[1]))
            candidates = empty + [m for _, m in warm_only]
            n_on = int((self.power == POWER_ON).sum())
            for m in candidates:
                if n_on <= cfg.min_on:
                    break
                # A reclaimed machine's pooled residents still hold
                # capacity; once evicted the whole row frees up, so the
                # spare test uses the machine's full capacity.
                spare = free - float(capacity[m, 0])
                if spare < keep_cpu:
                    break
                reclaimed.extend(reclaimable.get(m, ()))
                self._seal(state, m, tick)
                drained.append(m)
                free = spare
                n_on -= 1

        on, draining_now, _off = self.counts()
        self.machine_ticks += on + draining_now
        return woken, drained, reclaimed

    # ------------------------------------------------------------------
    def _wake(self, state: ClusterState, m: int, tick: int, *, cold: bool):
        self.power[m] = POWER_ON
        state.available[m] = state.topology.capacity[m]
        state.touch(m)
        self.wakes += 1
        if cold:
            self.cold_wakes += 1
            self.cold_until[m] = tick + self.config.cold_start_ticks

    def _seal(self, state: ClusterState, m: int, tick: int) -> None:
        """Seal ``m`` (must be empty by the time the caller evicts any
        reclaimed pool residents it reported for it)."""
        self.power[m] = POWER_DRAINING
        self.sealed_at[m] = tick
        state.available[m] = 0.0
        state.touch(m)
        self.drains += 1

    def seal_reclaimed(self, state: ClusterState, machine_ids) -> None:
        """Re-zero rows freed by evicting reclaimed pool residents."""
        for m in machine_ids:
            state.available[m] = 0.0
            state.touch(m)

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        return {
            "power": self.power.tolist(),
            "sealed_at": self.sealed_at.tolist(),
            "cold_until": self.cold_until.tolist(),
            "machine_ticks": self.machine_ticks,
            "wakes": self.wakes,
            "cold_wakes": self.cold_wakes,
            "drains": self.drains,
        }

    def restore(self, payload: dict) -> None:
        self.power = np.asarray(payload["power"], dtype=np.int8)
        self.sealed_at = np.asarray(payload["sealed_at"], dtype=np.int64)
        self.cold_until = np.asarray(payload["cold_until"], dtype=np.int64)
        self.machine_ticks = int(payload["machine_ticks"])
        self.wakes = int(payload["wakes"])
        self.cold_wakes = int(payload["cold_wakes"])
        self.drains = int(payload["drains"])
