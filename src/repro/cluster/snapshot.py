"""Versioned, checksummed, atomically written snapshot files.

Checkpoint/restore turns the simulated ticks of :mod:`repro.sim.online`
into a restartable service: a run killed at tick *k* resumes from its
last snapshot and finishes **bit-identical** to an uninterrupted run.
That guarantee rests on three properties this module provides and the
tests in ``tests/cluster/test_snapshot.py`` pin:

* **Integrity** — every snapshot carries a SHA-256 digest of its
  payload; a truncated, bit-flipped or foreign file raises
  :class:`SnapshotError` instead of deserialising garbage into a
  half-restored run.
* **Versioning** — a 4-byte magic plus a format version reject files
  written by an incompatible release up front.
* **Atomicity** — the payload is written to a temporary file in the
  target directory, fsynced, and renamed over the destination with
  :func:`os.replace`.  A crash mid-write leaves either the previous
  complete snapshot or none; never a partial file.

The payload itself is a pickle of plain dicts/arrays assembled by the
checkpointing callers (:meth:`~repro.cluster.state.ClusterState.save`,
``OnlineSimulator._write_checkpoint``); each caller tags its payload
with a ``kind`` string so a cluster-state snapshot cannot be fed to the
online-simulation restore path by mistake.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from typing import Any

#: file magic — "ALaDdiN snapshot"
MAGIC = b"ALDN"
#: bump when the payload layout changes incompatibly
FORMAT_VERSION = 1
#: magic + format version + sha256 digest + payload length
_HEADER = struct.Struct("<4sI32sQ")


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupted, or incompatible."""


def write_snapshot(path: str, payload: Any, kind: str) -> None:
    """Atomically write ``payload`` (tagged ``kind``) to ``path``.

    The temporary file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename — atomic on POSIX.
    On any failure the temporary file is removed; the destination is
    never left partially written.
    """
    blob = pickle.dumps(
        {"kind": kind, "payload": payload}, protocol=pickle.HIGHEST_PROTOCOL
    )
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, hashlib.sha256(blob).digest(), len(blob)
    )
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".snapshot-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


def read_snapshot(path: str, kind: str) -> Any:
    """Read, verify and return the payload of the snapshot at ``path``.

    Raises :class:`SnapshotError` when the file is unreadable,
    truncated, fails the checksum, was written by an incompatible
    format version, or carries a different ``kind`` tag.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise SnapshotError(f"snapshot {path!r} is truncated (no header)")
    magic, version, digest, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotError(f"{path!r} is not an Aladdin snapshot")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version}, "
            f"this release reads {FORMAT_VERSION}"
        )
    blob = data[_HEADER.size :]
    if len(blob) != length:
        raise SnapshotError(
            f"snapshot {path!r} is truncated "
            f"({len(blob)} of {length} payload bytes)"
        )
    if hashlib.sha256(blob).digest() != digest:
        raise SnapshotError(f"snapshot {path!r} failed its checksum")
    envelope = pickle.loads(blob)
    if envelope.get("kind") != kind:
        raise SnapshotError(
            f"snapshot {path!r} holds a {envelope.get('kind')!r} payload, "
            f"expected {kind!r}"
        )
    return envelope["payload"]
