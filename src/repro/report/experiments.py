"""One-command regeneration of the full evaluation as a markdown report.

``run_all_experiments`` executes a compact version of every experiment
in the paper's evaluation section against one trace and returns a
markdown document with the same structure as ``EXPERIMENTS.md`` —
useful for re-validating the reproduction at other scales/seeds
(``python -m repro experiments --scale 0.1 --seed 3``).

The heavyweight parts (the Fig. 10 minimum-cluster binary searches and
the Fig. 12 cluster sweep) can be toggled off for quick runs.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.baselines.firmament import FirmamentScheduler
from repro.baselines.firmament_policies import FirmamentPolicy
from repro.baselines.kube import GoKubeScheduler
from repro.baselines.medea import MedeaScheduler, MedeaWeights
from repro.core import AladdinConfig, AladdinScheduler
from repro.sim import Simulator, minimum_cluster_size
from repro.trace.arrival import ArrivalOrder
from repro.trace.schema import Trace
from repro.trace.stats import workload_stats


@dataclass(frozen=True)
class ExperimentOptions:
    """What to include in the regenerated report."""

    include_fig10: bool = True
    include_fig12: bool = True
    fig9_reschd: tuple[int, ...] = (1, 8)
    fig10_orders: tuple[ArrivalOrder, ...] = (ArrivalOrder.CHP, ArrivalOrder.CSA)


def run_all_experiments(
    trace: Trace, options: ExperimentOptions | None = None
) -> str:
    """Run the evaluation and render it as markdown."""
    options = options or ExperimentOptions()
    out = io.StringIO()
    w = out.write

    w("# Regenerated evaluation report\n\n")
    w(f"Trace: scale={trace.config.scale}, seed={trace.config.seed}, "
      f"{trace.n_apps} LLAs / {trace.n_containers} containers.\n\n")

    _fig8(w, trace)
    pressured = _pressured_sim(trace)
    _fig9(w, trace, pressured, options)
    if options.include_fig10:
        _fig10(w, trace, options)
    _fig11(w, trace)
    if options.include_fig12:
        _fig12(w, trace)
    _fig13(w, pressured)
    return out.getvalue()


# ----------------------------------------------------------------------
def _pressured_sim(trace: Trace) -> Simulator:
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    return Simulator(trace, n_machines=max(1, round(total_cpu / 32.0 / 0.92)))


def _md_table(w, headers: list[str], rows: list[list[object]]) -> None:
    w("| " + " | ".join(headers) + " |\n")
    w("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        w("| " + " | ".join(str(c) for c in row) + " |\n")
    w("\n")


def _fig8(w, trace: Trace) -> None:
    w("## Fig. 8 — workload features\n\n")
    stats = workload_stats(trace)
    _md_table(
        w,
        ["metric", "value"],
        [[k, round(v, 3) if isinstance(v, float) else v]
         for k, v in stats.as_rows()],
    )


def _fig9(w, trace: Trace, sim: Simulator, options: ExperimentOptions) -> None:
    w("## Fig. 9 — placement quality (violations %)\n\n")
    rows = []
    for reschd in options.fig9_reschd:
        for policy in (FirmamentPolicy.TRIVIAL, FirmamentPolicy.QUINCY,
                       FirmamentPolicy.OCTOPUS):
            m = sim.run(FirmamentScheduler(policy, reschd=reschd)).metrics
            rows.append([m.scheduler, f"{m.violation_pct:.1f}",
                         m.n_undeployed, m.n_violating_placements])
    for weights in (MedeaWeights(1, 1, 1), MedeaWeights(1, 1, 0)):
        m = sim.run(MedeaScheduler(weights)).metrics
        rows.append([m.scheduler, f"{m.violation_pct:.1f}",
                     m.n_undeployed, m.n_violating_placements])
    m = sim.run(GoKubeScheduler()).metrics
    rows.append([m.scheduler, f"{m.violation_pct:.1f}",
                 m.n_undeployed, m.n_violating_placements])
    for base in (16, 128):
        m = sim.run(
            AladdinScheduler(AladdinConfig(priority_weight_base=base))
        ).metrics
        rows.append([m.scheduler, f"{m.violation_pct:.1f}",
                     m.n_undeployed, m.n_violating_placements])
    _md_table(w, ["scheduler", "violations %", "undeployed", "violating"], rows)


def _fig10(w, trace: Trace, options: ExperimentOptions) -> None:
    w("## Fig. 10 — machines used (minimum clean cluster)\n\n")
    comparators = {
        "Aladdin": lambda: AladdinScheduler(),
        "Medea(1,1,0)": lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
        "Firmament-QUINCY(8)": lambda: FirmamentScheduler(
            FirmamentPolicy.QUINCY, reschd=8
        ),
        "Go-Kube": lambda: GoKubeScheduler(),
    }
    rows = []
    for name, factory in comparators.items():
        sizes = [
            minimum_cluster_size(trace, factory, order)
            for order in options.fig10_orders
        ]
        rows.append(
            [name] + sizes + [f"{max(sizes) / min(sizes) - 1:.1%}"]
        )
    headers = (
        ["scheduler"]
        + [o.value for o in options.fig10_orders]
        + ["spread"]
    )
    _md_table(w, headers, rows)


def _fig11(w, trace: Trace) -> None:
    w("## Fig. 11 — utilization (open pool, trace order)\n\n")
    sim = Simulator(trace, machine_pool_factor=1.6)
    rows = []
    for sched in (AladdinScheduler(), GoKubeScheduler()):
        m = sim.run(sched).metrics
        rows.append([
            m.scheduler,
            f"{m.utilization_min:.0%}",
            f"{m.utilization_max:.0%}",
            f"{m.utilization_mean:.0%}",
        ])
    _md_table(w, ["scheduler", "min util", "max util", "avg util"], rows)


def _fig12(w, trace: Trace) -> None:
    w("## Fig. 12 — search work vs cluster size\n\n")
    n = trace.config.n_machines
    rows = []
    for name, cfg in (
        ("Aladdin", AladdinConfig(enable_il=False, enable_dl=False)),
        ("Aladdin+IL+DL", AladdinConfig()),
    ):
        per_size = []
        for machines in (n, 2 * n):
            r = Simulator(trace, n_machines=machines).run(AladdinScheduler(cfg))
            per_size.append(r.schedule.explored)
        rows.append([name] + [f"{v:,}" for v in per_size])
    kube = []
    for machines in (n, 2 * n):
        r = Simulator(trace, n_machines=machines).run(GoKubeScheduler())
        kube.append(r.schedule.explored)
    rows.append(["Go-Kube"] + [f"{v:,}" for v in kube])
    _md_table(w, ["policy", f"{n} machines", f"{2 * n} machines"], rows)


def _fig13(w, sim: Simulator) -> None:
    w("## Fig. 13 — migration cost per arrival order (pressured)\n\n")
    rows = []
    for order in (ArrivalOrder.CHP, ArrivalOrder.CLP, ArrivalOrder.CLA,
                  ArrivalOrder.CSA):
        m = sim.run(AladdinScheduler(), order).metrics
        rows.append([
            order.value,
            m.migrations,
            m.preemptions,
            f"{m.violation_pct:.2f}",
            f"{m.latency_total_s:.2f}s",
        ])
    _md_table(
        w,
        ["order", "migrations", "preemptions", "violations %", "overhead"],
        rows,
    )
