"""Report rendering: text tables and series for every figure/table."""

from repro.report.tables import format_table, metrics_table
from repro.report.figures import format_series, paper_vs_measured
from repro.report.experiments import ExperimentOptions, run_all_experiments

__all__ = [
    "format_table",
    "metrics_table",
    "format_series",
    "paper_vs_measured",
    "ExperimentOptions",
    "run_all_experiments",
]
