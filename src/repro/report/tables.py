"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables/figures
report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from repro.sim.metrics import SimulationMetrics


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def metrics_table(
    metrics: list[SimulationMetrics], title: str | None = None
) -> str:
    """The standard evaluation row set for a list of runs."""
    headers = [
        "scheduler",
        "order",
        "viol%",
        "undeployed",
        "violating",
        "aa-share%",
        "machines",
        "migr",
        "ms/container",
    ]
    rows = [
        [
            m.scheduler,
            m.arrival_order,
            f"{m.violation_pct:.1f}",
            m.n_undeployed,
            m.n_violating_placements,
            f"{m.anti_affinity_share_pct:.0f}",
            m.used_machines,
            m.migrations,
            f"{m.latency_per_container_ms:.3f}",
        ]
        for m in metrics
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
