"""Series rendering and paper-vs-measured comparison rows."""

from __future__ import annotations

_BLOCKS = " ▏▎▍▌▋▊▉█"


def format_series(
    name: str,
    points: list[tuple[object, float]],
    unit: str = "",
    width: int = 40,
) -> str:
    """One labelled series as aligned rows with a proportional bar.

    The bar substitutes for the paper's figure axis: relative magnitude
    is visible at a glance in plain text.
    """
    if not points:
        return f"{name}: (no data)"
    peak = max(abs(v) for _, v in points) or 1.0
    lines = [name]
    for x, v in points:
        filled = v / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        lines.append(f"  {str(x):>12s}  {v:12.3f}{unit:<6s} {bar}")
    return "\n".join(lines)


def paper_vs_measured(
    rows: list[tuple[str, object, object]], title: str = ""
) -> str:
    """(metric, paper value, measured value) comparison block.

    Used by every benchmark to print the EXPERIMENTS.md evidence
    directly from the run.
    """
    lines = [title] if title else []
    width = max((len(r[0]) for r in rows), default=10)
    lines.append(f"{'metric':<{width}s}  {'paper':>14s}  {'measured':>14s}")
    for metric, paper, measured in rows:
        lines.append(f"{metric:<{width}s}  {_f(paper):>14s}  {_f(measured):>14s}")
    return "\n".join(lines)


def _f(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
