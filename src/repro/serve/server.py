"""Asyncio placement service around a scheduler.

The serving loop turns the repository's simulated ticks into live
traffic handling: clients connect over a local socket, speak the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`, and the
server coalesces their placement/departure/fault requests into
*scheduling windows* — the same unit
:func:`repro.sim.online.apply_window` applies in the simulator, which
is why served decisions are bit-identical to a simulated run over the
same request stream.

Life of a request
-----------------
1. **Admission.**  A window-type request either enters the bounded
   queue or — when the queue is at ``max_queue`` — is answered
   immediately with a 429-style ``rejected`` reply carrying
   ``retry_after``.  Nothing is ever silently dropped: every admitted
   request gets exactly one decision reply, every refused one gets
   exactly one rejection.
2. **Coalescing.**  The window loop drains up to ``window_max`` queued
   requests into one window.  Fault/repair requests are vetted against
   the committed state *before* anything mutates — one naming an
   unknown machine (or repairing a machine that still hosts
   containers) gets its own ``error`` reply and is dropped from the
   window, never aborting it half-applied.  Within a window the
   application order is fixed and documented: repairs, then faults
   (two passes in that order, regardless of arrival interleaving;
   displaced containers are requeued ahead of the window's arrivals in
   priority order, minus any container the same window departs), then
   departures, then one scheduler round over the combined batch.
3. **Commit.**  The window mutates the cluster state, appends a
   :class:`~repro.sim.online.TickSample` to the run's
   :class:`~repro.sim.online.OnlineResult`, records per-window
   decisions in a bounded replay log, and — every ``checkpoint_every``
   windows — writes a crash-consistent snapshot (PR 5's envelope).  A
   server SIGKILLed after the commit restarts warm via
   :meth:`PlacementServer.restore`; the lost replies are recoverable
   through the ``decisions`` control request.
4. **Reply.**  Replies are serialised and written by an asyncio task
   while the *next* window already runs in the executor thread — result
   serialisation overlaps the sweep, so slow clients never stall
   scheduling.

The scheduler runs in a thread-pool executor: scheduling is the
CPU-bound part, and keeping it off the event loop leaves the loop free
to accept connections, answer control requests and apply backpressure
while a window is in flight.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass

from repro.base import ScheduleResult, Scheduler
from repro.cluster.snapshot import SnapshotError, read_snapshot, write_snapshot
from repro.cluster.state import ClusterState
from repro.serve.protocol import (
    ProtocolError,
    encode_frame,
    read_frame,
    validate_request,
)
from repro.sim.faults import fail_machines, repair_machines
from repro.sim.online import OnlineResult, apply_window, record_window
from repro.telemetry import ServiceTelemetry

#: snapshot ``kind`` tag of a serve checkpoint
SNAPSHOT_KIND = "serve"


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving loop.

    Parameters
    ----------
    max_queue:
        Admission bound: window-type requests beyond this many waiting
        are rejected with a 429-style reply instead of queued.
    window_max:
        Most requests one scheduling window may coalesce.
    retry_after_s:
        Client back-off hint carried by rejection replies.
    checkpoint_every / checkpoint_path:
        Write a crash-consistent snapshot to ``checkpoint_path`` every
        ``checkpoint_every`` committed windows (0 = never).
    decision_log:
        Committed windows whose decisions stay re-fetchable via the
        ``decisions`` request (the reply-recovery window after a crash).
    """

    max_queue: int = 1024
    window_max: int = 256
    retry_after_s: float = 0.05
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    decision_log: int = 512

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.window_max < 1:
            raise ValueError("window_max must be >= 1")
        if self.decision_log < 1:
            raise ValueError("decision_log must be >= 1")


class PlacementServer:
    """Serve placement decisions for one scheduler over a unix socket.

    ``on_window(tick, checkpoint_path_or_None)`` — invoked synchronously
    right after a window commits (and its snapshot, if due, is durably
    on disk) but *before* any reply is sent — is the crash-injection
    hook the fault tests and the CLI's ``--crash-after-window`` use.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        state: ClusterState,
        config: ServeConfig | None = None,
        *,
        on_window=None,
        lifecycle=None,
    ) -> None:
        self.scheduler = scheduler
        self.state = state
        self.config = config if config is not None else ServeConfig()
        self.on_window = on_window
        #: optional :class:`~repro.sim.lifecycle.LifecycleRuntime` —
        #: served windows then run the same pool/power phases the
        #: simulator's autoscale windows do
        self.lifecycle = lifecycle
        self.telemetry = ServiceTelemetry()
        #: the run so far, in the simulator's result shape — served and
        #: simulated runs over the same stream compare via canonical_json
        self.result = OnlineResult()
        #: committed windows; doubles as the next window's tick id
        self.windows = 0
        #: tick -> decisions of that committed window (bounded log)
        self.decisions: dict[int, dict] = {}
        self._queue: deque = deque()
        #: serialises the window-commit fold (result/decisions/windows)
        #: against control reads on the event loop.  Held only for the
        #: fast fold, never across a scheduler round, so taking it on
        #: the loop blocks for microseconds at worst.
        self._commit_lock = threading.Lock()
        self._wakeup = asyncio.Event()
        self._stop = asyncio.Event()
        self._reply_tasks: set[asyncio.Task] = set()
        #: live per-client handler task -> its writer, so shutdown can
        #: close the connections and await the handlers instead of
        #: leaving them for the event loop's teardown to cancel
        self._clients: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def _fingerprint(self) -> dict:
        return {
            "n_machines": self.state.n_machines,
            "scheduler": self.scheduler.name,
            "lifecycle": (
                self.lifecycle.fingerprint()
                if self.lifecycle is not None
                else None
            ),
        }

    def write_checkpoint(self, path: str) -> None:
        """Crash-consistent snapshot of the served run (atomic rename)."""
        take = getattr(self.scheduler, "checkpoint", None)
        payload = {
            "fingerprint": self._fingerprint(),
            "windows": self.windows,
            "state": self.state.checkpoint_payload(),
            "engine": take() if callable(take) else None,
            "result": self.result,
            "decisions": dict(self.decisions),
            "lifecycle": (
                self.lifecycle.checkpoint()
                if self.lifecycle is not None
                else None
            ),
        }
        write_snapshot(path, payload, kind=SNAPSHOT_KIND)

    @classmethod
    def restore(
        cls,
        path: str,
        scheduler: Scheduler,
        topology,
        constraints,
        config: ServeConfig | None = None,
        *,
        on_window=None,
        lifecycle=None,
    ) -> "PlacementServer":
        """Rebuild a server warm from a :meth:`write_checkpoint` snapshot.

        The scheduler's cross-round ledgers resync from the persisted
        dirty-log watermark exactly as the online simulator's restore
        path does; a SIGKILLed server restarted this way continues with
        the committed window's state, counters and decision log.  A
        snapshot taken with a lifecycle runtime requires a matching
        ``lifecycle`` (same knobs — enforced by the fingerprint); its
        power states and pool heap restore with it.
        """
        payload = read_snapshot(path, kind=SNAPSHOT_KIND)
        state = ClusterState.from_payload(payload["state"], topology, constraints)
        server = cls(
            scheduler, state, config, on_window=on_window, lifecycle=lifecycle
        )
        expected = server._fingerprint()
        if payload["fingerprint"] != expected:
            raise SnapshotError(
                "serve snapshot fingerprint mismatch: snapshot was taken "
                f"under {payload['fingerprint']}, restoring under {expected}"
            )
        server.windows = int(payload["windows"])
        server.result = payload["result"]
        server.decisions = {int(t): d for t, d in payload["decisions"].items()}
        adopt = getattr(scheduler, "restore_checkpoint", None)
        if payload["engine"] is not None and callable(adopt):
            adopt(payload["engine"], state)
        if payload.get("lifecycle") is not None:
            lifecycle.restore(payload["lifecycle"])
        return server

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self, socket_path: str, *, ready: threading.Event | None = None):
        """Serve on ``socket_path`` until a shutdown request (or
        :meth:`request_stop`); drains queued windows before returning."""
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_unix_server(self._handle, path=socket_path)
        if ready is not None:
            ready.set()
        window_task = asyncio.create_task(self._window_loop())
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            self._stop.set()  # reached via cancellation too
            self._wakeup.set()
            await window_task
            if self._reply_tasks:
                await asyncio.gather(*self._reply_tasks, return_exceptions=True)
            # hang up on idle clients (their read_frame sees EOF) and
            # wait for every handler to finish on its own
            for client_writer in list(self._clients.values()):
                client_writer.close()
            if self._clients:
                await asyncio.gather(*self._clients, return_exceptions=True)
            close = getattr(self.scheduler, "close", None)
            if callable(close):
                close()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (used by :class:`ServerThread`)."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._signal_stop)

    def _signal_stop(self) -> None:
        self._stop.set()
        self._wakeup.set()

    # ------------------------------------------------------------------
    # per-client protocol loop
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._clients[task] = writer
        try:
            while True:
                try:
                    req = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is broken: answer once, then hang up —
                    # the byte stream can no longer be trusted.
                    await self._write(writer, {"status": "error", "error": str(exc)})
                    break
                if req is None:
                    break
                try:
                    validate_request(req)
                except ProtocolError as exc:
                    # The frame was well-formed, so the stream is still
                    # in sync; report and keep serving this client.
                    await self._write(writer, {"status": "error", "error": str(exc)})
                    continue
                rtype = req["type"]
                if rtype == "ping":
                    await self._write(writer, {"status": "ok", "pong": True})
                elif rtype == "stats":
                    # Control reads snapshot under the commit lock so a
                    # mid-fold window in the executor can never leak a
                    # half-committed result (sample appended, totals
                    # not yet folded in).
                    with self._commit_lock:
                        reply = self._stats_reply()
                    await self._write(writer, reply)
                elif rtype == "result":
                    with self._commit_lock:
                        canonical = self.result.canonical_json()
                    await self._write(
                        writer, {"status": "ok", "canonical": canonical}
                    )
                elif rtype == "decisions":
                    with self._commit_lock:
                        reply = self._decisions_reply(req["tick"])
                    await self._write(writer, reply)
                elif rtype == "shutdown":
                    await self._write(writer, {"status": "ok", "stopping": True})
                    self._signal_stop()
                else:
                    self._admit(req, writer)
        except (ConnectionError, OSError):
            pass
        finally:
            self._clients.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _admit(self, req: dict, writer) -> None:
        if len(self._queue) >= self.config.max_queue or self._stop.is_set():
            self.telemetry.record_rejection()
            task = asyncio.ensure_future(self._write(writer, {
                "status": "rejected",
                "code": 429,
                "retry_after": self.config.retry_after_s,
            }))
            self._track(task)
            return
        self._queue.append((req, writer))
        self.telemetry.record_admission(len(self._queue))
        self._wakeup.set()

    def _stats_reply(self) -> dict:
        return {
            "status": "ok",
            "windows": self.windows,
            "queue_depth": len(self._queue),
            "service": self.telemetry.counters(),
            "scheduler": self.result.telemetry.counters(),
            "totals": {
                "arrived": self.result.total_arrived,
                "departed": self.result.total_departed,
                "failed": self.result.total_failed,
                "migrations": self.result.total_migrations,
            },
        }

    def _decisions_reply(self, tick: int) -> dict:
        decisions = self.decisions.get(tick)
        if decisions is None:
            return {
                "status": "error",
                "error": f"window {tick} is not in the decision log "
                f"(committed: {self.windows}, log keeps "
                f"{self.config.decision_log})",
            }
        return {"status": "ok", "tick": tick, **decisions}

    async def _write(self, writer, obj: dict) -> bool:
        try:
            writer.write(encode_frame(obj))
            await writer.drain()
            return True
        except (ConnectionError, OSError, RuntimeError):
            # The client went away; the window still committed and its
            # decisions stay re-fetchable from the decision log.
            self.telemetry.replies_failed += 1
            return False

    def _track(self, task: asyncio.Task) -> None:
        self._reply_tasks.add(task)
        task.add_done_callback(self._reply_tasks.discard)

    # ------------------------------------------------------------------
    # window loop
    # ------------------------------------------------------------------
    async def _window_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._stop.is_set():
                    return
                self._wakeup.clear()
                # Re-check under the cleared event: a request admitted
                # between the emptiness check and clear() has set it.
                if not self._queue and not self._stop.is_set():
                    await self._wakeup.wait()
                continue
            window = []
            while self._queue and len(window) < self.config.window_max:
                window.append(self._queue.popleft())
            self.telemetry.record_window(len(window))
            try:
                replies = await loop.run_in_executor(
                    None, self._apply_window, window
                )
            except Exception as exc:
                # Last resort for a genuine scheduler bug — protocol-
                # valid requests can no longer land here, because
                # _validate_window vets fault/repair targets before
                # the window mutates any state.
                replies = [
                    (w, {"status": "error",
                         "error": f"window failed: {exc!r}"})
                    for _req, w in window
                ]
            # Replies serialise and flush on the event loop while the
            # *next* window is already scheduling in the executor.
            self._track(asyncio.create_task(self._send_replies(replies)))

    async def _send_replies(self, replies) -> None:
        for writer, obj in replies:
            await self._write(writer, obj)

    # ------------------------------------------------------------------
    # window application (executor thread)
    # ------------------------------------------------------------------
    def _validate_window(self, window) -> dict[int, str]:
        """Vet fault/repair requests against the committed state.

        Runs before *anything* mutates, so one bad request can never
        abort — or half-apply — the window it coalesced into.  Returns
        ``id(req) -> message`` for requests that cannot apply; each
        gets its own ``error`` reply and is excluded from the window.

        The checks mirror exactly what would make the apply helpers
        raise: :func:`fail_machines` rejects out-of-range ids, already
        -down machines and duplicates; :func:`repair_machines` rejects
        out-of-range ids, machines still hosting containers, and
        machines that were never failed.  Repairs apply first (in
        arrival order) and faults second, so eligibility is tracked
        through the window: a repair makes its machine faultable again
        within the same window, and two faults naming the same machine
        reject the later one.

        With a lifecycle runtime, machines the power planner holds in
        ``draining``/``off`` are additionally off-limits to both —
        powered-down is not failed, and a repair would silently undo
        the planner's seal.
        """
        errors: dict[int, str] = {}
        n = self.state.n_machines
        hosts = self.state.machine_containers
        avail = self.state.available

        def is_down(m: int) -> bool:
            return not hosts.get(m) and not avail[m].any()

        def powered_down(machines) -> list[int]:
            if self.lifecycle is None:
                return []
            return [m for m in machines if not self.lifecycle.power.is_on(m)]

        repaired: set[int] = set()
        for req, _writer in window:
            if req["type"] != "repair":
                continue
            bad = [m for m in req["machines"] if not 0 <= m < n]
            if bad:
                errors[id(req)] = (
                    f"repair: machines {bad} out of range "
                    f"(cluster has {n} machines)"
                )
                continue
            sealed = powered_down(req["machines"])
            if sealed:
                errors[id(req)] = (
                    f"repair: machines {sealed} are powered down, "
                    "not failed"
                )
                continue
            hosting = [m for m in req["machines"] if hosts.get(m)]
            if hosting:
                errors[id(req)] = (
                    f"repair: machines {hosting} host containers; "
                    "they were not failed"
                )
                continue
            healthy = [
                m for m in req["machines"]
                if m not in repaired and not is_down(m)
            ]
            if healthy:
                errors[id(req)] = (
                    f"repair: machines {healthy} are not failed"
                )
                continue
            repaired.update(req["machines"])

        faulted: set[int] = set()
        for req, _writer in window:
            if req["type"] != "fault":
                continue
            bad = [m for m in req["machines"] if not 0 <= m < n]
            if bad:
                errors[id(req)] = (
                    f"fault: machines {bad} out of range "
                    f"(cluster has {n} machines)"
                )
                continue
            sealed = powered_down(req["machines"])
            if sealed:
                errors[id(req)] = (
                    f"fault: machines {sealed} are powered down"
                )
                continue
            seen: set[int] = set()
            down = []
            for m in req["machines"]:
                if (
                    m in seen
                    or m in faulted
                    or (is_down(m) and m not in repaired)
                ):
                    down.append(m)
                seen.add(m)
            if down:
                errors[id(req)] = (
                    f"fault: machines {down} are already failed"
                )
                continue
            faulted.update(req["machines"])
        return errors

    def _apply_window(self, window) -> list:
        """Commit one coalesced window; returns ``(writer, reply)`` pairs.

        Fault/repair requests are validated by :meth:`_validate_window`
        before any state mutates; invalid ones are answered with
        per-request ``error`` replies and skipped, so the window always
        commits atomically for the requests that remain.

        Application order within the window: repairs → faults →
        departures → one scheduler round over requeued-displaced +
        placement arrivals.  Repairs and faults apply as two passes in
        that order — never interleaved by arrival — so a window's
        outcome does not depend on how its requests happened to be
        ordered on the wire.  A fault-displaced container that the same
        window departs is dropped from the requeue, mirroring a
        departure that raced the failure.
        """
        tick = self.windows
        errors = self._validate_window(window)
        live = [(req, w) for req, w in window if id(req) not in errors]
        departures: list[int] = []
        requeue: list = []
        arrivals: list = []
        faulted: dict[int, list[int]] = {}
        for req, _writer in live:
            if req["type"] == "repair":
                repair_machines(self.state, req["machines"])
        for req, _writer in live:
            if req["type"] == "fault":
                report = fail_machines(self.state, req["machines"])
                displaced = sorted(
                    report.displaced,
                    key=lambda c: (-c.priority, c.container_id),
                )
                faulted[id(req)] = [c.container_id for c in displaced]
                requeue.extend(displaced)
        for req, _writer in live:
            rtype = req["type"]
            if rtype == "depart":
                departures.extend(req["containers"])
            elif rtype == "place":
                departures.extend(req.get("departures", ()))
                arrivals.extend(req["_containers"])
            # "step" contributes nothing beyond forcing the window

        departing = set(departures)
        batch = [
            c for c in requeue if c.container_id not in departing
        ] + arrivals

        sample, schedule = apply_window(
            self.scheduler, self.state,
            tick=tick, departures=departures, batch=batch,
            lifecycle=self.lifecycle,
        )
        warm = self.lifecycle.last_warm if self.lifecycle is not None else {}
        penalties = (
            self.lifecycle.last_penalties if self.lifecycle is not None else {}
        )
        with self._commit_lock:
            record_window(self.result, sample, schedule)
            self._log_decisions(tick, sample, schedule, warm, penalties)
            self.windows += 1

        ckpt = None
        cfg = self.config
        if (
            cfg.checkpoint_every
            and cfg.checkpoint_path
            and self.windows % cfg.checkpoint_every == 0
        ):
            self.write_checkpoint(cfg.checkpoint_path)
            ckpt = cfg.checkpoint_path
        if self.on_window is not None:
            self.on_window(tick, ckpt)

        return self._build_replies(
            window, tick, sample, schedule, faulted, errors, warm, penalties
        )

    def _log_decisions(
        self,
        tick,
        sample,
        schedule: ScheduleResult | None,
        warm=(),
        penalties=(),
    ):
        placements = {
            str(cid): mid for cid, mid in schedule.placements.items()
        } if schedule is not None else {}
        # Warm-pool claims are placements too — they just never reached
        # the scheduler.  Replay clients must see them to book departures.
        for cid, mid in dict(warm).items():
            placements[str(cid)] = mid
        entry = {
            "placements": placements,
            "undeployed": {
                str(cid): reason.value
                for cid, reason in schedule.undeployed.items()
            } if schedule is not None else {},
            "departed": sample.departed_containers,
        }
        if self.lifecycle is not None:
            entry["penalties"] = {
                str(cid): t for cid, t in dict(penalties).items()
            }
            entry["pool"] = sample.pool_size
        self.decisions[tick] = entry
        while len(self.decisions) > self.config.decision_log:
            self.decisions.pop(min(self.decisions))

    def _build_replies(
        self, window, tick, sample, schedule, faulted, errors,
        warm=(), penalties=(),
    ) -> list:
        placements = dict(
            schedule.placements if schedule is not None else {}
        )
        placements.update(dict(warm))
        undeployed = schedule.undeployed if schedule is not None else {}
        penalties = dict(penalties)
        out = []
        for req, writer in window:
            failed = errors.get(id(req))
            if failed is not None:
                out.append((writer, {"status": "error", "error": failed}))
                continue
            rtype = req["type"]
            reply: dict = {"status": "ok", "tick": tick}
            if rtype == "place":
                mine = [c.container_id for c in req["_containers"]]
                reply["placements"] = {
                    str(cid): placements[cid] for cid in mine
                    if cid in placements
                }
                reply["undeployed"] = {
                    str(cid): undeployed[cid].value for cid in mine
                    if cid in undeployed
                }
                reply["departed"] = sum(
                    1 for cid in req.get("departures", ())
                    if cid not in self.state.assignment
                )
                if self.lifecycle is not None:
                    reply["penalties"] = {
                        str(cid): penalties[cid] for cid in mine
                        if cid in penalties
                    }
                    # Replay clients use the pool size to know when the
                    # run has fully drained.
                    reply["pool"] = sample.pool_size
            elif rtype == "depart":
                reply["departed"] = sum(
                    1 for cid in req["containers"]
                    if cid not in self.state.assignment
                )
            elif rtype == "fault":
                displaced = faulted.get(id(req), [])
                reply["displaced"] = displaced
                reply["placements"] = {
                    str(cid): placements[cid] for cid in displaced
                    if cid in placements
                }
                reply["undeployed"] = {
                    str(cid): undeployed[cid].value for cid in displaced
                    if cid in undeployed
                }
            elif rtype == "repair":
                reply["repaired"] = list(req["machines"])
            elif rtype == "step":
                reply["running"] = sample.running_containers
            out.append((writer, reply))
        return out


# ----------------------------------------------------------------------
# thread harness
# ----------------------------------------------------------------------
class ServerThread:
    """Run a :class:`PlacementServer` on a background event loop.

    The in-process harness the tests, docs snippets and benchmarks use:
    ``with ServerThread(server, path):`` serves on ``path`` until the
    block exits (shutdown is requested and the drain awaited).  The
    context manager re-raises a server crash instead of hiding it.
    """

    def __init__(self, server: PlacementServer, socket_path: str) -> None:
        self.server = server
        self.socket_path = socket_path
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="aladdin-serve", daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self.server.run(self.socket_path, ready=self._ready))
        except BaseException as exc:  # surfaced by stop()/__exit__
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        became_ready = self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not became_ready:
            raise RuntimeError(
                "serve thread did not become ready within 30s"
            )
        return self

    def stop(self, timeout: float = 60) -> None:
        self.server.request_stop()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve thread did not drain in time")
        if self._error is not None:
            raise self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
