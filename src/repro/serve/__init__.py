"""Live placement serving — the asyncio front-end over the scheduler.

The package turns the repository's batch/simulated scheduling substrate
into a serving system: :mod:`repro.serve.protocol` defines the
length-prefixed JSON wire format, :mod:`repro.serve.server` coalesces
client requests into scheduling windows and applies them through the
same :func:`repro.sim.online.apply_window` path the simulator uses (the
source of the served ≡ simulated bit-identity guarantee),
:mod:`repro.serve.client` is the blocking client plus the differential
replay driver, and :mod:`repro.serve.loadgen` the closed-loop load
generator behind ``BENCH_serve.json``.
"""

from repro.serve.client import ServeClient, ServeError, replay_online_schedule
from repro.serve.loadgen import LoadResult, run_load, synthetic_batch
from repro.serve.protocol import (
    CONTROL_TYPES,
    MAX_FRAME,
    REQUEST_TYPES,
    WINDOW_TYPES,
    ProtocolError,
    container_from_wire,
    container_to_wire,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    validate_request,
)
from repro.serve.server import (
    SNAPSHOT_KIND,
    PlacementServer,
    ServeConfig,
    ServerThread,
)

__all__ = [
    "CONTROL_TYPES",
    "MAX_FRAME",
    "REQUEST_TYPES",
    "SNAPSHOT_KIND",
    "WINDOW_TYPES",
    "LoadResult",
    "PlacementServer",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "container_from_wire",
    "container_to_wire",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "replay_online_schedule",
    "run_load",
    "send_frame",
    "synthetic_batch",
    "validate_request",
]
