"""Length-prefixed JSON wire protocol of the placement service.

Every message — request or reply — is one *frame*: a 4-byte big-endian
unsigned payload length followed by that many bytes of UTF-8 JSON
encoding a single object.  Framing is deliberately dumb: it survives
partial reads (both ends read exactly the declared length), rejects
frames above :data:`MAX_FRAME` before allocating them, and turns every
malformed byte sequence into a :class:`ProtocolError` instead of a
half-parsed request.

Request objects carry a ``type`` key.  *Window* types
(:data:`WINDOW_TYPES`) are admitted into the server's bounded queue and
coalesced into scheduling windows; *control* types are answered inline
and never consume queue capacity:

========== ===============================================================
type       payload
========== ===============================================================
place      ``containers``: container objects; optional ``departures``
depart     ``containers``: container ids to evict
fault      ``machines``: machine ids to fail (displaced are requeued)
repair     ``machines``: machine ids to bring back
step       force an (otherwise empty) window boundary
ping       liveness probe (control)
stats      service + scheduler counters, queue depth (control)
result     the run's canonical JSON so far (control)
decisions  ``tick``: re-fetch a committed window's decisions (control)
shutdown   drain the queue, then stop serving (control)
========== ===============================================================

Replies carry ``status``: ``"ok"``, ``"rejected"`` (the 429-style
backpressure answer, with ``retry_after`` seconds) or ``"error"``.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.cluster.container import Container

#: hard frame-size ceiling (a 10k-machine window reply is ~1 MB)
MAX_FRAME = 32 << 20
_LEN = struct.Struct(">I")

#: request types that enter the bounded queue and form windows
WINDOW_TYPES = frozenset({"place", "depart", "fault", "repair", "step"})
#: request types answered inline, outside the admission queue
CONTROL_TYPES = frozenset(
    {"ping", "stats", "result", "decisions", "shutdown"}
)
REQUEST_TYPES = WINDOW_TYPES | CONTROL_TYPES

#: wire fields of a container object, in canonical order
_CONTAINER_FIELDS = (
    "container_id", "app_id", "instance", "cpu", "mem_gb", "priority",
)


class ProtocolError(ValueError):
    """A frame or request violates the wire protocol."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: Any) -> bytes:
    """One wire frame holding ``obj`` as compact JSON."""
    data = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    if len(data) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LEN.pack(len(data)) + data


def _decode_payload(data: bytes) -> dict:
    try:
        obj = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame(reader) -> dict | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the *middle* of a frame — or a declared length above
    :data:`MAX_FRAME` — raises :class:`ProtocolError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"declared frame length {length} exceeds MAX_FRAME")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)}/{length} bytes into a frame"
        ) from exc
    return _decode_payload(data)


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Blocking counterpart of :func:`read_frame`'s producer side."""
    sock.sendall(encode_frame(obj))


def recv_frame(sock: socket.socket) -> dict | None:
    """Blocking frame read; ``None`` on clean EOF, error mid-frame."""
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"declared frame length {length} exceeds MAX_FRAME")
    data = _recv_exact(sock, length, eof_ok=False)
    return _decode_payload(data)


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if eof_ok and got == 0:
                return None
            raise ProtocolError(
                f"connection closed {got}/{n} bytes into a frame"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# container marshalling
# ----------------------------------------------------------------------
def container_to_wire(c: Container) -> dict:
    """JSON-safe form of one container."""
    return {
        "container_id": c.container_id,
        "app_id": c.app_id,
        "instance": c.instance,
        "cpu": c.cpu,
        "mem_gb": c.mem_gb,
        "priority": c.priority,
    }


def container_from_wire(obj: Any) -> Container:
    """Parse one wire container, or raise :class:`ProtocolError`."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"container must be an object, got {obj!r}")
    missing = [f for f in _CONTAINER_FIELDS if f not in obj]
    if missing:
        raise ProtocolError(f"container is missing fields {missing}")
    try:
        return Container(
            container_id=int(obj["container_id"]),
            app_id=int(obj["app_id"]),
            instance=int(obj["instance"]),
            cpu=float(obj["cpu"]),
            mem_gb=float(obj["mem_gb"]),
            priority=int(obj["priority"]),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad container field: {exc}") from exc


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def _int_list(obj: Any, field: str, what: str) -> list[int]:
    value = obj.get(field)
    if not isinstance(value, list) or not all(
        isinstance(x, int) and not isinstance(x, bool) for x in value
    ):
        raise ProtocolError(f"{what}: {field!r} must be a list of integers")
    return value


def validate_request(obj: dict) -> dict:
    """Check a decoded request frame against the protocol table.

    Returns ``obj`` (with containers parsed into ``_containers`` for
    ``place``) so the server never touches unvalidated fields; raises
    :class:`ProtocolError` with a client-presentable message otherwise.
    """
    rtype = obj.get("type")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {rtype!r} "
            f"(known: {', '.join(sorted(REQUEST_TYPES))})"
        )
    if rtype == "place":
        containers = obj.get("containers", [])
        if not isinstance(containers, list):
            raise ProtocolError("place: 'containers' must be a list")
        obj["_containers"] = [container_from_wire(c) for c in containers]
        if "departures" in obj:
            _int_list(obj, "departures", "place")
    elif rtype == "depart":
        _int_list(obj, "containers", "depart")
    elif rtype in ("fault", "repair"):
        machines = _int_list(obj, "machines", rtype)
        if not machines:
            raise ProtocolError(f"{rtype}: 'machines' must be non-empty")
    elif rtype == "decisions":
        tick = obj.get("tick")
        if not isinstance(tick, int) or isinstance(tick, bool):
            raise ProtocolError("decisions: 'tick' must be an integer")
    return obj
