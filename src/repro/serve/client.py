"""Blocking client for the placement service, plus the replay driver.

:class:`ServeClient` is the synchronous counterpart of the asyncio
server: one unix-socket connection, one frame out, one frame back.  It
is what the tests, the load generator and the benchmark use — and what
an operator poking at a live server with a REPL would use.

:func:`replay_online_schedule` is the serving-mode differential's
engine: it recomputes the simulator's seeded arrival/departure plan
(:func:`repro.sim.online.arrival_schedule`) and drives it through a
live server **one request per simulated tick**, so the server's window
counter stays aligned with the simulator's tick counter and the two
runs apply byte-identical windows.
"""

from __future__ import annotations

import socket
import time

from repro.serve.protocol import container_to_wire, recv_frame, send_frame
from repro.sim.online import (
    OnlineConfig,
    arrival_schedule,
    lifecycle_horizon_tail,
)
from repro.trace.schema import Trace


class ServeError(RuntimeError):
    """The server answered ``status: error``."""


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.PlacementServer`.

    ``connect_timeout`` covers the wait for the socket to appear —
    subprocess-spawned servers need a moment to bind.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float = 120.0,
        connect_timeout: float = 30.0,
    ) -> None:
        self.socket_path = socket_path
        deadline = time.monotonic() + connect_timeout
        while True:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self._sock.connect(socket_path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                self._sock.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
        self._sock.settimeout(timeout)

    # ------------------------------------------------------------------
    def request(self, obj: dict) -> dict:
        """One request/reply round-trip; raises on connection loss."""
        send_frame(self._sock, obj)
        reply = recv_frame(self._sock)
        if reply is None:
            raise ConnectionError("server closed the connection")
        return reply

    def _checked(self, obj: dict) -> dict:
        reply = self.request(obj)
        if reply.get("status") == "error":
            raise ServeError(reply.get("error", "unknown server error"))
        return reply

    # -- window requests ------------------------------------------------
    def place(
        self, containers, departures=(), *, honor_retry: bool = True
    ) -> dict:
        """Submit a placement batch (optionally with departures).

        With ``honor_retry`` (the default), a 429-style rejection is
        retried after the server's ``retry_after`` hint until admitted —
        the well-behaved closed-loop client.  Without it, the rejection
        reply is returned as-is.
        """
        req = {
            "type": "place",
            "containers": [container_to_wire(c) for c in containers],
            "departures": list(departures),
        }
        while True:
            reply = self._checked(req)
            if reply.get("status") != "rejected" or not honor_retry:
                return reply
            time.sleep(reply.get("retry_after", 0.05))

    def depart(self, container_ids) -> dict:
        return self._checked(
            {"type": "depart", "containers": list(container_ids)}
        )

    def fault(self, machine_ids) -> dict:
        return self._checked({"type": "fault", "machines": list(machine_ids)})

    def repair(self, machine_ids) -> dict:
        return self._checked({"type": "repair", "machines": list(machine_ids)})

    def step(self) -> dict:
        """Force an empty window boundary."""
        return self._checked({"type": "step"})

    # -- control requests ----------------------------------------------
    def ping(self) -> bool:
        return bool(self._checked({"type": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self._checked({"type": "stats"})

    def result(self) -> str:
        """The served run's canonical JSON so far."""
        return self._checked({"type": "result"})["canonical"]

    def decisions(self, tick: int) -> dict:
        """Re-fetch a committed window's decisions from the server log."""
        return self._checked({"type": "decisions", "tick": tick})

    def shutdown(self) -> dict:
        return self._checked({"type": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# serving-mode replay
# ----------------------------------------------------------------------
def replay_online_schedule(
    client: ServeClient,
    trace: Trace,
    config: OnlineConfig,
    *,
    decisions: dict | None = None,
    start_tick: int = 0,
) -> dict:
    """Drive the simulator's seeded schedule through a live server.

    Mirrors :meth:`repro.sim.online.OnlineSimulator._run` request for
    request: every simulated tick becomes exactly one ``place`` request
    carrying that tick's departures and arrivals (idle ticks included,
    so server windows stay tick-aligned), and future departures are
    booked from the placements each reply reports — the same
    read-your-writes bookkeeping the simulator does in-process.

    ``decisions`` (tick → reply) is mutated in place as replies land,
    so a caller that loses the connection mid-replay keeps the partial
    transcript.  On resume, pass the transcript back with ``start_tick``
    set to the server's committed window count: pre-crash ticks replay
    from the transcript, and a tick whose reply was lost to the crash
    (committed but never delivered) is re-fetched from the server's
    decision log instead of re-sent.

    Returns the completed transcript.
    """
    sched = arrival_schedule(trace, config)
    departures: dict[int, list[int]] = {}
    idx = 0
    if decisions is None:
        decisions = {}
    # Autoscale runs outlive the nominal horizon: cold-start penalties
    # push departures later and pooled containers drain one keep-alive
    # after the last departure — the same stretch the simulator applies.
    horizon = sched.horizon + lifecycle_horizon_tail(config)
    for tick in range(horizon):
        deps = departures.pop(tick, ())
        batch = []
        while idx < len(sched.apps) and sched.arrival_tick[idx] <= tick:
            app = sched.apps[idx]
            batch.extend(sched.by_app[app.app_id])
            idx += 1

        if tick in decisions:
            reply = decisions[tick]
        elif tick < start_tick:
            # Committed before the crash but the reply never arrived:
            # recover it from the server's decision log.
            reply = client.decisions(tick)
            decisions[tick] = reply
        else:
            reply = client.place(batch, departures=deps)
            decisions[tick] = reply

        placed = reply["placements"]
        penalties = reply.get("penalties", {})
        for c in batch:
            cid = str(c.container_id)
            if cid in placed:
                # Same booking rule as the simulator: a cold start
                # extends the container's residency.
                end = (
                    tick
                    + sched.life_of[c.app_id]
                    + penalties.get(cid, 0)
                )
                departures.setdefault(end, []).append(c.container_id)
        if (
            idx >= len(sched.apps)
            and not departures
            and reply.get("pool", 0) == 0
        ):
            break
    return decisions
