"""Closed-loop load generator for the placement service.

``clients`` worker threads each hold one connection and run the
classic closed loop: send a placement batch, wait for the decision,
immediately send the next.  Offered load is therefore
``clients / mean_latency`` — raising ``clients`` raises pressure until
the admission queue saturates and the server starts answering with
429-style rejections.

Each worker recycles its containers: the batch it places in iteration
*k* departs in iteration *k + 1* (as the ``departures`` field of the
next ``place`` request), so the cluster reaches a steady churn state
instead of monotonically filling — the regime the SLO numbers in
``BENCH_serve.json`` are quoted for.

Two invariant-relevant counting rules:

* ``sent`` counts every window-type *frame* put on the wire, retries
  included — the figure the backpressure property test compares against
  the server's ``requests_admitted + requests_rejected``.
* latency is measured per *admitted* decision only (send → decision
  reply); rejected sends are counted, not timed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cluster.container import Container
from repro.serve.client import ServeClient


@dataclass
class LoadResult:
    """Aggregate outcome of one load-generation run."""

    #: window-type frames sent (retries of rejected requests included)
    sent: int = 0
    #: requests that received a decision reply
    decided: int = 0
    #: requests answered with a 429-style rejection
    rejected: int = 0
    #: connection-level failures (should be 0 in a healthy run)
    errors: int = 0
    #: wall time of the whole run
    duration_s: float = 0.0
    #: per-decision latency samples, seconds
    latencies_s: list[float] = field(default_factory=list)
    #: containers placed across all decided requests
    containers_placed: int = 0

    @property
    def throughput_rps(self) -> float:
        """Decided requests per second, sustained over the run."""
        return self.decided / self.duration_s if self.duration_s else 0.0

    def latency_percentile(self, q: float) -> float:
        """``q``-th latency percentile in seconds (nearest-rank)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[rank]

    def summary(self) -> dict:
        """JSON-ready digest (the ``BENCH_serve.json`` payload core)."""
        return {
            "sent": self.sent,
            "decided": self.decided,
            "rejected": self.rejected,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": round(self.throughput_rps, 1),
            "containers_placed": self.containers_placed,
            "latency_ms": {
                "p50": round(self.latency_percentile(0.50) * 1e3, 3),
                "p99": round(self.latency_percentile(0.99) * 1e3, 3),
                "max": round(max(self.latencies_s, default=0.0) * 1e3, 3),
            },
        }


def synthetic_batch(
    worker: int, iteration: int, batch_size: int, *,
    cpu: float = 4.0, mem_gb: float = 8.0,
) -> list[Container]:
    """A placement batch with globally unique ids per (worker, iteration).

    Ids are partitioned per worker (stride 1 000 000) and offset by
    10 000 000 so they can never collide with trace container ids.
    """
    base = 10_000_000 + worker * 1_000_000 + iteration * batch_size
    app_id = 100_000 + worker * 10_000 + iteration
    return [
        Container(
            container_id=base + i,
            app_id=app_id,
            instance=i,
            cpu=cpu,
            mem_gb=mem_gb,
            priority=5,
        )
        for i in range(batch_size)
    ]


def run_load(
    socket_path: str,
    *,
    clients: int = 4,
    duration_s: float = 5.0,
    batch_size: int = 8,
    honor_retry: bool = True,
    cpu: float = 4.0,
    mem_gb: float = 8.0,
    worker_offset: int = 0,
) -> LoadResult:
    """Drive a server with ``clients`` closed-loop workers.

    With ``honor_retry`` rejections back off per the server's hint and
    re-send (benchmark mode: every request eventually decided); without
    it a rejection ends that iteration immediately (backpressure-test
    mode: maximal sustained pressure, rejections left rejected).

    ``worker_offset`` shifts the workers' synthetic-id partitions.  A
    run always leaves each worker's final batch resident (nothing
    departs it), so back-to-back runs against one server — a warmup
    before a measured interval, say — must use disjoint offsets or the
    later run eventually re-places a still-assigned container id.
    """
    results = [LoadResult() for _ in range(clients)]
    errors: list[BaseException] = []
    start_gate = threading.Event()

    def worker(w: int) -> None:
        out = results[w]
        try:
            with ServeClient(socket_path) as client:
                start_gate.wait()
                t_end = time.monotonic() + duration_s
                iteration = 0
                previous: list[int] = []
                while time.monotonic() < t_end:
                    batch = synthetic_batch(
                        worker_offset + w, iteration, batch_size,
                        cpu=cpu, mem_gb=mem_gb,
                    )
                    req = {"batch": batch, "departures": previous}
                    t0 = time.monotonic()
                    reply = client.place(
                        req["batch"],
                        departures=req["departures"],
                        honor_retry=False,
                    )
                    out.sent += 1
                    while reply.get("status") == "rejected":
                        out.rejected += 1
                        if not honor_retry:
                            break
                        time.sleep(reply.get("retry_after", 0.05))
                        t0 = time.monotonic()
                        reply = client.place(
                            req["batch"],
                            departures=req["departures"],
                            honor_retry=False,
                        )
                        out.sent += 1
                    if reply.get("status") == "ok":
                        out.decided += 1
                        out.latencies_s.append(time.monotonic() - t0)
                        placed = list(reply.get("placements", {}))
                        out.containers_placed += len(placed)
                        previous = [int(cid) for cid in placed]
                        iteration += 1
                    else:
                        # rejected and not retrying: drop this batch and
                        # move on with fresh ids next iteration
                        previous = []
                        iteration += 1
        except BaseException as exc:  # noqa: BLE001 - tallied, re-raised by caller check
            out.errors += 1
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(clients)
    ]
    for t in threads:
        t.start()
    t_start = time.monotonic()
    start_gate.set()
    for t in threads:
        t.join()
    wall = time.monotonic() - t_start

    total = LoadResult(duration_s=wall)
    for out in results:
        total.sent += out.sent
        total.decided += out.decided
        total.rejected += out.rejected
        total.errors += out.errors
        total.latencies_s.extend(out.latencies_s)
        total.containers_placed += out.containers_placed
    if errors and total.decided == 0:
        raise errors[0]
    return total
