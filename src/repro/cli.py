"""Command-line interface.

``python -m repro <command>`` exposes the reproduction's main entry
points without writing any Python:

* ``gen-trace``   — generate and save a calibrated synthetic trace;
* ``stats``       — print the Fig. 8 workload statistics of a trace;
* ``replay``      — replay a trace through one or more schedulers;
* ``min-cluster`` — the Fig. 10 minimum-cluster-size search;
* ``online``      — the arrival/departure churn simulation;
* ``serve``       — live placement serving over a unix socket;
* ``faults``      — replay, kill machines, recover;
* ``experiments`` — regenerate the full evaluation as markdown.

Every command accepts ``--scale`` and ``--seed`` (or ``--load`` for a
previously saved trace) and prints the same tables the benchmark
harness emits.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import SCHEDULERS
from repro.core import AladdinConfig, AladdinScheduler
from repro.report import format_series, format_table, metrics_table
from repro.sim import Simulator, minimum_cluster_size
from repro.trace import (
    SCENARIOS,
    ArrivalOrder,
    generate_trace,
    load_trace,
    save_trace,
    workload_stats,
)

#: CLI scheduler names → factories (registry plus Aladdin variants).
def _scheduler_factories() -> dict[str, object]:
    out = {name: factory for name, (factory, _) in SCHEDULERS.items()}
    out["Aladdin"] = lambda: AladdinScheduler()
    out["Aladdin-noopt"] = lambda: AladdinScheduler(
        AladdinConfig(enable_il=False, enable_dl=False)
    )
    return out


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05,
                        help="trace scale relative to the paper's (default 0.05)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--load", metavar="STEM",
                        help="load a saved trace instead of generating one")


def _trace_from(args) -> object:
    if args.load:
        return load_trace(args.load)
    return generate_trace(scale=args.scale, seed=args.seed)


def _order_from(args) -> ArrivalOrder:
    return ArrivalOrder(args.order)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    """The workload-source flags shared by ``online`` and ``serve``."""
    parser.add_argument("--trace", dest="trace_source", default="synthetic",
                        choices=["synthetic", "azure"],
                        help="workload source: the calibrated Alibaba-style "
                             "generator (default) or the Azure Functions "
                             "2019 serverless trace (see docs/WORKLOADS.md)")
    parser.add_argument("--scenario", default=None,
                        choices=sorted(SCENARIOS),
                        help="scenario family for --trace azure "
                             "(default: diurnal)")
    parser.add_argument("--azure-data", metavar="DIR", default=None,
                        help="directory holding the Azure Functions 2019 "
                             "CSVs; omitted = the seeded synthetic "
                             "fallback, so no download is ever required")


def _workload_trace(args) -> tuple[object, str | None]:
    """(trace, scenario name or None) from the workload flags."""
    if getattr(args, "trace_source", "synthetic") != "azure":
        if getattr(args, "scenario", None):
            print("--scenario requires --trace azure", file=sys.stderr)
            raise SystemExit(2)
        return _trace_from(args), None
    from repro.trace import TraceConfig, azure_dataset, build_scenario

    scenario = args.scenario or "diurnal"
    if args.load:
        # A saved scenario trace is self-describing (arrival plan in
        # the names); only the nominal cluster scale must be re-attached.
        trace = load_trace(
            args.load, config=TraceConfig(scale=args.scale, seed=args.seed)
        )
    else:
        dataset = azure_dataset(args.azure_data, seed=args.seed)
        trace = build_scenario(
            scenario, dataset,
            scale=args.scale, seed=args.seed, ticks=args.ticks,
        )
    return trace, scenario


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_gen_trace(args) -> int:
    trace = generate_trace(scale=args.scale, seed=args.seed)
    apps_path, conflicts_path = save_trace(trace, args.out)
    print(f"wrote {apps_path} and {conflicts_path}")
    print(f"  {trace.n_apps} applications, {trace.n_containers} containers")
    return 0


def cmd_stats(args) -> int:
    trace = _trace_from(args)
    rows = [[k, v] for k, v in workload_stats(trace).as_rows()]
    print(format_table(["metric", "value"], rows, title="Workload statistics"))
    return 0


def cmd_replay(args) -> int:
    trace = _trace_from(args)
    factories = _scheduler_factories()
    names = args.schedulers or list(factories)
    unknown = [n for n in names if n not in factories]
    if unknown:
        print(f"unknown schedulers: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(factories)}", file=sys.stderr)
        return 2
    sim = Simulator(
        trace,
        n_machines=args.machines,
        machine_pool_factor=args.pool_factor,
    )
    metrics = []
    for name in names:
        result = sim.run(factories[name](), _order_from(args))
        metrics.append(result.metrics)
        print(result.summary())
        tele = result.schedule.telemetry
        if tele is not None and tele.counters() != type(tele)().counters():
            print(f"  telemetry: {tele.summary()}")
    print()
    print(metrics_table(metrics, title=f"Replay [{args.order}]"))
    return 0


def cmd_min_cluster(args) -> int:
    trace = _trace_from(args)
    factories = _scheduler_factories()
    names = args.schedulers or ["Aladdin", "Go-Kube"]
    rows = []
    for name in names:
        if name not in factories:
            print(f"unknown scheduler {name}", file=sys.stderr)
            return 2
        n = minimum_cluster_size(trace, factories[name], _order_from(args))
        rows.append([name, n])
        print(f"{name}: {n} machines")
    print()
    print(format_table(["scheduler", "machines used"], rows,
                       title=f"Minimum cluster size [{args.order}]"))
    return 0


def cmd_online(args) -> int:
    from repro.sim.online import OnlineConfig, OnlineSimulator

    trace, scenario = _workload_trace(args)
    factories = _scheduler_factories()
    if args.scheduler not in factories:
        print(f"unknown scheduler {args.scheduler}", file=sys.stderr)
        return 2
    if scenario is not None:
        print(f"workload: azure scenario={scenario} "
              f"({trace.n_apps} apps, {trace.n_containers} containers)")
    sim = OnlineSimulator(
        trace,
        OnlineConfig(
            ticks=args.ticks,
            arrival_order=_order_from(args),
            seed=args.seed,
            scenario=scenario,
            **_autoscale_kwargs(args),
        ),
    )
    scheduler = _aladdin_variant(args, factories)
    on_checkpoint = None
    if args.crash_at_tick is not None:
        import os
        import signal

        def on_checkpoint(tick, path, _k=args.crash_at_tick):
            # Crash-injection for the resume tests: die hard (no
            # cleanup, no atexit) once a snapshot at or past tick _k
            # is durably on disk.
            if tick >= _k:
                os.kill(os.getpid(), signal.SIGKILL)

    result = sim.run(
        scheduler,
        checkpoint_every=args.checkpoint_every or None,
        checkpoint_path=args.checkpoint,
        restore_from=args.restore,
        on_checkpoint=on_checkpoint,
    )
    if args.canonical_out:
        from pathlib import Path

        Path(args.canonical_out).write_text(result.canonical_json())
        print(f"wrote canonical metrics to {args.canonical_out}")
    step = max(1, len(result.samples) // 20)
    print(format_series(
        "running containers over time",
        result.series("running_containers")[::step],
    ))
    print(f"\narrived {result.total_arrived}, departed "
          f"{result.total_departed}, failed {result.total_failed} "
          f"({result.failure_rate:.1%}), peak machines "
          f"{result.peak_used_machines}, migrations {result.total_migrations}")
    if args.autoscale:
        from repro.sim.metrics import power_metrics

        pm = power_metrics(result, sim._topology.n_machines)
        print(f"power: {pm.machine_ticks} machine-ticks "
              f"(always-on {pm.always_on_machine_ticks}, "
              f"{pm.savings_pct:.1f}% saved), peak powered "
              f"{pm.peak_powered}, warm hits {pm.warm_hits}, "
              f"cold starts {pm.cold_starts} "
              f"({pm.cold_start_rate:.1%} of arrivals)")
    tele = result.telemetry
    if tele.counters() != type(tele)().counters():
        print(f"telemetry: {tele.summary()}")
        print(f"scheduling wall time {result.total_elapsed_s * 1000:.1f} ms "
              f"across {sum(1 for s in result.samples if s.arrived_containers)}"
              " rounds")
    if args.profile:
        _write_profile(args.profile, result)
    return 0


#: one-shot guard for the oversubscription warning (warn once per
#: process, however many schedulers an invocation constructs)
_workers_warned = False


def _warn_oversubscribed_workers(workers: int) -> None:
    """Warn once when ``--workers`` exceeds the visible CPU count.

    Oversubscribed shard workers time-slice against each other, so the
    parallel sweep usually runs *slower* than at ``--workers
    os.cpu_count()`` — surprising enough to flag, but legitimate for
    testing, so a warning rather than an error.
    """
    global _workers_warned
    import os

    cpus = os.cpu_count() or 1
    if workers > cpus and not _workers_warned:
        _workers_warned = True
        print(
            f"warning: --workers {workers} exceeds the {cpus} CPUs "
            f"visible to this process; shard workers will oversubscribe "
            f"cores (placements stay bit-identical, wall time usually "
            f"worse than --workers {cpus})",
            file=sys.stderr,
        )


def _write_profile(path: str, result) -> None:
    """Write the per-tick, per-phase wall-time breakdown (``--profile``).

    The JSON carries the run-level ``phase_time_s`` totals (window
    phases from :func:`repro.sim.online.apply_window` plus the
    scheduler's search/rescue/requeue/repair phases) and the same
    breakdown per tick — wall times, so *not* part of the canonical
    metrics; use ``--canonical-out`` for bit-identity comparisons.
    """
    import json
    from pathlib import Path

    payload = {
        "total_elapsed_s": round(result.total_elapsed_s, 6),
        "phase_time_s": {
            name: round(dt, 6)
            for name, dt in sorted(result.telemetry.phase_time_s.items())
        },
        "ticks": [
            {
                "tick": s.tick,
                "arrived": s.arrived_containers,
                "departed": s.departed_containers,
                "phase_s": {
                    name: round(dt, 6)
                    for name, dt in sorted(s.phase_s.items())
                },
            }
            for s in result.samples
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote per-phase profile to {path}")


def _aladdin_variant(args, factories):
    """The scheduler an ``online``/``serve`` invocation asked for."""
    if args.workers > 1:
        _warn_oversubscribed_workers(args.workers)
    if args.scheduler == "Aladdin" and (
        args.no_cache or args.no_batch or args.no_rescue_kernel
        or args.workers > 1 or args.engine != "batch"
        or args.solver_objective != "packing" or args.rebalance_shards
    ):
        from repro.core import engine_for

        return engine_for(
            AladdinConfig(
                enable_feasibility_cache=not args.no_cache,
                enable_batch_kernel=not args.no_batch,
                enable_rescue_kernel=not args.no_rescue_kernel,
                workers=args.workers,
                engine=args.engine,
                solver_objective=args.solver_objective,
                shard_rebalance=args.rebalance_shards,
            )
        )
    return factories[args.scheduler]()


def cmd_serve(args) -> int:
    import asyncio

    from repro.cluster.state import ClusterState
    from repro.serve import PlacementServer, ServeConfig
    from repro.sim.lifecycle import lifecycle_from_config
    from repro.sim.online import OnlineConfig, pool_topology

    trace, scenario = _workload_trace(args)
    factories = _scheduler_factories()
    if args.scheduler not in factories:
        print(f"unknown scheduler {args.scheduler}", file=sys.stderr)
        return 2
    scheduler = _aladdin_variant(args, factories)
    online_cfg = OnlineConfig(
        ticks=args.ticks,
        arrival_order=_order_from(args),
        seed=args.seed,
        machine_pool_factor=args.pool_factor,
        scenario=scenario,
        **_autoscale_kwargs(args),
    )
    topology = pool_topology(trace, online_cfg)
    lifecycle = lifecycle_from_config(trace, online_cfg, topology.n_machines)
    serve_cfg = ServeConfig(
        max_queue=args.max_queue,
        window_max=args.window_max,
        retry_after_s=args.retry_after,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
    )
    on_window = None
    if args.crash_after_window is not None:
        import os
        import signal

        def on_window(tick, ckpt, _k=args.crash_after_window):
            # Crash-injection for the serve fault tests: die hard
            # after the first checkpointed window at or past _k — the
            # window is committed and its snapshot durable, but no
            # reply has gone out yet.
            if tick >= _k and ckpt is not None:
                os.kill(os.getpid(), signal.SIGKILL)

    if args.restore:
        server = PlacementServer.restore(
            args.restore, scheduler, topology, trace.constraints,
            serve_cfg, on_window=on_window, lifecycle=lifecycle,
        )
    else:
        server = PlacementServer(
            scheduler, ClusterState(topology, trace.constraints),
            serve_cfg, on_window=on_window, lifecycle=lifecycle,
        )
    print(f"serving on {args.socket}: {topology.n_machines} machines, "
          f"scheduler {scheduler.name}, queue bound {args.max_queue}, "
          f"window max {args.window_max}", flush=True)
    asyncio.run(server.run(args.socket))
    print(f"served {server.windows} windows; {server.telemetry.summary()}")
    if args.profile:
        _write_profile(args.profile, server.result)
    return 0


def cmd_experiments(args) -> int:
    from repro.report import ExperimentOptions, run_all_experiments

    trace = _trace_from(args)
    options = ExperimentOptions(
        include_fig10=not args.quick,
        include_fig12=not args.quick,
    )
    report = run_all_experiments(trace, options)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def cmd_faults(args) -> int:
    from repro.sim.faults import fail_machines, random_failures, recover

    import numpy as np

    trace = _trace_from(args)
    sim = Simulator(trace, machine_pool_factor=args.pool_factor)
    run = sim.run(AladdinScheduler(), _order_from(args))
    state = run.state
    victims = random_failures(
        state, args.failures, rng=np.random.default_rng(args.seed)
    )
    report = fail_machines(state, victims)
    recover(report, state, AladdinScheduler())
    print(f"failed machines: {victims}")
    print(f"displaced {report.n_displaced} containers; recovered "
          f"{report.recovered}, lost {report.lost} "
          f"(migrations {report.recovery_migrations})")
    sizes = {a.app_id: a.n_containers for a in trace.applications}
    print(f"worst per-app downtime fraction: "
          f"{report.max_app_downtime_fraction(sizes):.1%}")
    print(f"violations after recovery: {state.anti_affinity_violations()}")
    return 0


# ----------------------------------------------------------------------
def _add_variant_args(parser: argparse.ArgumentParser) -> None:
    """The Aladdin ablation axes shared by ``online`` and ``serve``."""
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cross-round feasibility cache "
                             "(Aladdin only; cached-vs-cold ablation)")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable the batched block placement kernel "
                             "(Aladdin only; batched-vs-loop ablation)")
    parser.add_argument("--no-rescue-kernel", action="store_true",
                        help="plan rescues with the legacy per-machine loop "
                             "instead of the vectorized rescue kernel "
                             "(Aladdin only; decisions are bit-identical "
                             "either way)")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the rack-sharded parallel sweep "
                             "(Aladdin only; 1 = serial, placements are "
                             "bit-identical either way)")
    parser.add_argument("--engine", default="batch",
                        choices=["batch", "flow", "solver"],
                        help="placement engine (Aladdin only): the "
                             "vectorised incremental scheduler (default), "
                             "the flow-network reference, or the one-shot "
                             "LP window solver (needs the 'solver' extra)")
    parser.add_argument("--solver-objective", default="packing",
                        choices=["packing", "maxmin"],
                        help="window-LP objective for --engine solver: "
                             "weighted packing (default) or two-phase "
                             "max-min fairness over per-app placed "
                             "fractions")
    parser.add_argument("--rebalance-shards", action="store_true",
                        help="resize the parallel sweep's shards by "
                             "per-rack resident density at checkpoint "
                             "boundaries (Aladdin with --workers > 1; "
                             "placements are unchanged, worker cache "
                             "telemetry differs)")
    parser.add_argument("--profile", metavar="PATH",
                        help="write a per-tick, per-phase wall-time "
                             "breakdown (window apply, departures, "
                             "sampling, scheduler phases) to PATH as "
                             "JSON after the run")


def _add_autoscale_args(parser: argparse.ArgumentParser) -> None:
    """Warm-pool / power-lifecycle knobs shared by ``online`` and
    ``serve``.  All of them are inert without ``--autoscale`` — the
    default-off run stays bit-identical to a build without the feature.
    """
    from repro.sim.lifecycle import KEEP_ALIVE_CHOICES

    parser.add_argument("--autoscale", action="store_true",
                        help="enable the machine power lifecycle (drain "
                             "idle machines to off, wake on demand) and "
                             "the warm container pool; off by default "
                             "and bit-identical to today's runs when "
                             "off")
    parser.add_argument("--keep-alive", default="fixed",
                        choices=list(KEEP_ALIVE_CHOICES),
                        help="warm-pool keep-alive policy (with "
                             "--autoscale): fixed window, ttl "
                             "(refresh-on-hit), lru (evict-oldest on "
                             "overflow), or none (no pool — every "
                             "function placement cold-starts)")
    parser.add_argument("--keep-alive-ticks", type=int, default=4,
                        metavar="N",
                        help="ticks a pooled container stays warm "
                             "(default 4)")
    parser.add_argument("--pool-capacity", type=int, default=256,
                        metavar="N",
                        help="most containers the warm pool parks at "
                             "once (default 256)")
    parser.add_argument("--cold-start-ticks", type=int, default=2,
                        metavar="N",
                        help="extra lifetime ticks a cold-started "
                             "function container occupies (default 2)")
    parser.add_argument("--drain-ticks", type=int, default=1, metavar="N",
                        help="ticks a draining machine lingers before "
                             "powering off (default 1)")
    parser.add_argument("--min-on", type=int, default=1, metavar="N",
                        help="machines the drain planner always keeps "
                             "powered (default 1)")
    parser.add_argument("--power-headroom", type=float, default=1.0,
                        metavar="X",
                        help="spare capacity the planner keeps, in "
                             "mean-machine-CPU units (default 1.0)")


def _autoscale_kwargs(args) -> dict:
    """The :class:`~repro.sim.online.OnlineConfig` kwargs carried by
    the ``--autoscale`` flag family."""
    return {
        "autoscale": args.autoscale,
        "keep_alive": args.keep_alive,
        "keep_alive_ticks": args.keep_alive_ticks,
        "pool_capacity": args.pool_capacity,
        "cold_start_ticks": args.cold_start_ticks,
        "drain_ticks": args.drain_ticks,
        "min_on": args.min_on,
        "power_headroom": args.power_headroom,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Aladdin (IPDPS 2019): trace "
        "generation, replays and experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-trace", help="generate and save a trace")
    p.add_argument("out", help="output stem (writes <out>.apps.csv etc.)")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_gen_trace)

    p = sub.add_parser("stats", help="Fig. 8 workload statistics")
    _add_trace_args(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("replay", help="replay a trace through schedulers")
    _add_trace_args(p)
    p.add_argument("--schedulers", nargs="*", metavar="NAME",
                   help="subset of schedulers (default: all)")
    p.add_argument("--order", default="trace",
                   choices=[o.value for o in ArrivalOrder])
    p.add_argument("--machines", type=int, default=None)
    p.add_argument("--pool-factor", type=float, default=1.0)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("min-cluster",
                       help="Fig. 10 minimum cluster size per scheduler")
    _add_trace_args(p)
    p.add_argument("--schedulers", nargs="*", metavar="NAME")
    p.add_argument("--order", default="trace",
                   choices=[o.value for o in ArrivalOrder])
    p.set_defaults(fn=cmd_min_cluster)

    p = sub.add_parser("online", help="arrival/departure churn simulation")
    _add_trace_args(p)
    _add_workload_args(p)
    p.add_argument("--scheduler", default="Aladdin")
    p.add_argument("--ticks", type=int, default=50)
    p.add_argument("--order", default="trace",
                   choices=[o.value for o in ArrivalOrder])
    _add_variant_args(p)
    _add_autoscale_args(p)
    p.add_argument("--checkpoint", metavar="PATH",
                   help="write a crash-consistent snapshot to PATH "
                        "every --checkpoint-every ticks")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="N", help="checkpoint period in ticks "
                        "(0 = never; requires --checkpoint)")
    p.add_argument("--restore", metavar="PATH",
                   help="resume from a snapshot written by a previous "
                        "run; finishes bit-identical to an "
                        "uninterrupted run")
    p.add_argument("--canonical-out", metavar="PATH",
                   help="write the run's canonical JSON metrics to "
                        "PATH (for bit-identity comparison)")
    p.add_argument("--crash-at-tick", type=int, default=None, metavar="K",
                   help="SIGKILL the process after the first snapshot "
                        "at or past tick K (crash-resume testing)")
    p.set_defaults(fn=cmd_online)

    p = sub.add_parser("serve",
                       help="serve live placement requests over a socket")
    _add_trace_args(p)
    _add_workload_args(p)
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket path to serve on (keep it short: "
                        "the OS caps socket paths at ~100 chars)")
    p.add_argument("--scheduler", default="Aladdin")
    p.add_argument("--ticks", type=int, default=50,
                   help="arrival-phase length assumed by replaying "
                        "clients (part of the run fingerprint)")
    p.add_argument("--order", default="trace",
                   choices=[o.value for o in ArrivalOrder])
    p.add_argument("--pool-factor", type=float, default=1.2,
                   help="machine pool headroom over the trace's nominal "
                        "cluster (default 1.2)")
    _add_variant_args(p)
    _add_autoscale_args(p)
    p.add_argument("--max-queue", type=int, default=1024,
                   help="admission bound: requests beyond this many "
                        "queued are rejected 429-style (default 1024)")
    p.add_argument("--window-max", type=int, default=256,
                   help="most requests one scheduling window coalesces "
                        "(default 256)")
    p.add_argument("--retry-after", type=float, default=0.05,
                   metavar="SECONDS",
                   help="back-off hint carried by rejection replies")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="write a crash-consistent snapshot to PATH "
                        "every --checkpoint-every windows")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="checkpoint period in committed windows "
                        "(0 = never; requires --checkpoint)")
    p.add_argument("--restore", metavar="PATH",
                   help="start warm from a serve snapshot written by a "
                        "previous (possibly SIGKILLed) server")
    p.add_argument("--crash-after-window", type=int, default=None,
                   metavar="K",
                   help="SIGKILL the server after the first checkpointed "
                        "window at or past K, before its replies go out "
                        "(crash-recovery testing)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("experiments",
                       help="regenerate the full evaluation as markdown")
    _add_trace_args(p)
    p.add_argument("--out", help="write the report to a file")
    p.add_argument("--quick", action="store_true",
                   help="skip the slow Fig. 10/12 sections")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("faults", help="fail machines and recover")
    _add_trace_args(p)
    p.add_argument("--failures", type=int, default=5)
    p.add_argument("--order", default="trace",
                   choices=[o.value for o in ArrivalOrder])
    p.add_argument("--pool-factor", type=float, default=1.2)
    p.set_defaults(fn=cmd_faults)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
