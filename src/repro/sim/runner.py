"""Experiment sweeps (the grids behind Figs. 9–13)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.base import Scheduler
from repro.sim.online import OnlineConfig, OnlineResult, OnlineSimulator
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.trace.arrival import ArrivalOrder
from repro.trace.schema import Trace


def run_online(
    trace: Trace,
    scheduler: Scheduler,
    ticks: int = 50,
    seed: int = 0,
    order: ArrivalOrder = ArrivalOrder.TRACE,
    machine_pool_factor: float = 1.2,
) -> OnlineResult:
    """One online (arrival/departure churn) run — the repeated-round
    workload where the cross-round feasibility cache earns its keep.

    The scheduler instance is reused across every tick on purpose:
    cross-round caches only help when they survive rounds, and the
    per-tick telemetry in the returned :class:`OnlineResult` records
    exactly how much they helped.
    """
    sim = OnlineSimulator(
        trace,
        OnlineConfig(
            ticks=ticks,
            arrival_order=order,
            seed=seed,
            machine_pool_factor=machine_pool_factor,
        ),
    )
    return sim.run(scheduler)


def run_experiment(
    trace: Trace,
    schedulers: Iterable[Scheduler],
    orders: Iterable[ArrivalOrder] = (ArrivalOrder.TRACE,),
    n_machines: int | None = None,
    machine_pool_factor: float = 1.0,
) -> list[SimulationResult]:
    """Run every (scheduler, arrival order) pair on a fresh cluster."""
    sim = Simulator(
        trace, n_machines=n_machines, machine_pool_factor=machine_pool_factor
    )
    results: list[SimulationResult] = []
    for order in orders:
        for scheduler in schedulers:
            results.append(sim.run(scheduler, order))
    return results


def minimum_cluster_size(
    trace: Trace,
    scheduler_factory,
    order: ArrivalOrder = ArrivalOrder.TRACE,
    lo: int | None = None,
    hi: int | None = None,
    tolerance: float = 0.02,
) -> int:
    """Smallest cluster on which the scheduler deploys the whole trace
    cleanly (no undeployed containers, no violating placements).

    This is the Fig. 10 quantity ``num(scheduler)``: the paper reports
    Go-Kube needing up to 14,211 machines against Aladdin's 9,242 for
    the same 100k containers.  A binary search over the machine count
    runs the full replay per probe; ``tolerance`` bounds the relative
    gap between the returned value and the true minimum.

    Returns ``hi`` when even the upper bound fails (the scheduler
    cannot cleanly place the trace at any probed size).
    """
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    per_machine = 32.0  # homogeneous Alibaba machines
    if lo is None:
        lo = max(1, int(total_cpu // per_machine))
    if hi is None:
        hi = max(lo + 1, 4 * lo)

    def clean(n: int) -> bool:
        sim = Simulator(trace, n_machines=n)
        result = sim.run(scheduler_factory(), order)
        return (
            result.metrics.n_undeployed == 0
            and result.metrics.n_violating_placements == 0
        )

    if not clean(hi):
        return hi
    while hi - lo > max(1, int(tolerance * hi)):
        mid = (lo + hi) // 2
        if clean(mid):
            hi = mid
        else:
            lo = mid
    return hi


def latency_sweep(
    trace: Trace,
    scheduler_factory,
    machine_counts: Iterable[int],
    order: ArrivalOrder = ArrivalOrder.TRACE,
) -> list[SimulationResult]:
    """The Fig. 12/13 shape: one run per cluster size.

    ``scheduler_factory`` is called once per point so schedulers with
    internal caches cannot leak state between cluster sizes.
    """
    results: list[SimulationResult] = []
    for n in machine_counts:
        sim = Simulator(trace, n_machines=n)
        results.append(sim.run(scheduler_factory(), order))
    return results
