"""Autoscaling window runtime: warm pools + machine power lifecycle.

This module glues :class:`repro.cluster.warmpool.WarmPool` and
:class:`repro.cluster.power.PowerManager` into the shared window logic
of :mod:`repro.sim.online` (and, through it, the serving loop).  One
:class:`LifecycleRuntime` rides along with a run and participates in
every window:

1. **pool intake** (before departures are evicted): containers of
   pool-eligible function apps are *stashed* — parked on their machine
   instead of evicted — while entries whose keep-alive expired join
   the window's eviction list.
2. **warm claims** (before the scheduler runs): arrivals whose pool
   key has a parked container take it over in place — the pooled
   container is evicted and the arrival deployed on the same machine,
   skipping both the scheduler and the cold start.
3. **power step**: the drain planner wakes machines if the remaining
   batch outgrows powered capacity, or seals the idle tail (including
   machines holding only reclaimable pooled containers) when there is
   surplus.
4. **cold-start charging** (after the scheduler): pool-eligible
   placements that missed the pool pay ``cold_start_ticks``, and any
   placement landing on a still-spinning-up machine pays the
   remainder of its cold window.  Penalties are returned as extra
   lifetime ticks — a cold-started container occupies its slot longer,
   which is precisely how cold starts cost machine-hours.

Pool eligibility comes from the scenario naming convention
(:func:`repro.trace.scenarios.function_pool_key`): only ``fn-`` apps
re-arrive under a stable stem, so only they can hit a warm pool.
Everything here is deterministic and checkpointable; a run with a
``LifecycleRuntime`` restores bit-identical mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.power import PowerConfig, PowerManager
from repro.cluster.state import ClusterState
from repro.cluster.warmpool import POLICIES, WarmPool
from repro.trace.scenarios import function_pool_key

#: keep-alive policy names accepted on the CLI: the pool policies plus
#: "none" (no pool at all — every eligible placement cold-starts)
KEEP_ALIVE_CHOICES = ("none",) + POLICIES


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the autoscaling runtime (pool + power planner)."""

    keep_alive: str = "fixed"
    keep_alive_ticks: int = 4
    pool_capacity: int = 256
    cold_start_ticks: int = 2
    drain_ticks: int = 1
    min_on: int = 1
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.keep_alive not in KEEP_ALIVE_CHOICES:
            raise ValueError(
                f"unknown keep-alive policy {self.keep_alive!r}; "
                f"pick from {KEEP_ALIVE_CHOICES}"
            )
        # Pool/power knob validation is delegated to the components.

    def power_config(self) -> PowerConfig:
        return PowerConfig(
            drain_ticks=self.drain_ticks,
            cold_start_ticks=self.cold_start_ticks,
            min_on=self.min_on,
            headroom=self.headroom,
        )


class LifecycleRuntime:
    """Per-run pool + power state, one instance per online run."""

    def __init__(self, trace, config: LifecycleConfig, n_machines: int):
        self.config = config
        #: app_id -> pool key for pool-eligible (function) applications.
        #: The key carries the demand shape so a claim is guaranteed to
        #: free exactly what the arrival needs.
        self._key_of: dict[int, tuple] = {}
        for app in trace.applications:
            stem = function_pool_key(getattr(app, "name", "") or "")
            if stem is not None:
                self._key_of[app.app_id] = (stem, app.cpu, app.mem_gb)
        self.pool = (
            WarmPool(
                policy=config.keep_alive,
                keep_alive_ticks=config.keep_alive_ticks,
                capacity=config.pool_capacity,
            )
            if config.keep_alive != "none"
            else None
        )
        self.power = PowerManager(n_machines, config.power_config())
        self.cold_starts = 0
        #: window-scoped outputs, refreshed each tick by the caller
        self.last_warm: dict[int, int] = {}
        self.last_penalties: dict[int, int] = {}
        self.last_reclaimed = 0
        self.last_woken: list[int] = []
        self.last_cold_starts = 0

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Pooled containers still resident (keeps the run loop alive
        until the pool drains after the last arrival)."""
        return len(self.pool) if self.pool is not None else 0

    # ------------------------------------------------------------------
    def pool_intake(
        self, state: ClusterState, tick: int, departures
    ) -> list[int]:
        """Rewrite a window's departure list through the pool.

        Expired pool entries (deadline order) are prepended for
        eviction; scheduled departures of pool-eligible apps are
        stashed in place of being evicted, with any overflow victims
        taking their slot in the eviction list.
        """
        if self.pool is None:
            return list(departures)
        out = self.pool.evict_before(tick)
        for cid in departures:
            machine = state.assignment.get(cid)
            key = (
                self._key_of.get(state.container(cid).app_id)
                if machine is not None
                else None
            )
            if key is None:
                out.append(cid)
                continue
            out.extend(self.pool.stash(key, cid, machine, tick))
        return out

    def claim_warm(
        self, state: ClusterState, tick: int, batch
    ) -> tuple[list, dict[int, int]]:
        """Serve arrivals from the pool; returns (cold batch, warm map).

        Each warm hit evicts the parked container and deploys the
        arrival on the same machine — identical demand by key
        construction, so the swap always fits.  ``warm`` maps the
        arriving container id to its machine.
        """
        warm: dict[int, int] = {}
        if self.pool is None:
            self.last_warm = warm
            return list(batch), warm
        remaining = []
        for c in batch:
            key = self._key_of.get(c.app_id)
            if key is None:
                remaining.append(c)
                continue

            def accept(cid, m, c=c):
                # Entries can go stale when a fault evicts a pooled
                # container out from under the pool; skip those.
                return (
                    cid in state.assignment
                    and self.power.is_on(m)
                    and not state.would_violate(c, m)
                )

            got = self.pool.claim(key, tick, accept)
            if got is None:
                remaining.append(c)
                continue
            pooled_cid, machine = got
            state.evict(pooled_cid)
            state.deploy(c, machine)
            warm[c.container_id] = machine
        self.last_warm = warm
        return remaining, warm

    def power_step(
        self, state: ClusterState, tick: int, batch
    ) -> tuple[list[int], list[int], int]:
        """Run the drain planner for this window's remaining batch."""
        demand_cpu = 0.0
        for c in batch:
            demand_cpu += c.cpu
        reclaimable: dict[int, list[int]] = {}
        if self.pool is not None:
            for m, cids in self.pool.by_machine().items():
                residents = state.machine_containers.get(m)
                if residents and len(cids) == len(residents):
                    reclaimable[m] = cids
        woken, drained, reclaimed = self.power.step(
            state, tick, demand_cpu, reclaimable=reclaimable
        )
        if reclaimed:
            for cid in reclaimed:
                self.pool.discard(cid)
            state.evict_block(reclaimed)
            # Eviction re-credited the reclaimed demand onto rows the
            # planner just sealed; zero them again.
            self.power.seal_reclaimed(state, drained)
        self.last_woken = woken
        self.last_reclaimed = len(reclaimed)
        return woken, drained, len(reclaimed)

    def charge(self, tick: int, schedule, batch) -> dict[int, int]:
        """Cold-start penalties (extra lifetime ticks) for this window's
        scheduled placements.  Warm claims pay nothing."""
        pen: dict[int, int] = {}
        window_cold = 0
        placements = schedule.placements if schedule is not None else {}
        for c in batch:
            machine = placements.get(c.container_id)
            if machine is None:
                continue
            ticks = 0
            if c.app_id in self._key_of:
                # Pool-eligible but not served warm: function cold start.
                ticks += self.config.cold_start_ticks
                window_cold += 1
            ticks += self.power.cold_penalty(machine, tick)
            if ticks:
                pen[c.container_id] = ticks
        self.cold_starts += window_cold
        self.last_cold_starts = window_cold
        self.last_penalties = pen
        return pen

    # ------------------------------------------------------------------
    def fingerprint(self) -> dict:
        cfg = self.config
        return {
            "keep_alive": cfg.keep_alive,
            "keep_alive_ticks": cfg.keep_alive_ticks,
            "pool_capacity": cfg.pool_capacity,
            "cold_start_ticks": cfg.cold_start_ticks,
            "drain_ticks": cfg.drain_ticks,
            "min_on": cfg.min_on,
            "headroom": cfg.headroom,
        }

    def checkpoint(self) -> dict:
        return {
            "pool": self.pool.checkpoint() if self.pool is not None else None,
            "power": self.power.checkpoint(),
            "cold_starts": self.cold_starts,
        }

    def restore(self, payload: dict) -> None:
        if payload["pool"] is not None:
            if self.pool is None:
                raise ValueError(
                    "snapshot carries a warm pool but keep_alive is 'none'"
                )
            self.pool.restore(payload["pool"])
        self.power.restore(payload["power"])
        self.cold_starts = int(payload["cold_starts"])


def lifecycle_from_config(trace, config, n_machines: int):
    """Build the run's :class:`LifecycleRuntime` from an
    :class:`~repro.sim.online.OnlineConfig` — ``None`` unless
    ``config.autoscale`` is set (the default-off bit-identity contract:
    no runtime, no behaviour change)."""
    if not getattr(config, "autoscale", False):
        return None
    lc = LifecycleConfig(
        keep_alive=config.keep_alive,
        keep_alive_ticks=config.keep_alive_ticks,
        pool_capacity=config.pool_capacity,
        cold_start_ticks=config.cold_start_ticks,
        drain_ticks=config.drain_ticks,
        min_on=config.min_on,
        headroom=config.power_headroom,
    )
    return LifecycleRuntime(trace, lc, n_machines)
