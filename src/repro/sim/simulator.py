"""Trace replay against one scheduler.

The simulator owns the experiment boundary conditions the paper varies:

* the cluster size (Fig. 12/13 sweep machine counts; Fig. 9 fixes the
  paper's 10k-machine cluster at the configured scale);
* the machine pool factor: the Fig. 10/11 efficiency experiments count
  machines *used*, letting inefficient schedulers overflow the nominal
  cluster (Go-Kube uses 14,211 machines against a 10,000-machine trace),
  so those runs get an enlarged pool.
"""

from __future__ import annotations

from repro.base import Scheduler
from repro.cluster.machine import MachineSpec
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.sim.metrics import compute_metrics
from repro.sim.results import SimulationResult
from repro.trace.arrival import ArrivalOrder, order_containers
from repro.trace.schema import Trace


class Simulator:
    """Replays a trace's containers through a scheduler."""

    def __init__(
        self,
        trace: Trace,
        n_machines: int | None = None,
        machine_pool_factor: float = 1.0,
        machine: MachineSpec | None = None,
        track_events: bool = False,
    ) -> None:
        if machine_pool_factor < 1.0:
            raise ValueError(
                f"machine_pool_factor must be >= 1, got {machine_pool_factor}"
            )
        self.trace = trace
        base = n_machines if n_machines is not None else trace.config.n_machines
        self.n_machines = max(1, round(base * machine_pool_factor))
        self.machine = machine
        self.track_events = track_events

    def new_state(self) -> ClusterState:
        """A fresh cluster state for one run."""
        topo = build_cluster(self.n_machines, machine=self.machine)
        return ClusterState(
            topo, self.trace.constraints, track_events=self.track_events
        )

    def run(
        self,
        scheduler: Scheduler,
        order: ArrivalOrder = ArrivalOrder.TRACE,
    ) -> SimulationResult:
        """Replay the full trace under ``order`` through ``scheduler``."""
        state = self.new_state()
        containers = order_containers(self.trace, order)
        schedule = scheduler.schedule(containers, state)
        self._check_consistency(schedule, state)
        metrics = compute_metrics(
            scheduler.name, order.value, schedule, state, containers
        )
        return SimulationResult(metrics=metrics, schedule=schedule, state=state)

    @staticmethod
    def _check_consistency(schedule, state: ClusterState) -> None:
        """Placements reported by the scheduler must match the state."""
        if set(schedule.placements) != set(state.assignment):
            missing = set(schedule.placements) ^ set(state.assignment)
            raise AssertionError(
                f"scheduler/state divergence on {len(missing)} containers "
                f"(e.g. {sorted(missing)[:5]})"
            )
        for cid, machine in schedule.placements.items():
            if state.assignment[cid] != machine:
                raise AssertionError(
                    f"container {cid}: scheduler says machine {machine}, "
                    f"state says {state.assignment[cid]}"
                )
