"""Placement introspection: quality diagnostics beyond the headline metrics.

The evaluation's aggregate numbers (violations %, machines used) say
*that* a scheduler won; these diagnostics say *why*, in the vocabulary
the paper uses informally:

* **fragmentation** — free capacity stranded in slivers too small to
  host each demand class (Section IV.D: "CHP and CSA policies can
  effectively reduce resource fragments");
* **spread** — over how many machines each application landed, the
  quantity that decides anti-affinity blocking footprints (Fig. 9's
  mechanism) and per-app failure blast radius;
* **co-location pressure** — how close each machine sits to violating
  a constraint (blacklist occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState


@dataclass(frozen=True)
class FragmentationReport:
    """Free-capacity sliver analysis along the CPU dimension."""

    total_free_cpu: float
    #: demand size -> CPU stranded on machines too small for that size
    stranded_by_demand: dict[float, float]
    #: largest single contiguous slot in the cluster
    largest_slot: float

    def stranded_fraction(self, demand: float) -> float:
        """Fraction of free CPU unusable by containers of ``demand``."""
        if self.total_free_cpu <= 0:
            return 0.0
        return self.stranded_by_demand.get(demand, 0.0) / self.total_free_cpu


def fragmentation(
    state: ClusterState, demand_classes: tuple[float, ...] = (1, 2, 4, 8, 16)
) -> FragmentationReport:
    """Measure how much free CPU is stranded per demand class."""
    free = state.available[:, 0]
    total = float(free.sum())
    stranded = {}
    for demand in demand_classes:
        unusable = free[free < demand]
        stranded[float(demand)] = float(unusable.sum())
    return FragmentationReport(
        total_free_cpu=total,
        stranded_by_demand=stranded,
        largest_slot=float(free.max()) if free.size else 0.0,
    )


@dataclass(frozen=True)
class SpreadReport:
    """Per-application machine-spread statistics."""

    #: app id -> number of distinct machines hosting it
    machines_per_app: dict[int, int]
    mean_spread: float
    max_spread: int

    def footprint(self, app_id: int) -> int:
        return self.machines_per_app.get(app_id, 0)


def application_spread(state: ClusterState) -> SpreadReport:
    """How many machines each deployed application touches."""
    per_app = {
        app_id: len(machines)
        for app_id, machines in state.app_machines.items()
        if machines
    }
    values = list(per_app.values())
    return SpreadReport(
        machines_per_app=per_app,
        mean_spread=float(np.mean(values)) if values else 0.0,
        max_spread=max(values, default=0),
    )


@dataclass(frozen=True)
class BlockingReport:
    """Anti-affinity blocking footprints (the Fig. 9 mechanism)."""

    #: app id -> machines its constraints currently forbid
    blocked_machines: dict[int, int]
    worst_app: int | None
    worst_blocked: int

    def blocked_fraction(self, app_id: int, n_machines: int) -> float:
        return self.blocked_machines.get(app_id, 0) / n_machines


def blocking_footprints(
    state: ClusterState, app_ids: list[int] | None = None
) -> BlockingReport:
    """Blocked-machine counts per application.

    For packing schedulers these stay proportional to the conflicting
    containers' *packed* footprint; for spreading schedulers they
    approach the whole cluster — exactly the separation the paper's
    placement-quality experiment measures.
    """
    if app_ids is None:
        app_ids = sorted(state.constraints.apps_with_anti_affinity())
    blocked = {}
    worst_app, worst = None, -1
    for app_id in app_ids:
        count = int(state.forbidden_mask(app_id).sum())
        blocked[app_id] = count
        if count > worst:
            worst_app, worst = app_id, count
    return BlockingReport(
        blocked_machines=blocked,
        worst_app=worst_app,
        worst_blocked=max(worst, 0),
    )


def packing_quality(state: ClusterState) -> float:
    """Used-machine efficiency in [0, 1]: 1.0 = as few machines as the
    total deployed demand could possibly occupy (CPU lower bound)."""
    used = state.used_machines()
    if used == 0:
        return 1.0
    deployed_cpu = float(
        (state.topology.capacity[:, 0] - state.available[:, 0]).sum()
    )
    per_machine = state.topology.capacity[:, 0].max()
    lower_bound = max(1.0, np.ceil(deployed_cpu / per_machine))
    return float(lower_bound / used)
