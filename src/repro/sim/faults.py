"""Machine-failure injection and recovery.

The paper motivates within-app anti-affinity with hardware failures:
"containers belonging to the same application should be placed on
different machines to decrease the downtime likelihood in case of
hardware failures" (Section II.A).  This module closes that loop: it
kills machines under a live cluster state, measures the blast radius
per application, and drives the scheduler to re-place the displaced
containers — the event-driven counterpart of the EHC's "changes in the
LLAs' life-cycles and resources".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.base import Scheduler
from repro.cluster.container import Container
from repro.cluster.state import ClusterState


@dataclass
class FaultReport:
    """Outcome of one failure-and-recovery episode."""

    failed_machines: list[int]
    displaced: list[Container]
    recovered: int = 0
    lost: int = 0
    recovery_migrations: int = 0
    recovery_preemptions: int = 0
    recovery_s: float = 0.0
    #: app id -> number of its containers displaced by the failure
    blast_radius: dict[int, int] = field(default_factory=dict)

    @property
    def n_displaced(self) -> int:
        return len(self.displaced)

    def max_app_downtime_fraction(self, app_sizes: dict[int, int]) -> float:
        """Largest fraction of any single application taken down.

        Anti-affinity within an application exists precisely to keep
        this number small: replicas on distinct machines mean one
        machine failure downs at most 1/n of the application.
        """
        worst = 0.0
        for app_id, hit in self.blast_radius.items():
            size = app_sizes.get(app_id, hit)
            worst = max(worst, hit / size if size else 0.0)
        return worst


def machine_is_down(state: ClusterState, machine_id: int) -> bool:
    """True when a machine admits nothing and hosts nothing.

    This is the state :func:`fail_machines` leaves a victim in (and the
    state a powered-off machine of
    :class:`repro.cluster.power.PowerManager` presents): an all-zero
    ``available`` row with no residents.  A fully packed machine also
    reads all-zero but still hosts containers, so it is *not* down.
    """
    return (
        not state.machine_containers.get(machine_id)
        and not state.available[machine_id].any()
    )


def fail_machines(state: ClusterState, machine_ids: list[int]) -> FaultReport:
    """Kill machines: evict their containers and zero their capacity.

    The machines stay in the topology (ids are stable) but admit no
    further placements; :func:`repair_machines` restores them.

    The whole list is validated before anything mutates — every id must
    be in range (``IndexError``) and name a machine that is not already
    down, with no duplicates (``ValueError``) — so a bad id at position
    k can no longer leave machines ``0..k-1`` half-failed.
    """
    seen: set[int] = set()
    for machine_id in machine_ids:
        if not 0 <= machine_id < state.n_machines:
            raise IndexError(f"machine {machine_id} out of range")
        if machine_id in seen or machine_is_down(state, machine_id):
            raise ValueError(f"machine {machine_id} is already failed")
        seen.add(machine_id)
    displaced: list[Container] = []
    blast: dict[int, int] = {}
    for machine_id in machine_ids:
        for cid in list(state.machine_containers.get(machine_id, ())):
            container = state.evict(cid)
            displaced.append(container)
            blast[container.app_id] = blast.get(container.app_id, 0) + 1
        state.available[machine_id] = 0.0
        # Direct capacity mutation: tell the dirty log so cross-round
        # feasibility caches drop their verdicts for this machine.
        state.touch(machine_id)
    return FaultReport(
        failed_machines=list(machine_ids),
        displaced=displaced,
        blast_radius=blast,
    )


def repair_machines(state: ClusterState, machine_ids: list[int]) -> None:
    """Bring failed machines back empty at full capacity.

    Validates the whole list before anything mutates, mirroring
    :func:`fail_machines`: out-of-range ids raise ``IndexError`` (a
    negative id no longer wraps around and silently "repairs" the last
    machine), machines still hosting containers raise ``ValueError``
    (unchanged semantics), and so does repairing a machine that was
    never failed — its capacity row is not all-zero, so there is
    nothing to restore and the call was almost certainly a bug.
    """
    seen: set[int] = set()
    for machine_id in machine_ids:
        if not 0 <= machine_id < state.n_machines:
            raise IndexError(f"machine {machine_id} out of range")
        if state.machine_containers.get(machine_id):
            raise ValueError(
                f"machine {machine_id} hosts containers; it was not failed"
            )
        if machine_id not in seen and state.available[machine_id].any():
            raise ValueError(f"machine {machine_id} is not failed")
        seen.add(machine_id)
    for machine_id in machine_ids:
        state.available[machine_id] = state.topology.capacity[machine_id]
        state.touch(machine_id)


def recover(
    report: FaultReport, state: ClusterState, scheduler: Scheduler
) -> FaultReport:
    """Re-place the displaced containers through ``scheduler``.

    Containers are resubmitted highest-priority first (the paper's
    weighted-flow order); the report is updated in place and returned.
    """
    ordered = sorted(report.displaced, key=lambda c: -c.priority)
    result = scheduler.schedule(ordered, state)
    report.recovered = result.n_deployed
    report.lost = result.n_undeployed
    report.recovery_migrations = result.migrations
    report.recovery_preemptions = result.preemptions
    report.recovery_s = result.elapsed_s
    return report


def random_failures(
    state: ClusterState,
    n_failures: int,
    rng: np.random.Generator | None = None,
    used_only: bool = True,
) -> list[int]:
    """Pick machines to kill, uniformly over (used) machines."""
    if rng is None:
        rng = np.random.default_rng(0)
    if used_only:
        pool = np.flatnonzero(state.container_count > 0)
    else:
        pool = np.arange(state.n_machines)
    if pool.size == 0:
        return []
    n_failures = min(n_failures, pool.size)
    return [int(m) for m in rng.choice(pool, size=n_failures, replace=False)]
