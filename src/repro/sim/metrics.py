"""Evaluation metrics (Sections V.B–V.D).

* **Placement quality** (Fig. 9) — the paper's "constraint violations
  (%)": containers that are undeployed *or* deployed in violation of a
  constraint, as a share of the workload; plus the anti-affinity share
  of those violations (Fig. 9e).
* **Resource efficiency** (Fig. 10/11) — machines used, Equation 10's
  relative efficiency, and the per-machine utilisation range.
* **Placement latency / overhead** (Fig. 12/13) — Equation 11's average
  per-container latency, total wall time, and migration/preemption
  counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.base import FailureReason, ScheduleResult
from repro.cluster.container import Container
from repro.cluster.state import ClusterState


@dataclass(frozen=True)
class SimulationMetrics:
    """Every number the evaluation section reports, for one run."""

    scheduler: str
    arrival_order: str
    n_total: int
    n_deployed: int
    n_undeployed: int
    n_violating_placements: int
    #: Fig. 9 y-axis: (undeployed + violating placements) / total * 100
    violation_pct: float
    undeployed_pct: float
    #: violation breakdown for Fig. 9(e)
    anti_affinity_violations: int
    priority_violations: int
    resource_failures: int
    anti_affinity_share_pct: float
    #: Fig. 10/11
    used_machines: int
    utilization_min: float
    utilization_max: float
    utilization_mean: float
    #: Fig. 13
    migrations: int
    preemptions: int
    explored: int
    #: Fig. 12: Equation 11, milliseconds per container
    latency_total_s: float
    latency_per_container_ms: float
    #: scheduler telemetry (all 0 for schedulers without the layer):
    #: SPFA relaxations, IL/DL pruning hits, and the cross-round
    #: feasibility-cache hit/miss/invalidation counters
    spfa_relaxations: int = 0
    il_prune_hits: int = 0
    dl_prune_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    cache_hit_rate: float = 0.0

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering / JSON dumps."""
        return dict(self.__dict__)


def compute_metrics(
    scheduler_name: str,
    arrival_order: str,
    result: ScheduleResult,
    state: ClusterState,
    containers: list[Container] | None = None,
) -> SimulationMetrics:
    """Derive all metrics from a finished schedule.

    ``containers`` (the scheduled stream) enables the priority-inversion
    classification of undeployed resource failures; without it they all
    count as plain resource failures.
    """
    n_total = result.n_total
    n_undeployed = result.n_undeployed
    n_violating = len(result.violating)
    by_id = {c.container_id: c for c in containers} if containers else {}

    # --- violation breakdown (Fig. 9e) --------------------------------
    aa_violations = n_violating  # placed-in-violation is an AA violation
    priority_violations = 0
    resource_failures = 0
    deployed_priorities = _deployed_priority_capacity(result, state)
    for cid, reason in result.undeployed.items():
        if reason is FailureReason.ANTI_AFFINITY:
            aa_violations += 1
        elif reason is FailureReason.PREEMPTED:
            priority_violations += 1
        else:
            # A resource failure is a *priority* violation when some
            # strictly lower-priority container of comparable size was
            # deployed — the scheduler inverted the priority order.
            container = by_id.get(cid)
            if container is not None and _priority_inverted(
                container, deployed_priorities
            ):
                priority_violations += 1
            else:
                resource_failures += 1

    total_violations = aa_violations + priority_violations + resource_failures
    aa_share = 100.0 * aa_violations / total_violations if total_violations else 0.0

    # --- efficiency (Fig. 10/11) ---------------------------------------
    used = state.used_machines()
    if used:
        util = state.used_utilization(dim=0)
        u_min, u_max, u_mean = (
            float(util.min()),
            float(util.max()),
            float(util.mean()),
        )
    else:
        u_min = u_max = u_mean = 0.0

    per_container_ms = (
        1000.0 * result.elapsed_s / n_total if n_total else 0.0
    )
    tele = result.telemetry
    return SimulationMetrics(
        scheduler=scheduler_name,
        arrival_order=arrival_order,
        n_total=n_total,
        n_deployed=result.n_deployed,
        n_undeployed=n_undeployed,
        n_violating_placements=n_violating,
        violation_pct=100.0 * (n_undeployed + n_violating) / n_total
        if n_total
        else 0.0,
        undeployed_pct=100.0 * n_undeployed / n_total if n_total else 0.0,
        anti_affinity_violations=aa_violations,
        priority_violations=priority_violations,
        resource_failures=resource_failures,
        anti_affinity_share_pct=aa_share,
        used_machines=used,
        utilization_min=u_min,
        utilization_max=u_max,
        utilization_mean=u_mean,
        migrations=result.migrations,
        preemptions=result.preemptions,
        explored=result.explored,
        latency_total_s=result.elapsed_s,
        latency_per_container_ms=per_container_ms,
        spfa_relaxations=tele.spfa_relaxations if tele else 0,
        il_prune_hits=tele.il_prune_hits if tele else 0,
        dl_prune_hits=tele.dl_prune_hits if tele else 0,
        cache_hits=tele.cache_hits if tele else 0,
        cache_misses=tele.cache_misses if tele else 0,
        cache_invalidations=tele.cache_invalidations if tele else 0,
        cache_hit_rate=tele.cache_hit_rate if tele else 0.0,
    )


@dataclass(frozen=True)
class PowerMetrics:
    """Energy/cost view of an online run — the Fig. 10 machine curve
    integrated over time.

    ``machine_ticks`` sums powered (on + draining) machines per sampled
    tick; samples without lifecycle telemetry (autoscale off) count the
    full cluster, so the always-on baseline and an autoscale run read
    through the same accessor.  ``cold_start_rate`` is cold starts per
    arrived container.
    """

    machine_ticks: int
    always_on_machine_ticks: int
    savings_pct: float
    peak_powered: int
    warm_hits: int
    cold_starts: int
    cold_start_rate: float

    def row(self) -> dict[str, object]:
        return dict(self.__dict__)


def power_metrics(result, n_machines: int) -> PowerMetrics:
    """Fold an :class:`~repro.sim.online.OnlineResult`'s per-tick power
    telemetry into one :class:`PowerMetrics`."""
    machine_ticks = 0
    peak = 0
    warm_hits = 0
    cold_starts = 0
    for s in result.samples:
        if s.powered_machines is None:
            powered = n_machines
        else:
            powered = s.powered_machines + s.draining_machines
            warm_hits += s.warm_hits
            cold_starts += s.cold_starts
        machine_ticks += powered
        peak = max(peak, powered)
    always_on = n_machines * len(result.samples)
    savings = (
        100.0 * (1.0 - machine_ticks / always_on) if always_on else 0.0
    )
    rate = (
        cold_starts / result.total_arrived if result.total_arrived else 0.0
    )
    return PowerMetrics(
        machine_ticks=machine_ticks,
        always_on_machine_ticks=always_on,
        savings_pct=savings,
        peak_powered=peak,
        warm_hits=warm_hits,
        cold_starts=cold_starts,
        cold_start_rate=rate,
    )


def relative_efficiency(metrics: list[SimulationMetrics]) -> dict[str, float]:
    """Equation 10: ``num(i) / min_j num(j) - 1`` per scheduler.

    0.0 marks the most efficient scheduler; 0.5 means 50 % more machines
    than the best — the paper's "improves resource efficiency by 50 %"
    headline is this quantity.
    """
    if not metrics:
        return {}
    best = min(m.used_machines for m in metrics)
    if best == 0:
        return {m.scheduler: 0.0 for m in metrics}
    return {m.scheduler: m.used_machines / best - 1.0 for m in metrics}


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _deployed_priority_capacity(
    result: ScheduleResult, state: ClusterState
) -> dict[int, float]:
    """Max deployed CPU demand per priority class, for inversion checks."""
    max_cpu: dict[int, float] = {}
    for cid in result.placements:
        c = state.container(cid)
        if c.cpu > max_cpu.get(c.priority, 0.0):
            max_cpu[c.priority] = c.cpu
    return max_cpu


def _priority_inverted(container, max_cpu_by_priority: dict[int, float]) -> bool:
    """True when a strictly lower-priority, same-or-larger container won."""
    return any(
        p < container.priority and cpu >= container.cpu
        for p, cpu in max_cpu_by_priority.items()
    )
