"""Simulation result records."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.base import ScheduleResult
from repro.cluster.state import ClusterState
from repro.sim.metrics import SimulationMetrics


@dataclass
class SimulationResult:
    """Everything produced by one scheduler run on one trace replay."""

    metrics: SimulationMetrics
    schedule: ScheduleResult
    state: ClusterState

    def summary(self) -> str:
        """One-line human summary."""
        m = self.metrics
        return (
            f"{m.scheduler:28s} order={m.arrival_order:5s} "
            f"violations={m.violation_pct:5.1f}% "
            f"(undeployed={m.n_undeployed}, violating={m.n_violating_placements}) "
            f"machines={m.used_machines} "
            f"migr={m.migrations} latency={m.latency_per_container_ms:.3f} ms/ctr"
        )


def dump_metrics(
    results: list[SimulationResult] | list[SimulationMetrics], path: str | Path
) -> Path:
    """Write metric rows as JSON lines for offline analysis."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for r in results:
            metrics = r.metrics if isinstance(r, SimulationResult) else r
            fh.write(json.dumps(metrics.row()) + "\n")
    return path
