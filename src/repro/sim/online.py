"""Online (event-driven) simulation with arrivals and departures.

The trace replay of :mod:`repro.sim.simulator` models the paper's
burst-arrival evaluation ("massive LLAs arrive simultaneously"); this
module models the *steady state* around it: long-lived applications
arrive over time, live for "durations ranging from hours to months"
(Section I), and depart — continuously churning the cluster the
scheduler placed.  Fragmentation accumulates exactly where the paper's
migration mechanism (Fig. 7) earns its keep, so the online simulation
is the natural stress test for it.

Time is discrete ticks.  Each tick:

1. expired applications depart (their containers are evicted);
2. newly arrived applications are scheduled as one submission batch;
3. cluster metrics are sampled;
4. optionally, a crash-consistent checkpoint is written.

Checkpoint/restore (``run(checkpoint_every=..., checkpoint_path=...)``
and ``run(restore_from=...)``) makes the simulation restartable: a run
killed at tick *k* and resumed from its last snapshot finishes
**bit-identical** (:meth:`OnlineResult.canonical_json`) to an
uninterrupted run.  The snapshot persists the cluster state with its
dirty log, the partial :class:`OnlineResult` (samples *and* merged
telemetry — a resumed run must not re-base or double-count the
pre-crash counters), the arrival/departure cursors, and the
scheduler's cross-round ledgers
(:meth:`~repro.core.scheduler.AladdinScheduler.checkpoint`); the
arrival schedule itself is recomputed from the config seed, and a
fingerprint in the snapshot rejects a restore under a different trace,
config or scheduler.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.base import ScheduleResult, Scheduler
from repro.cluster.snapshot import SnapshotError, read_snapshot, write_snapshot
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.sim.lifecycle import KEEP_ALIVE_CHOICES, lifecycle_from_config
from repro.telemetry import SchedulerTelemetry
from repro.trace.arrival import ArrivalOrder, order_applications
from repro.trace.schema import Trace


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online simulation.

    Parameters
    ----------
    ticks:
        Length of the arrival phase; applications arrive uniformly
        spread over it (the simulation keeps running until the last
        arrival has been processed).
    lifetime_ticks:
        (min, max) application lifetime, sampled log-uniformly — the
        hours-to-months spread of Section I, in tick units.
    arrival_order:
        Ordering of the arrival stream (CHP/CLP/CLA/CSA/trace).
    seed:
        RNG seed for lifetimes.
    machine_pool_factor:
        Headroom over the trace's nominal cluster.
    scenario:
        When set (a :data:`repro.trace.scenarios.SCENARIOS` family
        name), the arrival/lifetime plan is decoded from the scenario
        trace's application names instead of being sampled — see
        :func:`repro.trace.scenarios.scenario_schedule`.  ``ticks``,
        ``lifetime_ticks`` and ``arrival_order`` are ignored in that
        mode (the scenario trace pins all three).
    autoscale:
        Enables the power/warm-pool lifecycle
        (:mod:`repro.sim.lifecycle`).  Off by default, and **off means
        absent**: a default-off run is bit-identical to one built
        before the knob existed — the autoscale knobs below are
        ignored entirely unless this is set.
    keep_alive / keep_alive_ticks / pool_capacity:
        Warm-pool policy (``none``/``fixed``/``ttl``/``lru``), its
        keep-alive horizon in ticks, and the pool's entry cap.
    cold_start_ticks / drain_ticks / min_on / power_headroom:
        Power-planner knobs — see
        :class:`repro.cluster.power.PowerConfig`.
    """

    ticks: int = 50
    lifetime_ticks: tuple[int, int] = (10, 200)
    arrival_order: ArrivalOrder = ArrivalOrder.TRACE
    seed: int = 0
    machine_pool_factor: float = 1.2
    scenario: str | None = None
    autoscale: bool = False
    keep_alive: str = "fixed"
    keep_alive_ticks: int = 4
    pool_capacity: int = 256
    cold_start_ticks: int = 2
    drain_ticks: int = 1
    min_on: int = 1
    power_headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")
        lo, hi = self.lifetime_ticks
        if not 1 <= lo <= hi:
            raise ValueError(f"bad lifetime range {self.lifetime_ticks}")
        if self.machine_pool_factor < 1.0:
            raise ValueError("machine_pool_factor must be >= 1")
        if self.keep_alive not in KEEP_ALIVE_CHOICES:
            raise ValueError(
                f"unknown keep-alive policy {self.keep_alive!r}; "
                f"pick from {KEEP_ALIVE_CHOICES}"
            )

    def lifecycle_fingerprint(self) -> dict | None:
        """The autoscale knobs a snapshot must match (``None`` when
        the lifecycle is off — so pre-autoscale fingerprints of
        default-off runs stay comparable)."""
        if not self.autoscale:
            return None
        return {
            "keep_alive": self.keep_alive,
            "keep_alive_ticks": self.keep_alive_ticks,
            "pool_capacity": self.pool_capacity,
            "cold_start_ticks": self.cold_start_ticks,
            "drain_ticks": self.drain_ticks,
            "min_on": self.min_on,
            "headroom": self.power_headroom,
        }


@dataclass
class TickSample:
    """Metrics sampled at the end of one tick."""

    tick: int
    arrived_containers: int
    departed_containers: int
    running_containers: int
    pending_failures: int
    used_machines: int
    mean_utilization: float
    migrations: int
    violations: int
    #: machines examined by this tick's scheduling round (0 on idle ticks)
    explored: int = 0
    #: feasibility verdicts served from the cross-round cache this tick
    cache_hits: int = 0
    #: application blocks placed by the batched kernel this tick
    batch_invocations: int = 0
    #: rescue attempts (migration/consolidation/preemption planning)
    rescue_attempts: int = 0
    #: of those, attempts planned by the vectorized rescue kernel
    rescue_kernel_invocations: int = 0
    #: power/warm-pool telemetry, set only when a lifecycle runtime is
    #: active (``None`` otherwise — and then absent from
    #: :meth:`OnlineResult.canonical_json`, preserving default-off
    #: bit-identity with pre-autoscale runs)
    powered_machines: int | None = None
    draining_machines: int | None = None
    off_machines: int | None = None
    woken_machines: int | None = None
    warm_hits: int | None = None
    cold_starts: int | None = None
    pool_size: int | None = None
    #: phase name -> wall seconds spent inside this tick.  Window phases
    #: (``window_departures``, ``window_sample``, ``window_record``) are
    #: timed by :func:`apply_window`/:func:`record_window`; scheduler
    #: phases (search, rescue, requeue, repair) are copied from the
    #: round's telemetry.  Wall times, so excluded from
    #: :meth:`OnlineResult.canonical_json` like every other timing.
    phase_s: dict[str, float] = field(default_factory=dict)


@dataclass
class OnlineResult:
    """Per-tick series plus whole-run aggregates.

    :attr:`telemetry` merges every scheduling round's counters: SPFA
    relaxations, IL/DL pruning hits, and the cross-round feasibility
    cache's hit/miss/invalidation totals.  Counters are deterministic
    for a fixed seed; phase wall times are not, so
    :meth:`canonical_json` (the determinism-test serialisation)
    excludes them.
    """

    samples: list[TickSample] = field(default_factory=list)
    total_arrived: int = 0
    total_departed: int = 0
    total_failed: int = 0
    total_migrations: int = 0
    total_elapsed_s: float = 0.0
    telemetry: SchedulerTelemetry = field(default_factory=SchedulerTelemetry)

    @property
    def peak_used_machines(self) -> int:
        return max((s.used_machines for s in self.samples), default=0)

    @property
    def failure_rate(self) -> float:
        return self.total_failed / self.total_arrived if self.total_arrived else 0.0

    def series(self, attr: str) -> list[tuple[int, float]]:
        """(tick, value) pairs for one sampled attribute."""
        return [(s.tick, getattr(s, attr)) for s in self.samples]

    def canonical_json(self) -> str:
        """Deterministic serialisation of every metric of the run.

        Two runs with the same trace, scheduler and seed must produce
        byte-identical output — this is the contract the determinism
        test enforces, and it deliberately covers the telemetry
        counters while excluding wall-clock times (``total_elapsed_s``
        and per-phase timings), which legitimately vary between runs.
        """
        samples = []
        for s in self.samples:
            entry = {
                "tick": s.tick,
                "arrived": s.arrived_containers,
                "departed": s.departed_containers,
                "running": s.running_containers,
                "failures": s.pending_failures,
                "used_machines": s.used_machines,
                "mean_utilization": repr(s.mean_utilization),
                "migrations": s.migrations,
                "violations": s.violations,
                "explored": s.explored,
                "cache_hits": s.cache_hits,
                "batch_invocations": s.batch_invocations,
                "rescue_attempts": s.rescue_attempts,
                "rescue_kernel_invocations": s.rescue_kernel_invocations,
            }
            if s.powered_machines is not None:
                # Lifecycle telemetry only exists on autoscale runs, so
                # the key is conditional: default-off output stays
                # byte-identical to pre-autoscale builds.
                entry["power"] = {
                    "on": s.powered_machines,
                    "draining": s.draining_machines,
                    "off": s.off_machines,
                    "woken": s.woken_machines,
                    "warm_hits": s.warm_hits,
                    "cold_starts": s.cold_starts,
                    "pool_size": s.pool_size,
                }
            samples.append(entry)
        payload = {
            "totals": {
                "arrived": self.total_arrived,
                "departed": self.total_departed,
                "failed": self.total_failed,
                "migrations": self.total_migrations,
            },
            "telemetry": self.telemetry.counters(),
            "samples": samples,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# shared window-application logic
#
# One scheduling window — departures out, a batch of arrivals through
# the scheduler, a metrics sample — is the unit both front-ends apply:
# the simulated tick loop below and the live serving loop of
# :mod:`repro.serve`.  Keeping the application logic in one place is
# what makes the serving-mode differential test meaningful: a served
# window and a simulated tick *are* the same code path, so bit-identical
# decisions follow from bit-identical inputs.
# ----------------------------------------------------------------------
def pool_topology(trace: Trace, config: OnlineConfig):
    """The machine pool an online run of ``trace`` schedules into."""
    n = max(1, round(trace.config.n_machines * config.machine_pool_factor))
    return build_cluster(n)


def lifecycle_horizon_tail(config: OnlineConfig) -> int:
    """Extra ticks an autoscale run needs past the nominal horizon.

    Cold-start penalties (function miss + machine spin-up, each at most
    ``cold_start_ticks``) defer departures, and pooled containers then
    linger one keep-alive before expiring.  Zero when autoscale is off
    — the loop bound stays exactly what it was.  Shared by the
    simulator's tick loop and the serving replay client so both drive
    the same number of windows.
    """
    if not config.autoscale:
        return 0
    tail = 2 * config.cold_start_ticks + 2
    if config.keep_alive != "none":
        tail += config.keep_alive_ticks + 1
    return tail


@dataclass(frozen=True)
class ArrivalSchedule:
    """The deterministic arrival/departure plan of one online run.

    Derived from the config seed alone (arrival ticks uniformly spread,
    lifetimes log-uniform), so a restored run — or a replay client
    driving :mod:`repro.serve` — recomputes the exact schedule instead
    of persisting it.
    """

    apps: list
    #: arrival tick per application, sorted ascending (parallel to apps)
    arrival_tick: np.ndarray
    #: app_id -> lifetime in ticks
    life_of: dict[int, int]
    #: app_id -> that application's containers
    by_app: dict[int, list]
    #: last tick any departure can land on + 1
    horizon: int


def arrival_schedule(trace: Trace, config: OnlineConfig) -> ArrivalSchedule:
    """Recompute the seeded arrival/lifetime plan for ``trace``.

    Scenario runs (``config.scenario`` set) decode the plan from the
    trace's application names instead — both paths are deterministic,
    which is what lets checkpoint restore and the serving replay
    client recompute the schedule rather than persist it.
    """
    if config.scenario is not None:
        from repro.trace.scenarios import scenario_schedule

        return scenario_schedule(trace, config)
    rng = np.random.default_rng(config.seed)
    apps = order_applications(trace, config.arrival_order)
    arrival_tick = np.sort(rng.integers(0, config.ticks, len(apps)))
    lo, hi = config.lifetime_ticks
    lifetimes = np.exp(
        rng.uniform(np.log(lo), np.log(hi + 1), len(apps))
    ).astype(np.int64)
    life_of = {app.app_id: int(lifetimes[i]) for i, app in enumerate(apps)}
    by_app: dict[int, list] = {}
    for c in trace.containers:
        by_app.setdefault(c.app_id, []).append(c)
    horizon = config.ticks + int(lifetimes.max()) + 1
    return ArrivalSchedule(apps, arrival_tick, life_of, by_app, horizon)


def apply_window(
    scheduler: Scheduler,
    state: ClusterState,
    *,
    tick: int,
    departures=(),
    batch=(),
    lifecycle=None,
) -> tuple[TickSample, ScheduleResult | None]:
    """Apply one scheduling window to ``state`` and sample the cluster.

    Evicts ``departures`` (container ids; absent ids are skipped — the
    container may have been displaced by a fault already), schedules
    ``batch`` as one submission (idle windows skip the scheduler
    entirely), and returns the sampled :class:`TickSample` plus the
    round's :class:`~repro.base.ScheduleResult` (``None`` on idle
    windows).

    With a :class:`~repro.sim.lifecycle.LifecycleRuntime` the window
    grows two phases: ``window_pool`` (departure stashing + warm
    claims, before the scheduler) and ``window_power`` (wake/drain
    planning).  Warm-claimed arrivals never reach the scheduler; the
    runtime's ``last_warm``/``last_penalties`` expose them to the
    caller for departure booking.
    """
    # Batched eviction: one vectorised pass over the whole window's
    # departures (absent ids are skipped — the container may have been
    # displaced by a fault already).  The pool rewrites the list first:
    # stashed containers stay put, expired pool entries join it.
    arrived = len(batch)
    batch = list(batch)
    warm: dict[int, int] = {}
    t0 = time.perf_counter()
    if lifecycle is not None:
        departures = lifecycle.pool_intake(state, tick, departures)
    departed = state.evict_block(departures)
    phase_s = {"window_departures": time.perf_counter() - t0}
    if lifecycle is not None:
        t0 = time.perf_counter()
        batch, warm = lifecycle.claim_warm(state, tick, batch)
        departed += len(warm)  # each claim retires a pooled container
        phase_s["window_pool"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        _woken, _drained, reclaimed = lifecycle.power_step(state, tick, batch)
        departed += reclaimed
        phase_s["window_power"] = time.perf_counter() - t0

    migrations = failed = explored = 0
    cache_hits = batch_invocations = 0
    rescue_attempts = rescue_kernel_invocations = 0
    schedule: ScheduleResult | None = None
    if batch:
        schedule = scheduler.schedule(batch, state)
        migrations = schedule.migrations
        failed = schedule.n_undeployed
        explored = schedule.explored
        if schedule.telemetry is not None:
            cache_hits = schedule.telemetry.cache_hits
            batch_invocations = schedule.telemetry.batch_kernel_invocations
            rescue_attempts = schedule.telemetry.rescue_attempts
            rescue_kernel_invocations = (
                schedule.telemetry.rescue_kernel_invocations
            )
            # Per-tick copy of the round's scheduler phases, next to the
            # window phases, so a profile dump shows the whole tick.
            for name, dt in schedule.telemetry.phase_time_s.items():
                phase_s[name] = phase_s.get(name, 0.0) + dt

    if lifecycle is not None:
        lifecycle.charge(tick, schedule, batch)

    t0 = time.perf_counter()
    used = state.used_machines()
    util = state.used_utilization(0)
    sample = TickSample(
        tick=tick,
        arrived_containers=arrived,
        departed_containers=departed,
        running_containers=len(state.assignment),
        pending_failures=failed,
        used_machines=used,
        mean_utilization=float(util.mean()) if used else 0.0,
        migrations=migrations,
        violations=state.anti_affinity_violations(),
        explored=explored,
        cache_hits=cache_hits,
        batch_invocations=batch_invocations,
        rescue_attempts=rescue_attempts,
        rescue_kernel_invocations=rescue_kernel_invocations,
        phase_s=phase_s,
    )
    if lifecycle is not None:
        on, draining, off = lifecycle.power.counts()
        sample.powered_machines = on
        sample.draining_machines = draining
        sample.off_machines = off
        sample.woken_machines = len(lifecycle.last_woken)
        sample.warm_hits = len(warm)
        sample.cold_starts = lifecycle.last_cold_starts
        sample.pool_size = lifecycle.pending()
    phase_s["window_sample"] = time.perf_counter() - t0
    return sample, schedule


#: tick phases timed by the window logic itself (as opposed to the
#: scheduler phases, which arrive in the result via telemetry.merge).
#: ``window_pool``/``window_power`` only appear on autoscale runs.
WINDOW_PHASES = (
    "window_departures",
    "window_pool",
    "window_power",
    "window_sample",
    "window_record",
)


def record_window(
    result: OnlineResult,
    sample: TickSample,
    schedule: ScheduleResult | None,
) -> None:
    """Fold one applied window into ``result``'s series and totals."""
    t0 = time.perf_counter()
    result.samples.append(sample)
    result.total_departed += sample.departed_containers
    # Arrivals fold unconditionally: a fully-warm-served window has no
    # schedule but did admit containers.  (Without a lifecycle, no
    # schedule implies an empty batch, so this is a no-op there.)
    result.total_arrived += sample.arrived_containers
    if schedule is not None:
        result.total_failed += schedule.n_undeployed
        result.total_migrations += schedule.migrations
        result.total_elapsed_s += schedule.elapsed_s
        if schedule.telemetry is not None:
            # Scheduler phase times (search, rescue, requeue, repair)
            # ride along in this merge — only the window-local phases
            # below need explicit folding, or they'd double-count.
            result.telemetry.merge(schedule.telemetry)
    sample.phase_s["window_record"] = time.perf_counter() - t0
    for name in WINDOW_PHASES:
        dt = sample.phase_s.get(name)
        if dt is not None:
            result.telemetry.add_phase_time(name, dt)


class OnlineSimulator:
    """Drives a scheduler through an arriving-and-departing workload."""

    def __init__(self, trace: Trace, config: OnlineConfig | None = None) -> None:
        self.trace = trace
        self.config = config if config is not None else OnlineConfig()
        self._topology = pool_topology(trace, self.config)

    def run(
        self,
        scheduler: Scheduler,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: str | None = None,
        restore_from: str | None = None,
        on_checkpoint=None,
    ) -> OnlineResult:
        """Drive ``scheduler`` through the churn, optionally checkpointed.

        Parameters
        ----------
        checkpoint_every / checkpoint_path:
            Write a crash-consistent snapshot to ``checkpoint_path``
            every ``checkpoint_every`` ticks (atomic write-rename, so a
            crash mid-write keeps the previous snapshot intact).
        restore_from:
            Resume from a snapshot written by a previous run.  The
            trace, config and scheduler must match the snapshot's
            fingerprint; the resumed run finishes bit-identical to an
            uninterrupted one.
        on_checkpoint:
            ``callback(tick, path)`` invoked after each snapshot is
            durably on disk (crash-injection hook for tests/CI).
        """
        try:
            return self._run(
                scheduler,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                restore_from=restore_from,
                on_checkpoint=on_checkpoint,
            )
        finally:
            # Schedulers may hold external resources (the parallel
            # sweep's worker processes and shared memory); release them
            # when the simulation is done with the scheduler.
            close = getattr(scheduler, "close", None)
            if callable(close):
                close()

    # ------------------------------------------------------------------
    def _fingerprint(self, scheduler: Scheduler) -> dict:
        """What a snapshot must match to be restorable into this run."""
        cfg = self.config
        return {
            "n_apps": self.trace.n_apps,
            "n_containers": self.trace.n_containers,
            "n_machines": self._topology.n_machines,
            "ticks": cfg.ticks,
            "lifetime_ticks": list(cfg.lifetime_ticks),
            "arrival_order": cfg.arrival_order.value,
            "seed": cfg.seed,
            "machine_pool_factor": cfg.machine_pool_factor,
            "scenario": cfg.scenario,
            "scheduler": scheduler.name,
            "lifecycle": cfg.lifecycle_fingerprint(),
        }

    def _write_checkpoint(
        self,
        path: str,
        scheduler: Scheduler,
        state: ClusterState,
        result: OnlineResult,
        departures: dict[int, list[int]],
        idx: int,
        tick: int,
        lifecycle=None,
    ) -> None:
        take = getattr(scheduler, "checkpoint", None)
        payload = {
            "fingerprint": self._fingerprint(scheduler),
            "tick": tick,
            "idx": idx,
            "departures": {t: list(c) for t, c in departures.items()},
            "result": result,
            "state": state.checkpoint_payload(),
            "engine": take() if callable(take) else None,
            "lifecycle": lifecycle.checkpoint() if lifecycle is not None else None,
        }
        write_snapshot(path, payload, kind="online-sim")

    def _run(
        self,
        scheduler: Scheduler,
        checkpoint_every: int | None = None,
        checkpoint_path: str | None = None,
        restore_from: str | None = None,
        on_checkpoint=None,
    ) -> OnlineResult:
        cfg = self.config
        sched = arrival_schedule(self.trace, cfg)
        apps = sched.apps
        arrival_tick = sched.arrival_tick
        life_of = sched.life_of
        by_app = sched.by_app
        horizon = sched.horizon
        lifecycle = lifecycle_from_config(
            self.trace, cfg, self._topology.n_machines
        )
        horizon += lifecycle_horizon_tail(cfg)

        if restore_from is not None:
            payload = read_snapshot(restore_from, kind="online-sim")
            expected = self._fingerprint(scheduler)
            if payload["fingerprint"] != expected:
                raise SnapshotError(
                    "snapshot fingerprint mismatch: snapshot was taken "
                    f"under {payload['fingerprint']}, resuming under "
                    f"{expected}"
                )
            state = ClusterState.from_payload(
                payload["state"], self._topology, self.trace.constraints
            )
            result: OnlineResult = payload["result"]
            departures = {
                int(t): list(c) for t, c in payload["departures"].items()
            }
            idx = int(payload["idx"])
            start_tick = int(payload["tick"]) + 1
            restore = getattr(scheduler, "restore_checkpoint", None)
            if payload["engine"] is not None and callable(restore):
                restore(payload["engine"], state)
            if payload.get("lifecycle") is not None:
                lifecycle.restore(payload["lifecycle"])
        else:
            state = ClusterState(self._topology, self.trace.constraints)
            #: departure tick -> container ids to evict
            departures = {}
            result = OnlineResult()
            idx = 0
            start_tick = 0

        drained_pool = lifecycle is None or not lifecycle.pending()
        if idx >= len(apps) and not departures and drained_pool:
            # The snapshot was taken on the run's final tick; the
            # uninterrupted run broke out right after sampling it.
            return result
        for tick in range(start_tick, horizon):
            deps = departures.pop(tick, ())  # 1. departures

            batch = []
            while idx < len(apps) and arrival_tick[idx] <= tick:
                app = apps[idx]
                batch.extend(by_app[app.app_id])
                idx += 1

            # 2.–3. arrivals + sampling, via the window logic shared
            # with the serving loop.
            sample, schedule = apply_window(
                scheduler, state, tick=tick, departures=deps, batch=batch,
                lifecycle=lifecycle,
            )
            record_window(result, sample, schedule)
            placed = schedule.placements if schedule is not None else {}
            warm = lifecycle.last_warm if lifecycle is not None else {}
            pen = lifecycle.last_penalties if lifecycle is not None else {}
            if placed or warm:
                for c in batch:
                    cid = c.container_id
                    if cid in placed or cid in warm:
                        # Cold starts extend residency: the penalty is
                        # paid in lifetime ticks (warm hits carry none).
                        end = tick + life_of[c.app_id] + pen.get(cid, 0)
                        departures.setdefault(end, []).append(cid)
            if (  # 4. checkpoint
                checkpoint_every
                and checkpoint_path
                and (tick + 1) % checkpoint_every == 0
            ):
                # Work-weighted shard resize (opt-in via
                # AladdinConfig.shard_rebalance) fires *before* the
                # snapshot so the checkpoint captures the post-rebalance
                # layout and a resumed run adopts it bit-identically.
                rebalance = getattr(scheduler, "rebalance_shards", None)
                if rebalance is not None:
                    rebalance(state)
                self._write_checkpoint(
                    checkpoint_path, scheduler, state, result,
                    departures, idx, tick, lifecycle,
                )
                if on_checkpoint is not None:
                    on_checkpoint(tick, checkpoint_path)
            if (
                idx >= len(apps)
                and not departures
                and (lifecycle is None or not lifecycle.pending())
            ):
                break
        return result
