"""Simulation harness: trace replay, metrics and experiment sweeps.

The paper evaluates "Aladdin's codes and scheduling logic ... merely
stubbing out RPCs and task execution" (Section V.A); this package is
that simulation: it replays a trace's container stream against a
scheduler and a :class:`~repro.cluster.state.ClusterState`, then derives
every metric the evaluation section reports.
"""

from repro.sim.metrics import (
    PowerMetrics,
    SimulationMetrics,
    compute_metrics,
    power_metrics,
    relative_efficiency,
)
from repro.sim.lifecycle import LifecycleConfig, LifecycleRuntime
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.sim.runner import (
    latency_sweep,
    minimum_cluster_size,
    run_experiment,
    run_online,
)
from repro.sim.faults import (
    FaultReport,
    fail_machines,
    random_failures,
    recover,
    repair_machines,
)
from repro.sim.online import OnlineConfig, OnlineResult, OnlineSimulator, TickSample

__all__ = [
    "LifecycleConfig",
    "LifecycleRuntime",
    "PowerMetrics",
    "SimulationMetrics",
    "compute_metrics",
    "power_metrics",
    "relative_efficiency",
    "SimulationResult",
    "Simulator",
    "run_experiment",
    "run_online",
    "latency_sweep",
    "minimum_cluster_size",
    "FaultReport",
    "fail_machines",
    "random_failures",
    "recover",
    "repair_machines",
    "OnlineConfig",
    "OnlineResult",
    "OnlineSimulator",
    "TickSample",
]
