"""Scheduler telemetry — the instrumentation behind the Fig. 12/13 story.

The paper's overhead argument is quantitative: isomorphism limiting
replaces per-container feasibility scans with per-application ones,
depth limiting cuts each search to its first admitting machine, and the
incremental feasibility cache (see :mod:`repro.core.feascache`) carries
those verdicts across scheduling rounds.  This module is the single
place all of those savings are *counted*:

* ``spfa_relaxations`` — successful edge relaxations inside
  :func:`repro.flownet.spfa.spfa` (the flow-solver cost driver);
* ``il_prune_hits`` — containers skipped because an identical sibling
  already exhausted search + rescue (isomorphism limiting);
* ``dl_prune_hits`` — placements served by the O(1) depth-limited
  pointer walk instead of a full candidate re-ranking;
* ``cache_hits`` / ``cache_misses`` / ``cache_invalidations`` —
  per-machine feasibility verdicts served from, recomputed into, and
  discarded from the cross-round cache;
* ``batch_kernel_invocations`` — application blocks placed by the
  vectorized batch kernel (:mod:`repro.core.batchkernel`) instead of
  the per-container walk;
* ``index_resyncs`` — incremental dirty-log resyncs of the packed-first
  machine index (:mod:`repro.core.machindex`), each replacing a full
  O(m log m) re-sort;
* ``machines_skipped`` — machines never scored because the admit mask
  or the batch kernel's quota sweep excluded them up front;
* ``parallel_sweeps`` — application blocks planned by the rack-sharded
  parallel sweep (:mod:`repro.core.parallel`) instead of the serial
  cache+index pipeline;
* ``rescue_attempts`` / ``rescue_migrations`` / ``rescue_preemptions``
  / ``rescue_machines_scanned`` — the Section III.B rescue machinery's
  deterministic accounting: rescue calls, containers moved, containers
  evicted, and candidate machines examined by the strategy loops.
  Identical across the rescue-kernel axis (the decisions are);
* ``rescue_kernel_invocations`` — rescues planned by the vectorized
  kernel (:mod:`repro.core.rescuekernel`) instead of the legacy
  per-machine loop (the one rescue counter that distinguishes the
  kernel axis);
* ``solver_calls`` / ``solver_rounding_repairs`` — LP solves issued by
  the solver engine (:mod:`repro.core.vecsolve`) and planned
  placements its deterministic rounding pass had to reject back into
  the per-container repair path (capacity/affinity drift between the
  relaxed optimum and integral commitment);
* ``solver_relaxation_gap`` — accumulated gap between the LP optimum's
  fractional placement count and the units the rounding pass committed.
  A float (fractional by nature), so like the wall times it is *not*
  part of the deterministic counter set;
* ``phase_time_s`` — wall time per scheduler phase (search, rescue,
  requeue, repair);
* ``worker_time_s`` — per-shard-worker wall seconds inside the parallel
  sweep (the shard-imbalance signal: a skewed distribution means the
  rack partition is lopsided).  Wall times are *not* part of the
  deterministic counter set: :meth:`SchedulerTelemetry.counters`
  excludes both dicts so two runs with the same seed serialise
  byte-identically.

Producers (SPFA, the candidate walk, the feasibility cache) report to a
module-level *current collector* installed by the scheduler around each
``schedule()`` call, so deep call sites need no plumbing.  The collector
is plain module state, matching the single-threaded simulator; nesting
is supported (collectors save/restore) for schedulers that invoke other
schedulers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SchedulerTelemetry:
    """Counters and phase timings for one (or many merged) runs."""

    spfa_relaxations: int = 0
    il_prune_hits: int = 0
    dl_prune_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    batch_kernel_invocations: int = 0
    index_resyncs: int = 0
    machines_skipped: int = 0
    parallel_sweeps: int = 0
    rescue_attempts: int = 0
    rescue_migrations: int = 0
    rescue_preemptions: int = 0
    rescue_machines_scanned: int = 0
    rescue_kernel_invocations: int = 0
    solver_calls: int = 0
    solver_rounding_repairs: int = 0
    #: LP-optimum units minus committed units, accumulated per solve; a
    #: float, so excluded from :meth:`counters` (platform-dependent LP
    #: arithmetic must never leak into the byte-identity contract)
    solver_relaxation_gap: float = 0.0
    #: phase name -> accumulated wall seconds (non-deterministic; kept
    #: out of :meth:`counters` on purpose)
    phase_time_s: dict[str, float] = field(default_factory=dict)
    #: shard worker name -> accumulated wall seconds inside the parallel
    #: sweep (non-deterministic, excluded from :meth:`counters` like the
    #: phase times; the spread across workers is the imbalance signal)
    worker_time_s: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of feasibility verdicts served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        """The deterministic counter set, in a stable key order.

        Two runs with identical seeds produce identical dicts — the
        determinism test serialises this (phase wall times excluded).
        """
        return {
            "spfa_relaxations": self.spfa_relaxations,
            "il_prune_hits": self.il_prune_hits,
            "dl_prune_hits": self.dl_prune_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "batch_kernel_invocations": self.batch_kernel_invocations,
            "index_resyncs": self.index_resyncs,
            "machines_skipped": self.machines_skipped,
            "parallel_sweeps": self.parallel_sweeps,
            "rescue_attempts": self.rescue_attempts,
            "rescue_migrations": self.rescue_migrations,
            "rescue_preemptions": self.rescue_preemptions,
            "rescue_machines_scanned": self.rescue_machines_scanned,
            "rescue_kernel_invocations": self.rescue_kernel_invocations,
            "solver_calls": self.solver_calls,
            "solver_rounding_repairs": self.solver_rounding_repairs,
        }

    def add_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_time_s[phase] = self.phase_time_s.get(phase, 0.0) + seconds

    def add_worker_time(self, worker: str, seconds: float) -> None:
        """Accumulate one shard worker's in-query wall time."""
        self.worker_time_s[worker] = (
            self.worker_time_s.get(worker, 0.0) + seconds
        )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a scheduler phase into :attr:`phase_time_s`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase_time(name, time.perf_counter() - t0)

    def merge(self, other: "SchedulerTelemetry") -> None:
        """Fold another run's telemetry into this one."""
        self.spfa_relaxations += other.spfa_relaxations
        self.il_prune_hits += other.il_prune_hits
        self.dl_prune_hits += other.dl_prune_hits
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_invalidations += other.cache_invalidations
        self.batch_kernel_invocations += other.batch_kernel_invocations
        self.index_resyncs += other.index_resyncs
        self.machines_skipped += other.machines_skipped
        self.parallel_sweeps += other.parallel_sweeps
        self.rescue_attempts += other.rescue_attempts
        self.rescue_migrations += other.rescue_migrations
        self.rescue_preemptions += other.rescue_preemptions
        self.rescue_machines_scanned += other.rescue_machines_scanned
        self.rescue_kernel_invocations += other.rescue_kernel_invocations
        self.solver_calls += other.solver_calls
        self.solver_rounding_repairs += other.solver_rounding_repairs
        self.solver_relaxation_gap += other.solver_relaxation_gap
        for phase, dt in other.phase_time_s.items():
            self.add_phase_time(phase, dt)
        for worker, dt in other.worker_time_s.items():
            self.add_worker_time(worker, dt)

    def summary(self) -> str:
        """One-line human rendering for CLI run summaries."""
        parts = [
            f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses}"
            f" hits ({self.cache_hit_rate:.0%})",
            f"invalidated {self.cache_invalidations}",
            f"IL prunes {self.il_prune_hits}",
            f"DL prunes {self.dl_prune_hits}",
            f"SPFA relaxations {self.spfa_relaxations}",
        ]
        if self.batch_kernel_invocations:
            parts.append(
                f"batch kernel {self.batch_kernel_invocations} blocks"
            )
        if self.index_resyncs:
            parts.append(f"index resyncs {self.index_resyncs}")
        if self.machines_skipped:
            parts.append(f"machines skipped {self.machines_skipped}")
        if self.parallel_sweeps:
            parts.append(f"parallel sweeps {self.parallel_sweeps}")
        if self.rescue_attempts:
            parts.append(
                f"rescues {self.rescue_attempts}"
                f" ({self.rescue_migrations} migr,"
                f" {self.rescue_preemptions} evict,"
                f" {self.rescue_machines_scanned} scanned)"
            )
        if self.rescue_kernel_invocations:
            parts.append(
                f"rescue kernel {self.rescue_kernel_invocations}"
            )
        if self.solver_calls:
            parts.append(
                f"solver {self.solver_calls} LP solves"
                f" ({self.solver_rounding_repairs} rounding repairs,"
                f" gap {self.solver_relaxation_gap:.2f})"
            )
        if self.worker_time_s:
            spread = ", ".join(
                f"{name} {dt * 1000:.1f}ms"
                for name, dt in sorted(self.worker_time_s.items())
            )
            parts.append(f"workers: {spread}")
        if self.phase_time_s:
            timing = ", ".join(
                f"{name} {dt * 1000:.1f}ms"
                for name, dt in sorted(self.phase_time_s.items())
            )
            parts.append(f"phases: {timing}")
        return "; ".join(parts)


# ----------------------------------------------------------------------
# serving-side telemetry
# ----------------------------------------------------------------------
@dataclass
class ServiceTelemetry:
    """Counters of the serving front-end (:mod:`repro.serve`).

    These live *next to* :class:`SchedulerTelemetry`, never inside it:
    admission, rejection and queue-depth figures depend on client
    timing and socket scheduling, so they are legitimately
    nondeterministic and must not leak into the deterministic counter
    set that :meth:`SchedulerTelemetry.counters` feeds into
    ``canonical_json``.  The backpressure property test relies on one
    exact invariant here: every window-type request a client sends is
    either admitted (and eventually decided) or rejected —
    ``requests_admitted + requests_rejected`` equals requests sent,
    none dropped.
    """

    #: window-type requests accepted into the bounded queue
    requests_admitted: int = 0
    #: window-type requests refused with a 429-style reply at admission
    requests_rejected: int = 0
    #: replies that could not be delivered (client disconnected); the
    #: window itself still committed
    replies_failed: int = 0
    #: scheduling windows committed by the coalescer
    windows_committed: int = 0
    #: requests coalesced across all committed windows
    window_requests: int = 0
    #: largest single window (requests coalesced into one round)
    peak_window_size: int = 0
    #: deepest the admission queue ever got
    peak_queue_depth: int = 0

    def record_admission(self, queue_depth: int) -> None:
        self.requests_admitted += 1
        self.peak_queue_depth = max(self.peak_queue_depth, queue_depth)

    def record_rejection(self) -> None:
        self.requests_rejected += 1

    def record_window(self, size: int) -> None:
        self.windows_committed += 1
        self.window_requests += size
        self.peak_window_size = max(self.peak_window_size, size)

    @property
    def mean_window_size(self) -> float:
        if not self.windows_committed:
            return 0.0
        return self.window_requests / self.windows_committed

    def counters(self) -> dict[str, int]:
        """Stable-ordered dict for the ``stats`` protocol reply."""
        return {
            "requests_admitted": self.requests_admitted,
            "requests_rejected": self.requests_rejected,
            "replies_failed": self.replies_failed,
            "windows_committed": self.windows_committed,
            "window_requests": self.window_requests,
            "peak_window_size": self.peak_window_size,
            "peak_queue_depth": self.peak_queue_depth,
        }

    def summary(self) -> str:
        """One-line human rendering for the serve CLI shutdown report."""
        return (
            f"admitted {self.requests_admitted}, rejected "
            f"{self.requests_rejected}, windows {self.windows_committed} "
            f"(mean {self.mean_window_size:.1f} req/window, peak "
            f"{self.peak_window_size}), peak queue {self.peak_queue_depth}, "
            f"undeliverable replies {self.replies_failed}"
        )


# ----------------------------------------------------------------------
# the current collector
# ----------------------------------------------------------------------
_current: SchedulerTelemetry | None = None


def current() -> SchedulerTelemetry | None:
    """The collector installed by the innermost :func:`collect`, if any."""
    return _current


@contextmanager
def collect(telemetry: SchedulerTelemetry) -> Iterator[SchedulerTelemetry]:
    """Install ``telemetry`` as the current collector for the block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
