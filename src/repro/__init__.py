"""repro — reproduction of *Aladdin: Optimized Maximum Flow Management
for Shared Production Clusters* (Wu et al., IPDPS 2019).

The package implements the paper's scheduler (:class:`AladdinScheduler`),
every substrate it depends on (cluster model, flow networks, synthetic
Alibaba-like traces), the Table-I comparator schedulers, and the
simulation harness that regenerates every table and figure of the
evaluation section.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart::

    from repro import (
        generate_trace, Simulator, AladdinScheduler, ArrivalOrder,
    )

    trace = generate_trace(scale=0.05, seed=0)
    sim = Simulator(trace)
    result = sim.run(AladdinScheduler(), ArrivalOrder.TRACE)
    print(result.summary())
"""

from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.telemetry import SchedulerTelemetry
from repro.cluster import (
    Application,
    ClusterSpec,
    ClusterState,
    ClusterTopology,
    Container,
    ConstraintSet,
    MachineSpec,
    build_cluster,
    build_heterogeneous_cluster,
)
from repro.core import (
    AladdinConfig,
    AladdinScheduler,
    FeasibilityCache,
    FlowPathSearch,
    PlacementInvalidError,
    QualityMetrics,
    ValidationReport,
    engine_for,
    measure_quality,
    quality_gaps,
    validate_state,
    validate_window,
)
from repro.baselines import (
    SCHEDULERS,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
)
from repro.sim import (
    SimulationMetrics,
    SimulationResult,
    Simulator,
    compute_metrics,
    latency_sweep,
    minimum_cluster_size,
    relative_efficiency,
    run_experiment,
    run_online,
)
from repro.trace import (
    ArrivalOrder,
    Trace,
    TraceConfig,
    generate_trace,
    load_trace,
    order_containers,
    save_trace,
    workload_stats,
)

__version__ = "1.0.0"

__all__ = [
    "FailureReason",
    "ScheduleResult",
    "Scheduler",
    "Application",
    "ClusterSpec",
    "ClusterState",
    "ClusterTopology",
    "Container",
    "ConstraintSet",
    "MachineSpec",
    "build_cluster",
    "build_heterogeneous_cluster",
    "AladdinConfig",
    "AladdinScheduler",
    "FeasibilityCache",
    "FlowPathSearch",
    "PlacementInvalidError",
    "QualityMetrics",
    "ValidationReport",
    "engine_for",
    "measure_quality",
    "quality_gaps",
    "validate_state",
    "validate_window",
    "SchedulerTelemetry",
    "SCHEDULERS",
    "FirmamentPolicy",
    "FirmamentScheduler",
    "GoKubeScheduler",
    "MedeaScheduler",
    "MedeaWeights",
    "SimulationMetrics",
    "SimulationResult",
    "Simulator",
    "compute_metrics",
    "latency_sweep",
    "minimum_cluster_size",
    "relative_efficiency",
    "run_experiment",
    "run_online",
    "ArrivalOrder",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "load_trace",
    "order_containers",
    "save_trace",
    "workload_stats",
    "__version__",
]
