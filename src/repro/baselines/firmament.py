"""Firmament: multi-round flow scheduling with ``reschd(i)``.

Firmament (Gog et al., OSDI'16) solves placement as a global flow
problem but is constraint-oblivious inside the solve; the paper enhances
it for LLAs with a *multi-round scheduling and timeout mechanism*
(Sections I and V.B):

1. **Round 0** — every container is placed by the policy's cost model
   under resource feasibility only (anti-affinity is invisible to the
   flow solve, exactly as in Fig. 1b).
2. **Conflict resolution rounds** — on every machine violating
   anti-affinity, up to ``reschd_i`` containers are selected (most
   conflicted first — the "non-optimized container" choice of
   Section V.B) and evicted back into the queue.  Requeued containers
   are placed constraint-aware; a requeued container with no admitting
   machine stays queued.
3. **Timeout** — after ``max_rounds`` rounds, still-queued containers
   are undeployed and unresolved co-locations stay as violations.

Larger ``reschd_i`` clears conflicts faster (fewer violations survive
the timeout) at the price of more reschedule churn — the Fig. 9(a–d)
sweep over i ∈ {1, 2, 4, 8}.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro import telemetry
from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.baselines.firmament_policies import FirmamentPolicy, machine_costs
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.flownet.mincost import min_cost_max_flow


class FirmamentScheduler(Scheduler):
    """Multi-round Firmament with a pluggable cost model."""

    def __init__(
        self,
        policy: FirmamentPolicy = FirmamentPolicy.QUINCY,
        reschd: int = 1,
        max_rounds: int = 8,
        seed: int = 0,
    ) -> None:
        if reschd < 1:
            raise ValueError(f"reschd must be >= 1, got {reschd}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.policy = policy
        self.reschd = reschd
        self.max_rounds = max_rounds
        self.name = f"Firmament-{policy.name}({reschd})"
        self._rng = np.random.default_rng(seed)  # used by the RANDOM policy

    # ------------------------------------------------------------------
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        t0 = time.perf_counter()
        result = ScheduleResult()
        result.telemetry = telemetry.SchedulerTelemetry()
        with telemetry.collect(result.telemetry):
            self._schedule(containers, state, result)
        result.elapsed_s = time.perf_counter() - t0
        return result

    def _schedule(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        # Round 0: constraint-oblivious global placement.
        unplaced = self._flow_round(containers, state, result)
        for c in unplaced:
            result.undeployed[c.container_id] = FailureReason.RESOURCES

        # Conflict-resolution rounds.
        queue: deque[Container] = deque()
        for round_no in range(self.max_rounds):
            evicted = self._evict_conflicted(state, result)
            queue.extend(evicted)
            if not queue:
                break
            still_queued: deque[Container] = deque()
            while queue:
                container = queue.popleft()
                machine = self._constraint_aware_pick(container, state, result)
                if machine is None:
                    still_queued.append(container)
                    continue
                demand = container.demand_vector(state.topology.resources)
                state.deploy(container, machine, demand)
                result.placements[container.container_id] = machine
                result.migrations += 1
            queue = still_queued

        # Timeout: whatever is still queued could not be placed without
        # a violation.
        for container in queue:
            result.placements.pop(container.container_id, None)
            result.undeployed[container.container_id] = FailureReason.ANTI_AFFINITY
        # Remaining co-locations survive as violations.
        self._mark_surviving_violations(state, result)

    # ------------------------------------------------------------------
    # round 0
    # ------------------------------------------------------------------
    def _flow_round(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> list[Container]:
        """Place every container by policy cost, resources only."""
        if self.policy is FirmamentPolicy.QUINCY:
            return self._flow_round_quincy(containers, state, result)
        unplaced: list[Container] = []
        for container in containers:
            demand = container.demand_vector(state.topology.resources)
            fits = (state.available >= demand).all(axis=1)
            result.explored += state.n_machines
            if not fits.any():
                unplaced.append(container)
                continue
            costs = machine_costs(self.policy, state, self._rng)
            ids = np.flatnonzero(fits)
            machine = int(ids[np.argmin(costs[ids])])
            state.deploy(container, machine, demand, force=True)
            result.placements[container.container_id] = machine
        return unplaced

    def _flow_round_quincy(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> list[Container]:
        """Global min-cost-flow assignment over CPU units.

        A compact aggregated network (demand-classes → machines) keeps
        the solve tractable: containers of equal CPU demand are
        interchangeable commodities for the flow, and the decode step
        assigns concrete containers to the machines their class's flow
        reached.  This mirrors Firmament's equivalence-class
        aggregation.
        """
        from repro.flownet.graph import FlowNetwork

        classes: dict[float, list[Container]] = {}
        for c in containers:
            classes.setdefault(c.cpu, []).append(c)
        class_keys = sorted(classes)
        n_machines = state.n_machines
        # nodes: source, one per class, one per machine, sink
        net = FlowNetwork(2 + len(class_keys) + n_machines)
        source = 0
        sink = net.n_nodes - 1
        class_node = {k: 1 + i for i, k in enumerate(class_keys)}
        machine_node = {m: 1 + len(class_keys) + m for m in range(n_machines)}
        costs = machine_costs(FirmamentPolicy.QUINCY, state)
        class_edges: dict[float, list[tuple[int, int]]] = {k: [] for k in class_keys}
        for k in class_keys:
            demand_total = k * len(classes[k])
            net.add_edge(source, class_node[k], demand_total)
            for m in range(n_machines):
                # Class -> machine edge; unit cost scaled per CPU.
                e = net.add_edge(
                    class_node[k], machine_node[m], 1e18, cost=costs[m] / max(k, 1)
                )
                class_edges[k].append((e, m))
        for m in range(n_machines):
            net.add_edge(machine_node[m], sink, float(state.available[m, 0]))
        result.explored += len(class_keys) * n_machines
        min_cost_max_flow(net, source, sink)

        unplaced: list[Container] = []
        for k in class_keys:
            # CPU units routed to each machine, in whole containers.
            slots: list[int] = []
            for e, m in class_edges[k]:
                units = net.flow_on(e)
                slots.extend([m] * int(round(units / k)))
            pending = list(classes[k])
            for container, machine in zip(pending, slots):
                demand = container.demand_vector(state.topology.resources)
                if not state.fits(demand, machine):
                    unplaced.append(container)  # decode rounding spillover
                    continue
                state.deploy(container, machine, demand, force=True)
                result.placements[container.container_id] = machine
            for container in pending[len(slots):]:
                unplaced.append(container)
        # The aggregated solve is CPU-only; spillovers retry greedily.
        still: list[Container] = []
        for container in unplaced:
            demand = container.demand_vector(state.topology.resources)
            fits = (state.available >= demand).all(axis=1)
            if not fits.any():
                still.append(container)
                continue
            ids = np.flatnonzero(fits)
            machine = int(ids[np.argmin(costs[ids])])
            state.deploy(container, machine, demand, force=True)
            result.placements[container.container_id] = machine
        return still

    # ------------------------------------------------------------------
    # conflict handling
    # ------------------------------------------------------------------
    def _evict_conflicted(
        self, state: ClusterState, result: ScheduleResult
    ) -> list[Container]:
        """Evict up to ``reschd`` most-conflicted containers per machine."""
        cs = state.constraints
        evicted: list[Container] = []
        for machine_id in list(state.machine_containers):
            residents = state.deployed_containers(machine_id)
            if len(residents) < 2:
                continue
            conflict_degree: dict[int, int] = {}
            for i, a in enumerate(residents):
                for b in residents[i + 1 :]:
                    if cs.violates(a.app_id, b.app_id):
                        conflict_degree[a.container_id] = (
                            conflict_degree.get(a.container_id, 0) + 1
                        )
                        conflict_degree[b.container_id] = (
                            conflict_degree.get(b.container_id, 0) + 1
                        )
            if not conflict_degree:
                continue
            worst = sorted(
                conflict_degree, key=lambda cid: -conflict_degree[cid]
            )[: self.reschd]
            for cid in worst:
                evicted.append(state.evict(cid))
                result.placements.pop(cid, None)
        return evicted

    def _constraint_aware_pick(
        self, container: Container, state: ClusterState, result: ScheduleResult
    ) -> int | None:
        """Cheapest machine that fits *and* respects anti-affinity."""
        demand = container.demand_vector(state.topology.resources)
        feasible = state.feasible_mask(demand, container.app_id)
        result.explored += state.n_machines
        if not feasible.any():
            return None
        costs = machine_costs(self.policy, state, self._rng)
        ids = np.flatnonzero(feasible)
        return int(ids[np.argmin(costs[ids])])

    @staticmethod
    def _mark_surviving_violations(
        state: ClusterState, result: ScheduleResult
    ) -> None:
        """Record containers still co-located in violation after timeout."""
        cs = state.constraints
        for machine_id, cids in state.machine_containers.items():
            if len(cids) < 2:
                continue
            residents = state.deployed_containers(machine_id)
            for i, a in enumerate(residents):
                for b in residents[i + 1 :]:
                    if cs.violates(a.app_id, b.app_id):
                        result.violating.add(a.container_id)
                        result.violating.add(b.container_id)
