"""Go-Kube: a Kubernetes-1.11-style scoring scheduler.

The paper implements "Go-Kube with a similar node scoring algorithm in
Kubernetes 1.11" (Section V.A).  The model here follows the upstream
default priority functions of that release:

* **Filter** — resource fit, then the anti-affinity predicate.  The two
  constraint families are applied *separately* per container — exactly
  the structural weakness the paper blames for Go-Kube's flat ~21 %
  violation rate: each container is locally constraint-checked, but
  there is no global optimisation across both constraint kinds.
* **Score** — ``LeastRequestedPriority`` (prefer the emptiest machine)
  plus ``BalancedResourceAllocation`` (prefer balanced CPU/memory use).
  The spreading bias is why Go-Kube burns up to 14,211 machines in
  Fig. 10 and fragments the cluster until large containers no longer
  fit.
* **Preemption** — like Kubernetes, a container that fits nowhere may
  evict strictly lower-priority pods; victims rejoin the queue and are
  permanently failed on their second eviction.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.cluster.container import Container
from repro.cluster.state import ClusterState


class GoKubeScheduler(Scheduler):
    """Queue-based filter-and-score scheduler (Kubernetes 1.11 model)."""

    name = "Go-Kube"

    def __init__(
        self, enable_preemption: bool = True, max_preemption_victims: int = 4
    ) -> None:
        self.enable_preemption = enable_preemption
        #: kube-scheduler strongly favours low-disruption preemptions; a
        #: nomination that would evict a whole machine's worth of pods
        #: is rejected.  This bound models that disruption budget.
        self.max_preemption_victims = max_preemption_victims

    # ------------------------------------------------------------------
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        t0 = time.perf_counter()
        result = ScheduleResult()
        queue: deque[tuple[Container, bool]] = deque(
            (c, False) for c in containers
        )
        cap = state.topology.capacity

        while queue:
            container, was_preempted = queue.popleft()
            demand = container.demand_vector(state.topology.resources)
            fits = (state.available >= demand).all(axis=1)
            result.explored += state.n_machines
            feasible = fits & ~state.forbidden_mask(container.app_id)

            if feasible.any():
                machine = self._best_scored(state, feasible, demand, cap)
                state.deploy(container, machine, demand)
                result.placements[container.container_id] = machine
                continue

            if self.enable_preemption and not was_preempted:
                machine, victims = self._try_preempt(container, demand, state)
                if machine is not None:
                    for victim in victims:
                        state.evict(victim.container_id)
                        result.placements.pop(victim.container_id, None)
                        result.preemptions += 1
                        queue.append((victim, True))
                    state.deploy(container, machine, demand)
                    result.placements[container.container_id] = machine
                    continue

            if was_preempted:
                reason = FailureReason.PREEMPTED
            elif fits.any():
                reason = FailureReason.ANTI_AFFINITY
            else:
                reason = FailureReason.RESOURCES
            result.undeployed[container.container_id] = reason

        result.elapsed_s = time.perf_counter() - t0
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _best_scored(
        state: ClusterState,
        feasible: np.ndarray,
        demand: np.ndarray,
        cap: np.ndarray,
    ) -> int:
        """Kubernetes 1.11 default scoring over the feasible machines.

        Both functions score in [0, 10]; higher is better.  Ties break
        on the lowest machine id, as kube-scheduler's stable selection
        effectively does.
        """
        ids = np.flatnonzero(feasible)
        after = state.available[ids] - demand  # hypothetical remaining
        frac_free = after / cap[ids]
        least_requested = 10.0 * frac_free.mean(axis=1)
        used_frac = 1.0 - frac_free
        balanced = 10.0 * (
            1.0 - np.abs(used_frac[:, 0] - used_frac[:, -1])
        )
        score = least_requested + balanced
        best = np.argmax(score)  # argmax returns the first (lowest id) max
        return int(ids[best])

    # ------------------------------------------------------------------
    def _try_preempt(
        self, container: Container, demand: np.ndarray, state: ClusterState
    ) -> tuple[int | None, list[Container]]:
        """Find a machine freed by evicting strictly lower-priority pods.

        Mirrors kube-scheduler's preemption: only machines where the
        eviction set clears *both* the resource shortfall and every
        anti-affinity blocker are eligible; the machine needing the
        fewest victims wins.
        """
        cs = state.constraints
        best: tuple[int, list[Container]] | None = None
        for machine_id, cids in state.machine_containers.items():
            if not cids:
                continue
            residents = state.deployed_containers(machine_id)
            blockers = [
                c for c in residents if cs.violates(container.app_id, c.app_id)
            ]
            if any(b.priority >= container.priority for b in blockers):
                continue
            victims = list(blockers)
            freed = state.available[machine_id].copy()
            for v in victims:
                freed = freed + v.demand_vector(state.topology.resources)
            if not (freed >= demand).all():
                lower = sorted(
                    (
                        c
                        for c in residents
                        if c.priority < container.priority and c not in victims
                    ),
                    key=lambda c: c.cpu,
                )
                for extra in lower:
                    victims.append(extra)
                    freed = freed + extra.demand_vector(state.topology.resources)
                    if (freed >= demand).all():
                        break
            if not (freed >= demand).all():
                continue
            if len(victims) > self.max_preemption_victims:
                continue
            if best is None or len(victims) < len(best[1]):
                best = (machine_id, victims)
        if best is None:
            return None, []
        return best
