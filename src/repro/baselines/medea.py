"""Medea: weighted-objective placement of LLAs (EuroSys'18).

Medea formulates LLA placement as an integer linear program balancing
three weighted goals — place as many containers as possible, avoid
resource fragmentation, and minimise constraint violations — written
``weights(a, b, c)`` in the paper's evaluation:

* ``a`` — reward for each placed container;
* ``b`` — anti-fragmentation (packing) pressure;
* ``c`` — *violation tolerance*: with ``c = 0`` anti-affinity is a hard
  constraint; with ``c > 0`` a violating placement is admissible at a
  penalty that shrinks as ``c`` grows.  With ``c = 1`` the penalty
  vanishes and the packing term freely overrides anti-affinity — the
  "weighted values are not optimized" regime where Medea tolerates
  violations (12.9 % in Fig. 9a).

The default solver is a per-window greedy maximisation of the same
objective (Medea's own heuristic mode for large batches); ``exact=True``
solves each window with :mod:`scipy.optimize.milp` instead and is meant
for small instances — the tests cross-check both against each other.
No migration or preemption is performed, which is why Medea retains a
~5 % undeployed floor where Aladdin reaches zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.cluster.container import Container
from repro.cluster.state import ClusterState

#: Penalty scale for one tolerated violation.  The effective penalty is
#: ``(1 - c) * SCALE + SOFT_FLOOR``: at c = 1 only the floor remains, so
#: the packing term can override anti-affinity when the legal
#: alternative is much emptier (the paper's "not optimized" regime); at
#: intermediate c the penalty dwarfs any packing gain and violations
#: happen only when no legal machine exists; at c = 0 the rule is hard.
_VIOLATION_PENALTY_SCALE = 10.0
_VIOLATION_SOFT_FLOOR = 0.55


def violation_penalty(c: float) -> float:
    """Effective per-violation penalty for tolerance weight ``c``."""
    if c <= 0.0:
        return float("inf")
    return (1.0 - c) * _VIOLATION_PENALTY_SCALE + _VIOLATION_SOFT_FLOOR


@dataclass(frozen=True)
class MedeaWeights:
    """The ``weights(a, b, c)`` triple of the evaluation."""

    a: float = 1.0
    b: float = 1.0
    c: float = 0.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c"):
            v = getattr(self, name)
            if not 0 <= v <= 1:
                raise ValueError(f"weight {name} must be in [0, 1], got {v}")
        if self.a <= 0:
            raise ValueError("placement weight a must be positive")

    def label(self) -> str:
        return f"({self.a:g},{self.b:g},{self.c:g})"


class MedeaScheduler(Scheduler):
    """Windowed weighted-objective placement."""

    def __init__(
        self,
        weights: MedeaWeights | None = None,
        window_apps: int = 64,
        exact: bool = False,
    ) -> None:
        self.weights = weights if weights is not None else MedeaWeights()
        self.window_apps = window_apps
        self.exact = exact
        self.name = f"Medea{self.weights.label()}"

    # ------------------------------------------------------------------
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        t0 = time.perf_counter()
        result = ScheduleResult()
        blocks: list[list[Container]] = []
        for c in containers:
            if blocks and blocks[-1][0].app_id == c.app_id:
                blocks[-1].append(c)
            else:
                blocks.append([c])
        for start in range(0, len(blocks), self.window_apps):
            window = [c for b in blocks[start : start + self.window_apps] for c in b]
            if self.exact:
                self._solve_window_exact(window, state, result)
            else:
                self._solve_window_greedy(window, state, result)
        result.elapsed_s = time.perf_counter() - t0
        return result

    # ------------------------------------------------------------------
    # greedy objective maximisation (the at-scale mode)
    # ------------------------------------------------------------------
    def _solve_window_greedy(
        self,
        window: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        w = self.weights
        cap = state.topology.capacity
        penalty = violation_penalty(w.c)
        for container in window:
            demand = container.demand_vector(state.topology.resources)
            fits = (state.available >= demand).all(axis=1)
            result.explored += state.n_machines
            if not fits.any():
                result.undeployed[container.container_id] = FailureReason.RESOURCES
                continue
            forbidden = state.forbidden_mask(container.app_id)
            if w.c == 0.0:
                allowed = fits & ~forbidden
                if not allowed.any():
                    result.undeployed[container.container_id] = (
                        FailureReason.ANTI_AFFINITY
                    )
                    continue
            else:
                allowed = fits
            ids = np.flatnonzero(allowed)
            # Objective per machine: placement reward plus packing
            # reward minus the violation penalty.  A negative best score
            # means even the weighted objective prefers leaving the
            # container unplaced.
            packing = w.b * (1.0 - state.available[ids, 0] / cap[ids, 0])
            score = w.a + packing - np.where(forbidden[ids], penalty, 0.0)
            best_idx = int(np.argmax(score))
            if score[best_idx] < 0.0:
                result.undeployed[container.container_id] = (
                    FailureReason.ANTI_AFFINITY
                )
                continue
            best = int(ids[best_idx])
            violates = bool(forbidden[best])
            state.deploy(container, best, demand, force=violates)
            result.placements[container.container_id] = best
            if violates:
                result.violating.add(container.container_id)

    # ------------------------------------------------------------------
    # exact MILP per window (small instances / cross-checks)
    # ------------------------------------------------------------------
    def _solve_window_exact(
        self,
        window: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        from repro.baselines.ilp import solve_medea_window

        assignment = solve_medea_window(window, state, self.weights)
        result.explored += len(window) * state.n_machines
        for container in window:
            machine = assignment.get(container.container_id)
            if machine is None:
                demand = container.demand_vector(state.topology.resources)
                fits = (state.available >= demand).all(axis=1)
                reason = (
                    FailureReason.ANTI_AFFINITY
                    if fits.any()
                    else FailureReason.RESOURCES
                )
                result.undeployed[container.container_id] = reason
                continue
            demand = container.demand_vector(state.topology.resources)
            violates = state.would_violate(container, machine)
            state.deploy(container, machine, demand, force=violates)
            result.placements[container.container_id] = machine
            if violates:
                result.violating.add(container.container_id)
