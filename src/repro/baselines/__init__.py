"""The Table-I comparator schedulers.

============================  =====================================================
Name                          Description (Table I of the paper)
============================  =====================================================
``Firmament-TRIVIAL``         Containers always scheduled if resources are idle.
``Firmament-QUINCY``          Original Quincy cost model, lower cost priority.
``Firmament-OCTOPUS``         Simple load balancing based on container counts.
``Medea``                     Balance resource efficiency and constraint violations.
``Go-Kube``                   Scoring machines and choose the best one.
============================  =====================================================

:data:`SCHEDULERS` is the registry used by the Table-I benchmark and by
the experiment runner to instantiate any comparator by name.
"""

from repro.baselines.kube import GoKubeScheduler
from repro.baselines.firmament import FirmamentScheduler, FirmamentPolicy
from repro.baselines.medea import MedeaScheduler, MedeaWeights

#: name -> (factory, Table-I description)
SCHEDULERS = {
    "Go-Kube": (
        lambda: GoKubeScheduler(),
        "Scoring machines and choose the best one.",
    ),
    "Firmament-TRIVIAL": (
        lambda: FirmamentScheduler(FirmamentPolicy.TRIVIAL),
        "Containers always scheduled if resources are idle.",
    ),
    "Firmament-QUINCY": (
        lambda: FirmamentScheduler(FirmamentPolicy.QUINCY),
        "Original Quincy cost model, lower cost priority.",
    ),
    "Firmament-OCTOPUS": (
        lambda: FirmamentScheduler(FirmamentPolicy.OCTOPUS),
        "Simple load balancing based on container counts.",
    ),
    "Medea": (
        lambda: MedeaScheduler(),
        "Balance resource efficiency and constraint violations.",
    ),
}

__all__ = [
    "GoKubeScheduler",
    "FirmamentScheduler",
    "FirmamentPolicy",
    "MedeaScheduler",
    "MedeaWeights",
    "SCHEDULERS",
]
