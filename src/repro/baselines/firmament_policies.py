"""Firmament cost models (the three policies used in the evaluation).

Firmament maps scheduling to a min-cost flow problem; a *policy* is the
cost model that ranks machines for a container.  The paper selects the
three most used of the eight in the Firmament code base (Section V.A):

* **TRIVIAL** — schedule whenever resources are idle, preferring the
  most packed machine ("it always tries to deploy a container to the
  most packed machines", Section V.B);
* **QUINCY** — the original Quincy cost model: each placement carries a
  cost and the global solve prefers lower total cost;
* **OCTOPUS** — load balancing on container counts: prefer the machine
  currently running the fewest containers.

Costs are returned per machine so the round driver can either pick
greedily (TRIVIAL/OCTOPUS, which are local cost models) or hand them to
the min-cost-flow solve (QUINCY, a global cost model).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cluster.state import ClusterState


class FirmamentPolicy(enum.Enum):
    """Firmament scheduling policies.

    TRIVIAL, QUINCY and OCTOPUS are the three the paper evaluates
    (Section V.A selects "the three most used" of the code base's
    eight); RANDOM is one more of those eight, kept as a floor
    baseline for the ablations.
    """

    TRIVIAL = "trivial"
    QUINCY = "quincy"
    OCTOPUS = "octopus"
    RANDOM = "random"


def machine_costs(
    policy: FirmamentPolicy,
    state: ClusterState,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-machine placement cost under ``policy`` (lower is better).

    Costs are computed against the *current* state, once per scheduling
    pass; the round driver adds the resource-feasibility filter.
    """
    if policy is FirmamentPolicy.TRIVIAL:
        # Most packed first: cost grows with remaining CPU.
        return state.available[:, 0].astype(np.float64)
    if policy is FirmamentPolicy.OCTOPUS:
        return state.container_count.astype(np.float64)
    if policy is FirmamentPolicy.RANDOM:
        if rng is None:
            rng = np.random.default_rng(0)
        return rng.random(state.n_machines)
    if policy is FirmamentPolicy.QUINCY:
        # Quincy charges for the resources a placement would strand:
        # an almost-full and an almost-empty machine are both cheap
        # (good packing / cheap preemption respectively), middling
        # machines cost the most.  This is the shape of the original
        # cost model with data-locality terms degenerate (containers
        # here have no input data).
        cap = state.topology.capacity[:, 0]
        frac_free = state.available[:, 0] / cap
        return (frac_free * (1.0 - frac_free) * 4.0 + frac_free * 0.5) * cap
    raise ValueError(f"unknown policy {policy!r}")
