"""Exact MILP solve of one Medea window (scipy.optimize.milp).

Medea's published formulation is an ILP over placement indicators; this
module reproduces it exactly for one scheduling window so the greedy
mode of :class:`~repro.baselines.medea.MedeaScheduler` can be
cross-checked on small instances.

Variables: ``x[i, j] ∈ {0, 1}`` — container ``i`` placed on machine
``j`` — plus, when the violation weight ``c > 0``, one tolerance
variable ``z`` per potentially-violating co-location.  The objective
maximises

    a·Σx  +  b·Σ packing_j · x[i,j]  −  (1−c)·P·Σ z

subject to single placement per container, per-machine multidimensional
capacity (Equation-1 analogue), and, when ``c = 0``, hard anti-affinity
exclusions instead of the ``z`` relaxation.

The sparse ``A_ub x <= b_ub`` assembly lives in
:class:`SparseLinearModel` so the solver engine
(:mod:`repro.core.vecsolve`) reuses the exact same machinery for its
LP-relaxed window formulation instead of growing a second COO builder.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.vecsolve import _require_scipy

_PENALTY_SCALE = 10.0


class SparseLinearModel:
    """Incremental COO assembly of an ``A_ub x <= b_ub`` constraint block.

    Shared by the Medea window MILP below and the solver engine's window
    LP: callers append rows entry by entry (:meth:`add_entry` under an
    explicit row counter, or whole rows via :meth:`add_row`) and finish
    with :meth:`constraints`, which materialises the CSR matrix and the
    :class:`scipy.optimize.LinearConstraint` in one go.  scipy is only
    imported at materialisation time, keeping the assembly importable
    without the ``solver`` extra.
    """

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.ub: list[float] = []
        self.n_rows = 0

    def add_entry(self, row: int, col: int, val: float) -> None:
        """Append one coefficient to an open row."""
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(val)

    def close_row(self, ub: float) -> int:
        """Finish the current row with its upper bound; returns its id."""
        self.ub.append(float(ub))
        row = self.n_rows
        self.n_rows += 1
        return row

    def add_row(self, entries: list[tuple[int, float]], ub: float) -> int:
        """Append one complete ``Σ coef·x[col] <= ub`` row."""
        row = self.n_rows
        for col, val in entries:
            self.add_entry(row, col, val)
        return self.close_row(ub)

    def matrix(self, n_vars: int):
        """The assembled sparse CSR matrix, shape (n_rows, n_vars)."""
        _require_scipy()
        from scipy import sparse

        return sparse.csr_matrix(
            (self.vals, (self.rows, self.cols)),
            shape=(self.n_rows, n_vars),
        )

    def constraints(self, n_vars: int):
        """The assembled :class:`scipy.optimize.LinearConstraint`."""
        _require_scipy()
        from scipy import optimize

        return optimize.LinearConstraint(
            self.matrix(n_vars), ub=np.array(self.ub)
        )


def solve_medea_window(
    window: list[Container],
    state: ClusterState,
    weights,
    time_limit_s: float = 30.0,
) -> dict[int, int]:
    """Return container id → machine id for one window (omissions = unplaced).

    Only machines that are resource-feasible for at least one window
    container enter the model; the caller applies the assignment.
    """
    _require_scipy()
    from scipy import optimize

    if not window:
        return {}
    topo = state.topology
    cs = state.constraints
    n = len(window)
    demands = np.stack([c.demand_vector(topo.resources) for c in window])
    # Candidate machines: feasible for the smallest demand in the window.
    min_demand = demands.min(axis=0)
    machines = np.flatnonzero((state.available >= min_demand).all(axis=1))
    if machines.size == 0:
        return {}
    m = machines.size
    cap = topo.capacity[machines, 0]
    packing = 1.0 - state.available[machines, 0] / cap

    # x variables laid out row-major: x[i, j] at i * m + j.
    n_x = n * m

    def xid(i: int, j: int) -> int:
        return i * m + j

    hard = weights.c == 0.0
    penalty = (1.0 - weights.c) * _PENALTY_SCALE

    # Pre-deployment conflicts: machine j already hosts an app that
    # conflicts with container i.
    pre_conflict = np.zeros((n, m), dtype=bool)
    for j, machine_id in enumerate(machines):
        resident_apps = {
            c.app_id for c in state.deployed_containers(int(machine_id))
        }
        for i, container in enumerate(window):
            if any(cs.violates(container.app_id, ra) for ra in resident_apps):
                pre_conflict[i, j] = True

    # Window-internal conflicting pairs.
    pairs: list[tuple[int, int]] = []
    for i1 in range(n):
        for i2 in range(i1 + 1, n):
            if cs.violates(window[i1].app_id, window[i2].app_id):
                pairs.append((i1, i2))

    n_z = 0 if hard else (len(pairs) * m + int(pre_conflict.sum()))
    n_vars = n_x + n_z

    objective = np.zeros(n_vars)
    for i in range(n):
        for j in range(m):
            objective[xid(i, j)] = -(weights.a + weights.b * packing[j])
    if not hard:
        objective[n_x:] = penalty  # scipy minimises

    model = SparseLinearModel()

    # One placement per container.
    for i in range(n):
        model.add_row([(xid(i, j), 1.0) for j in range(m)], 1.0)
    # Machine capacity per resource dimension.
    for j, machine_id in enumerate(machines):
        for d in range(topo.n_dims):
            model.add_row(
                [(xid(i, j), demands[i, d]) for i in range(n)],
                float(state.available[int(machine_id), d]),
            )

    z_cursor = n_x
    if hard:
        # Hard anti-affinity: forbid pre-conflicted placements and
        # co-location of conflicting pairs.
        for i in range(n):
            for j in range(m):
                if pre_conflict[i, j]:
                    model.add_row([(xid(i, j), 1.0)], 0.0)
        for (i1, i2) in pairs:
            for j in range(m):
                model.add_row(
                    [(xid(i1, j), 1.0), (xid(i2, j), 1.0)], 1.0
                )
    else:
        # Soft: z >= x1 + x2 - 1 per pair/machine; z >= x per
        # pre-conflicted placement.
        for (i1, i2) in pairs:
            for j in range(m):
                model.add_row(
                    [
                        (xid(i1, j), 1.0),
                        (xid(i2, j), 1.0),
                        (z_cursor, -1.0),
                    ],
                    1.0,
                )
                z_cursor += 1
        for i in range(n):
            for j in range(m):
                if pre_conflict[i, j]:
                    model.add_row(
                        [(xid(i, j), 1.0), (z_cursor, -1.0)], 0.0
                    )
                    z_cursor += 1

    res = optimize.milp(
        c=objective,
        constraints=model.constraints(n_vars),
        integrality=np.ones(n_vars),
        bounds=optimize.Bounds(0, 1),
        options={"time_limit": time_limit_s},
    )
    if res.x is None:
        return {}
    x = np.round(res.x[:n_x]).reshape(n, m)
    assignment: dict[int, int] = {}
    for i, container in enumerate(window):
        placed = np.flatnonzero(x[i] > 0.5)
        if placed.size:
            assignment[container.container_id] = int(machines[placed[0]])
    return assignment
