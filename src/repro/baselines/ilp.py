"""Exact MILP solve of one Medea window (scipy.optimize.milp).

Medea's published formulation is an ILP over placement indicators; this
module reproduces it exactly for one scheduling window so the greedy
mode of :class:`~repro.baselines.medea.MedeaScheduler` can be
cross-checked on small instances.

Variables: ``x[i, j] ∈ {0, 1}`` — container ``i`` placed on machine
``j`` — plus, when the violation weight ``c > 0``, one tolerance
variable ``z`` per potentially-violating co-location.  The objective
maximises

    a·Σx  +  b·Σ packing_j · x[i,j]  −  (1−c)·P·Σ z

subject to single placement per container, per-machine multidimensional
capacity (Equation-1 analogue), and, when ``c = 0``, hard anti-affinity
exclusions instead of the ``z`` relaxation.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.container import Container
from repro.cluster.state import ClusterState

_PENALTY_SCALE = 10.0


def solve_medea_window(
    window: list[Container],
    state: ClusterState,
    weights,
    time_limit_s: float = 30.0,
) -> dict[int, int]:
    """Return container id → machine id for one window (omissions = unplaced).

    Only machines that are resource-feasible for at least one window
    container enter the model; the caller applies the assignment.
    """
    from scipy import optimize, sparse

    if not window:
        return {}
    topo = state.topology
    cs = state.constraints
    n = len(window)
    demands = np.stack([c.demand_vector(topo.resources) for c in window])
    # Candidate machines: feasible for the smallest demand in the window.
    min_demand = demands.min(axis=0)
    machines = np.flatnonzero((state.available >= min_demand).all(axis=1))
    if machines.size == 0:
        return {}
    m = machines.size
    cap = topo.capacity[machines, 0]
    packing = 1.0 - state.available[machines, 0] / cap

    # x variables laid out row-major: x[i, j] at i * m + j.
    n_x = n * m

    def xid(i: int, j: int) -> int:
        return i * m + j

    hard = weights.c == 0.0
    penalty = (1.0 - weights.c) * _PENALTY_SCALE

    # Pre-deployment conflicts: machine j already hosts an app that
    # conflicts with container i.
    pre_conflict = np.zeros((n, m), dtype=bool)
    for j, machine_id in enumerate(machines):
        resident_apps = {
            c.app_id for c in state.deployed_containers(int(machine_id))
        }
        for i, container in enumerate(window):
            if any(cs.violates(container.app_id, ra) for ra in resident_apps):
                pre_conflict[i, j] = True

    # Window-internal conflicting pairs.
    pairs: list[tuple[int, int]] = []
    for i1 in range(n):
        for i2 in range(i1 + 1, n):
            if cs.violates(window[i1].app_id, window[i2].app_id):
                pairs.append((i1, i2))

    n_z = 0 if hard else (len(pairs) * m + int(pre_conflict.sum()))
    n_vars = n_x + n_z

    objective = np.zeros(n_vars)
    for i in range(n):
        for j in range(m):
            objective[xid(i, j)] = -(weights.a + weights.b * packing[j])
    if not hard:
        objective[n_x:] = penalty  # scipy minimises

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    ub: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # One placement per container.
    for i in range(n):
        for j in range(m):
            add_entry(row, xid(i, j), 1.0)
        ub.append(1.0)
        row += 1
    # Machine capacity per resource dimension.
    for j, machine_id in enumerate(machines):
        for d in range(topo.n_dims):
            for i in range(n):
                add_entry(row, xid(i, j), demands[i, d])
            ub.append(float(state.available[int(machine_id), d]))
            row += 1

    z_cursor = n_x
    if hard:
        # Hard anti-affinity: forbid pre-conflicted placements and
        # co-location of conflicting pairs.
        for i in range(n):
            for j in range(m):
                if pre_conflict[i, j]:
                    add_entry(row, xid(i, j), 1.0)
                    ub.append(0.0)
                    row += 1
        for (i1, i2) in pairs:
            for j in range(m):
                add_entry(row, xid(i1, j), 1.0)
                add_entry(row, xid(i2, j), 1.0)
                ub.append(1.0)
                row += 1
    else:
        # Soft: z >= x1 + x2 - 1 per pair/machine; z >= x per
        # pre-conflicted placement.
        for (i1, i2) in pairs:
            for j in range(m):
                add_entry(row, xid(i1, j), 1.0)
                add_entry(row, xid(i2, j), 1.0)
                add_entry(row, z_cursor, -1.0)
                ub.append(1.0)
                row += 1
                z_cursor += 1
        for i in range(n):
            for j in range(m):
                if pre_conflict[i, j]:
                    add_entry(row, xid(i, j), 1.0)
                    add_entry(row, z_cursor, -1.0)
                    ub.append(0.0)
                    row += 1
                    z_cursor += 1

    constraints = optimize.LinearConstraint(
        sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, n_vars)
        ),
        ub=np.array(ub),
    )
    res = optimize.milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=optimize.Bounds(0, 1),
        options={"time_limit": time_limit_s},
    )
    if res.x is None:
        return {}
    x = np.round(res.x[:n_x]).reshape(n, m)
    assignment: dict[int, int] = {}
    for i, container in enumerate(window):
        placed = np.flatnonzero(x[i] > 0.5)
        if placed.size:
            assignment[container.container_id] = int(machines[placed[0]])
    return assignment
