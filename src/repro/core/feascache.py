"""Cross-round isomorphism-limiting feasibility cache.

Isomorphism limiting (Section IV.A) rests on one observation: all
containers of an application are identical, so a machine's feasibility
verdict — multidimensional capacity dominance (Equation 6) plus the
Equation 7–8 blacklist — holds for *every* container of that
application.  The seed implementation exploited this within a single
scheduling round but recomputed every verdict from scratch each round,
which is exactly the waste an online churn workload punishes: between
two rounds only the machines touched by the round's placements,
evictions, preemptions and migrations can change their verdicts.

:class:`FeasibilityCache` makes IL verdicts persist across rounds with
precise invalidation, by splitting the verdict into its two terms:

* **Dominance** (``available[m] >= demand``, Equation 6) depends only on
  the demand vector and the machine — not on the application.  It is
  the expensive O(machines × dims) scan, and it is cached persistently,
  keyed by the demand shape.  A churn stream never resubmits an
  application, but it resubmits the same demand *shapes* constantly, so
  every application with the same shape shares one entry — this is
  where the cross-round reuse comes from.
* **The blacklist** (Equations 7–8) is app-specific but cheap: it only
  touches the machines currently hosting the app's conflict partners
  (or rack-mates, for rack-scoped within-rules).  It is evaluated live
  on every query, never cached — so constraint changes cannot go stale
  by construction, and rack-scope rules need no special invalidation.

On each query the dominance entry is synchronised against the
:class:`~repro.cluster.state.ClusterState` dirty log: only machines
mutated since the entry's version are rechecked (dominance for machine
``m`` depends only on ``available[m]``, and every mutation of ``m`` is
logged).  When the log has been compacted past the entry's version, or
the entry belongs to a different state instance, the verdicts are
discarded wholesale — the cache degrades to the seed behaviour, never
to stale answers.

Two *adaptive* policies bound the bookkeeping under storm churn, where
most demand shapes live exactly one tick and the dirty log grows by
thousands of entries between two sightings of the same shape:

* **Reuse-gated insertion** — the first sighting of a shape computes
  its verdicts without storing an entry; an entry is created only once
  the shape recurs (:attr:`FeasibilityCache.REUSE_THRESHOLD`).  One-shot
  shapes therefore never pay entry allocation, and a rebind drops less.
* **Sync cost model** — an entry whose version gap exceeds an eighth of
  the machine count (floor :attr:`FeasibilityCache.SYNC_GAP_FLOOR`) is
  recomputed wholesale instead of incrementally: slicing and deduping
  the dirty log is per-query Python/numpy overhead, while a fresh
  O(machines × dims) scan is one vectorised pass — cheaper whenever
  the gap is a non-trivial fraction of the cluster.  Accounting matches
  the compacted-log path (``misses = invalidations = n``).

Both policies change only *when* verdicts are recomputed, never their
values, so the cache stays decision-transparent — the differential
harness proves cached ≡ cold bit-identically with them active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.cluster.state import ClusterState


@dataclass
class _Entry:
    """Cached dominance verdicts for one demand shape."""

    fit: np.ndarray  # bool, shape (n_machines,)
    version: int  # state version the verdicts are synced to


class FeasibilityCache:
    """Persistent per-(demand shape, machine) dominance verdicts.

    One instance lives on each scheduler and survives across
    ``schedule()`` calls; it rebinds automatically when handed a
    different :class:`ClusterState` (fresh simulation, snapshot, …).

    Attributes
    ----------
    hits / misses / invalidations:
        Lifetime counters (per-machine verdicts served from cache,
        recomputed, and discarded as dirty).  The same increments are
        reported to the active telemetry collector, if any.
    last_recomputed:
        Number of verdicts recomputed by the most recent query — the
        honest incremental cost a caller should charge to its
        ``explored`` work counter.
    """

    #: sightings of a shape before its verdicts are cached (2 = store on
    #: first recurrence; 1 restores the store-always seed behaviour)
    REUSE_THRESHOLD = 2

    #: smallest version gap the sync cost model will recompute wholesale
    #: for — below this, incremental resync always wins regardless of
    #: cluster size (and the unit-scale incremental tests stay exact)
    SYNC_GAP_FLOOR = 32

    def __init__(self, report_telemetry: bool = True) -> None:
        self._state_uid: int | None = None
        self._entries: dict[bytes, _Entry] = {}
        #: shape key -> sightings while still unstored (reuse gating)
        self._shape_seen: dict[bytes, int] = {}
        #: report hit/miss/invalidation increments to the active
        #: telemetry collector.  The rescue kernel's private dominance
        #: cache runs quiet so the engine-level ``cache_*`` counters
        #: keep meaning "search-path verdicts" across the rescue axis.
        self.report_telemetry = report_telemetry
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.last_recomputed = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every entry (rebinding to a new state does this too)."""
        self._entries.clear()
        self._shape_seen.clear()
        self._state_uid = None

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of the cached verdicts and counters.

        Entry versions refer to the bound state's dirty-log numbering;
        they stay valid across :meth:`restore` because the state's
        checkpoint persists the log verbatim with the same numbering.
        """
        return {
            "entries": {
                key: (entry.fit.copy(), entry.version)
                for key, entry in self._entries.items()
            },
            "shape_seen": dict(self._shape_seen),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "last_recomputed": self.last_recomputed,
        }

    def restore(self, payload: dict, state_uid: int) -> None:
        """Adopt a :meth:`checkpoint` image, rebinding to ``state_uid``.

        ``state_uid`` is the uid of the *restored* state the entries
        were checkpointed against (uids are process-local, so the
        original uid is meaningless after a restart).  The next query
        then resyncs each entry from its persisted version through the
        restored dirty log — a warm resync instead of a cold rebuild.
        """
        self._entries = {
            key: _Entry(fit=np.array(fit), version=version)
            for key, (fit, version) in payload["entries"].items()
        }
        # Reuse-gating sightings; absent in pre-adaptive snapshots, in
        # which case the gated shapes simply start their count over.
        self._shape_seen = dict(payload.get("shape_seen", {}))
        self._state_uid = state_uid
        self.hits = payload["hits"]
        self.misses = payload["misses"]
        self.invalidations = payload["invalidations"]
        self.last_recomputed = payload["last_recomputed"]

    # ------------------------------------------------------------------
    def _dominance(
        self, state: ClusterState, demand: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        """Exact Equation-6 verdicts for ``demand`` at the current version.

        Returns ``(fit, shared)``: ``shared`` is true when ``fit`` is
        the cache's live entry array (callers needing a private copy
        must copy it), false when it is a fresh one-shot array the
        reuse gate declined to store.
        """
        n = state.n_machines
        key = demand.tobytes()
        entry = self._entries.get(key)

        if entry is None:
            fit = (state.available >= demand).all(axis=1)
            seen = self._shape_seen.get(key, 0) + 1
            if seen >= self.REUSE_THRESHOLD:
                # The shape recurred: cache it and sync incrementally
                # from now on.
                self._shape_seen.pop(key, None)
                self._entries[key] = _Entry(fit=fit, version=state.version)
                self._count(hits=0, misses=n, invalidations=0)
                return fit, True
            self._shape_seen[key] = seen
            self._count(hits=0, misses=n, invalidations=0)
            return fit, False

        gap = state.version - entry.version
        if gap == 0:
            # Already synced to this exact version — the common case for
            # repeat queries within one scheduling round.  Skips the
            # dirty-log slice entirely; accounting matches the
            # empty-dirty path below (inlined: this path must stay
            # cheaper than the raw scan it replaces).
            self.hits += n
            self.last_recomputed = 0
            if self.report_telemetry:
                tele = telemetry.current()
                if tele is not None:
                    tele.cache_hits += n
            return entry.fit, True
        if gap > (floor if (floor := self.SYNC_GAP_FLOOR) > n >> 3 else n >> 3):
            # Sync cost model: slicing and deduping the dirty log costs
            # real per-query Python/numpy overhead, while a wholesale
            # rescan is one vectorised pass over ``n × dims`` floats —
            # cheap at small cluster sizes.  Recompute wholesale once
            # the gap exceeds n/8 mutations (floor SYNC_GAP_FLOOR, so
            # tiny clusters still sync small gaps incrementally), with
            # the same accounting as a compacted log.
            entry.fit = (state.available >= demand).all(axis=1)
            self._count(hits=0, misses=n, invalidations=n)
        else:
            # Raw (possibly duplicated) slice: rewriting a verdict twice
            # is idempotent, and the cost model above bounds the slice
            # to max(SYNC_GAP_FLOOR, n/8) entries, so skipping the dedup
            # sort is the cheaper trade.  ``stale`` counts occurrences.
            dirty = state.dirty_raw_since(entry.version)
            if dirty is None:
                # The log no longer reaches this far back: recompute.
                entry.fit = (state.available >= demand).all(axis=1)
                self._count(hits=0, misses=n, invalidations=n)
            elif dirty.size:
                entry.fit[dirty] = (state.available[dirty] >= demand).all(
                    axis=1
                )
                # Occurrence count, clamped: on a tiny cluster the
                # bounded slice can still repeat machines past n.
                stale = min(int(dirty.size), n)
                self._count(
                    hits=n - stale, misses=stale, invalidations=stale
                )
            else:
                self._count(hits=n, misses=0, invalidations=0)
        entry.version = state.version
        return entry.fit, True

    # ------------------------------------------------------------------
    def feasible_mask(
        self, state: ClusterState, demand: np.ndarray, app_id: int
    ) -> np.ndarray:
        """Equivalent of ``state.feasible_mask(demand, app_id)``, cached.

        Returns a fresh array (callers may mutate it freely).  The
        verdicts are exact for the state's *current* version: the
        dominance entry is synchronised against the dirty log before
        the live blacklist term is applied.
        """
        if state.state_uid != self._state_uid:
            self.reset()
            self._state_uid = state.state_uid

        fit, shared = self._dominance(state, demand)
        cs = state.constraints
        if cs.has_within(app_id) or cs.has_conflicts(app_id):
            # The blacklist term is live, so it can never go stale; it
            # only touches machines hosting the app's conflict partners.
            return fit & ~state.forbidden_mask(app_id)
        return fit.copy() if shared else fit

    # ------------------------------------------------------------------
    def dominance_mask(
        self, state: ClusterState, demand: np.ndarray
    ) -> np.ndarray:
        """Equation-6 verdicts only: ``(available >= demand).all(axis=1)``.

        The app-independent half of :meth:`feasible_mask`, synchronised
        the same way, but returned as the cache's *shared* entry array —
        callers must treat it as read-only (copy before mutating).  The
        rescue kernel queries this per mover/victim demand shape, where
        allocating a fresh mask per query would negate the win over the
        legacy loop's full scans.
        """
        if state.state_uid != self._state_uid:
            self.reset()
            self._state_uid = state.state_uid
        fit, _ = self._dominance(state, demand)
        return fit

    # ------------------------------------------------------------------
    def _count(self, hits: int, misses: int, invalidations: int) -> None:
        self.hits += hits
        self.misses += misses
        self.invalidations += invalidations
        self.last_recomputed = misses
        tele = telemetry.current() if self.report_telemetry else None
        if tele is not None:
            tele.cache_hits += hits
            tele.cache_misses += misses
            tele.cache_invalidations += invalidations

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
