"""Cross-round isomorphism-limiting feasibility cache.

Isomorphism limiting (Section IV.A) rests on one observation: all
containers of an application are identical, so a machine's feasibility
verdict — multidimensional capacity dominance (Equation 6) plus the
Equation 7–8 blacklist — holds for *every* container of that
application.  The seed implementation exploited this within a single
scheduling round but recomputed every verdict from scratch each round,
which is exactly the waste an online churn workload punishes: between
two rounds only the machines touched by the round's placements,
evictions, preemptions and migrations can change their verdicts.

:class:`FeasibilityCache` makes IL verdicts persist across rounds with
precise invalidation, by splitting the verdict into its two terms:

* **Dominance** (``available[m] >= demand``, Equation 6) depends only on
  the demand vector and the machine — not on the application.  It is
  the expensive O(machines × dims) scan, and it is cached persistently,
  keyed by the demand shape.  A churn stream never resubmits an
  application, but it resubmits the same demand *shapes* constantly, so
  every application with the same shape shares one entry — this is
  where the cross-round reuse comes from.
* **The blacklist** (Equations 7–8) is app-specific but cheap: it only
  touches the machines currently hosting the app's conflict partners
  (or rack-mates, for rack-scoped within-rules).  It is evaluated live
  on every query, never cached — so constraint changes cannot go stale
  by construction, and rack-scope rules need no special invalidation.

On each query the dominance entry is synchronised against the
:class:`~repro.cluster.state.ClusterState` dirty log: only machines
mutated since the entry's version are rechecked (dominance for machine
``m`` depends only on ``available[m]``, and every mutation of ``m`` is
logged).  When the log has been compacted past the entry's version, or
the entry belongs to a different state instance, the verdicts are
discarded wholesale — the cache degrades to the seed behaviour, never
to stale answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.cluster.state import ClusterState


@dataclass
class _Entry:
    """Cached dominance verdicts for one demand shape."""

    fit: np.ndarray  # bool, shape (n_machines,)
    version: int  # state version the verdicts are synced to


class FeasibilityCache:
    """Persistent per-(demand shape, machine) dominance verdicts.

    One instance lives on each scheduler and survives across
    ``schedule()`` calls; it rebinds automatically when handed a
    different :class:`ClusterState` (fresh simulation, snapshot, …).

    Attributes
    ----------
    hits / misses / invalidations:
        Lifetime counters (per-machine verdicts served from cache,
        recomputed, and discarded as dirty).  The same increments are
        reported to the active telemetry collector, if any.
    last_recomputed:
        Number of verdicts recomputed by the most recent query — the
        honest incremental cost a caller should charge to its
        ``explored`` work counter.
    """

    def __init__(self, report_telemetry: bool = True) -> None:
        self._state_uid: int | None = None
        self._entries: dict[bytes, _Entry] = {}
        #: report hit/miss/invalidation increments to the active
        #: telemetry collector.  The rescue kernel's private dominance
        #: cache runs quiet so the engine-level ``cache_*`` counters
        #: keep meaning "search-path verdicts" across the rescue axis.
        self.report_telemetry = report_telemetry
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.last_recomputed = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every entry (rebinding to a new state does this too)."""
        self._entries.clear()
        self._state_uid = None

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of the cached verdicts and counters.

        Entry versions refer to the bound state's dirty-log numbering;
        they stay valid across :meth:`restore` because the state's
        checkpoint persists the log verbatim with the same numbering.
        """
        return {
            "entries": {
                key: (entry.fit.copy(), entry.version)
                for key, entry in self._entries.items()
            },
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "last_recomputed": self.last_recomputed,
        }

    def restore(self, payload: dict, state_uid: int) -> None:
        """Adopt a :meth:`checkpoint` image, rebinding to ``state_uid``.

        ``state_uid`` is the uid of the *restored* state the entries
        were checkpointed against (uids are process-local, so the
        original uid is meaningless after a restart).  The next query
        then resyncs each entry from its persisted version through the
        restored dirty log — a warm resync instead of a cold rebuild.
        """
        self._entries = {
            key: _Entry(fit=np.array(fit), version=version)
            for key, (fit, version) in payload["entries"].items()
        }
        self._state_uid = state_uid
        self.hits = payload["hits"]
        self.misses = payload["misses"]
        self.invalidations = payload["invalidations"]
        self.last_recomputed = payload["last_recomputed"]

    # ------------------------------------------------------------------
    def feasible_mask(
        self, state: ClusterState, demand: np.ndarray, app_id: int
    ) -> np.ndarray:
        """Equivalent of ``state.feasible_mask(demand, app_id)``, cached.

        Returns a fresh array (callers may mutate it freely).  The
        verdicts are exact for the state's *current* version: the
        dominance entry is synchronised against the dirty log before
        the live blacklist term is applied.
        """
        if state.state_uid != self._state_uid:
            self.reset()
            self._state_uid = state.state_uid

        n = state.n_machines
        key = demand.tobytes()
        entry = self._entries.get(key)

        if entry is None:
            fit = (state.available >= demand).all(axis=1)
            self._entries[key] = _Entry(fit=fit, version=state.version)
            self._count(hits=0, misses=n, invalidations=0)
        else:
            dirty = state.dirty_array_since(entry.version)
            if dirty is None:
                # The log no longer reaches this far back: recompute.
                entry.fit = (state.available >= demand).all(axis=1)
                self._count(hits=0, misses=n, invalidations=n)
            elif dirty.size:
                entry.fit[dirty] = (state.available[dirty] >= demand).all(axis=1)
                stale = int(dirty.size)
                self._count(hits=n - stale, misses=stale, invalidations=stale)
            else:
                self._count(hits=n, misses=0, invalidations=0)
            entry.version = state.version
            fit = entry.fit

        cs = state.constraints
        if cs.has_within(app_id) or cs.has_conflicts(app_id):
            # The blacklist term is live, so it can never go stale; it
            # only touches machines hosting the app's conflict partners.
            return fit & ~state.forbidden_mask(app_id)
        return fit.copy()

    # ------------------------------------------------------------------
    def dominance_mask(
        self, state: ClusterState, demand: np.ndarray
    ) -> np.ndarray:
        """Equation-6 verdicts only: ``(available >= demand).all(axis=1)``.

        The app-independent half of :meth:`feasible_mask`, synchronised
        the same way, but returned as the cache's *shared* entry array —
        callers must treat it as read-only (copy before mutating).  The
        rescue kernel queries this per mover/victim demand shape, where
        allocating a fresh mask per query would negate the win over the
        legacy loop's full scans.
        """
        if state.state_uid != self._state_uid:
            self.reset()
            self._state_uid = state.state_uid
        n = state.n_machines
        key = demand.tobytes()
        entry = self._entries.get(key)
        if entry is None:
            fit = (state.available >= demand).all(axis=1)
            self._entries[key] = _Entry(fit=fit, version=state.version)
            self._count(hits=0, misses=n, invalidations=0)
            return fit
        dirty = state.dirty_array_since(entry.version)
        if dirty is None:
            entry.fit = (state.available >= demand).all(axis=1)
            self._count(hits=0, misses=n, invalidations=n)
        elif dirty.size:
            entry.fit[dirty] = (state.available[dirty] >= demand).all(axis=1)
            stale = int(dirty.size)
            self._count(hits=n - stale, misses=stale, invalidations=stale)
        else:
            self._count(hits=n, misses=0, invalidations=0)
        entry.version = state.version
        return entry.fit

    # ------------------------------------------------------------------
    def _count(self, hits: int, misses: int, invalidations: int) -> None:
        self.hits += hits
        self.misses += misses
        self.invalidations += invalidations
        self.last_recomputed = misses
        tele = telemetry.current() if self.report_telemetry else None
        if tele is not None:
            tele.cache_hits += hits
            tele.cache_misses += misses
            tele.cache_invalidations += invalidations

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
