"""Shared Equation 7–9 placement validation for all engines.

The three engines (vectorised batch, flow-network reference, LP solver)
promise the same legality contract from Section III of the paper:

* **Equation 7** — anti-affinity *within*: at most one container of a
  within-anti-affinity application per machine (or per rack, for
  rack-scoped rules);
* **Equation 8** — anti-affinity *across*: containers of conflicting
  applications never share a machine;
* **Equation 9** — aggregate capacity: the demand resident on a machine
  never exceeds its capacity vector (the per-placement Equation 6
  dominance check, accumulated).

Until this module, each engine re-implemented the checks ad hoc
(``ClusterState.deploy`` guards, ``would_violate``, the per-metric
``anti_affinity_violations`` counter).  The solver engine
(:mod:`repro.core.vecsolve`) made a single source of truth mandatory:
its LP relaxation plans a whole window against a *frozen* pre-window
state, so its rounded plan must be auditable against exactly the
constraint set the incremental engines enforce one deploy at a time.

Two entry points:

* :func:`validate_window` — audit a *proposed* window plan (container →
  machine) against a :class:`WindowContext` frozen before any of the
  window's deploys.  Pure: no state mutation, usable from property
  tests and the solver's pre-commit audit alike.
* :func:`validate_state` — audit a *live* state's resident population:
  capacity bookkeeping (Equation 9) and the full Equation 7–8 rule set.
  All engines run it post-round when
  ``AladdinConfig(validate_placements=True)``, and the quality-parity
  harness runs it per tick.

The module also defines the Fig. 9-style placement-quality metrics and
the documented parity tolerances the solver engine is held to
(:data:`QUALITY_TOLERANCE`): decisions need not be bit-identical to the
reference engine, quality must be equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.container import Container
from repro.cluster.state import ClusterState

#: slack for float capacity comparisons (demands are exact binary
#: fractions in practice; the epsilon only absorbs accumulated
#: subtraction noise, never a real overflow)
CAPACITY_EPS = 1e-6

#: Equation tags used as :attr:`Violation.kind`
KIND_WITHIN = "eq7-within"
KIND_CROSS = "eq8-cross"
KIND_CAPACITY = "eq9-capacity"
KIND_BOOKKEEPING = "eq9-bookkeeping"
KIND_UNKNOWN = "unknown-container"
KIND_RANGE = "machine-range"


@dataclass(frozen=True)
class Violation:
    """One Equation 7/8/9 breach found by a validator."""

    kind: str
    container_id: int
    machine_id: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"[{self.kind}] container {self.container_id} on machine "
            f"{self.machine_id}: {self.detail}"
        )


class PlacementInvalidError(AssertionError):
    """Raised by :meth:`ValidationReport.raise_if_invalid`."""


@dataclass
class ValidationReport:
    """The violations one validator pass found (empty = valid)."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(
        self, kind: str, container_id: int, machine_id: int, detail: str
    ) -> None:
        self.violations.append(
            Violation(kind, container_id, machine_id, detail)
        )

    def by_kind(self) -> dict[str, int]:
        """Violation count per equation tag, in a stable key order."""
        out: dict[str, int] = {}
        for v in sorted(self.violations, key=lambda v: v.kind):
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def raise_if_invalid(self, context: str = "") -> None:
        """Raise :class:`PlacementInvalidError` listing every violation."""
        if self.ok:
            return
        lines = "\n".join(f"  {v}" for v in self.violations[:20])
        suffix = (
            f"\n  ... and {len(self.violations) - 20} more"
            if len(self.violations) > 20
            else ""
        )
        where = f" ({context})" if context else ""
        raise PlacementInvalidError(
            f"{len(self.violations)} Equation 7–9 violation(s){where}:\n"
            f"{lines}{suffix}"
        )


# ----------------------------------------------------------------------
# window-plan validation (pure, against a frozen pre-window state)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowContext:
    """Everything Equations 7–9 need, frozen *before* a window commits.

    Captured with :meth:`capture` at the point the incremental engines
    would start deploying the window; the arrays/dicts are copies, so
    the context stays valid while the live state mutates underneath.
    """

    #: pre-window remaining capacity, shape (n_machines, n_dims)
    available: np.ndarray
    #: pre-window residents: app id -> {machine id -> container count}
    app_machines: dict[int, dict[int, int]]
    #: machine id -> rack id
    rack_of: np.ndarray
    #: the workload's anti-affinity index
    constraints: object
    #: resource dimension names, for demand-vector extraction
    resources: tuple[str, ...]

    @classmethod
    def capture(cls, state: ClusterState) -> "WindowContext":
        return cls(
            available=state.available.copy(),
            app_machines={
                a: dict(d) for a, d in state.app_machines.items()
            },
            rack_of=state.topology.rack_of,
            constraints=state.constraints,
            resources=tuple(state.topology.resources),
        )

    def resident_apps_on(self, machine_id: int) -> list[int]:
        """Applications resident on ``machine_id`` pre-window."""
        return [
            app
            for app, per_machine in self.app_machines.items()
            if per_machine.get(machine_id)
        ]


def validate_window(
    ctx: WindowContext,
    containers: list[Container],
    placements: dict[int, int],
) -> ValidationReport:
    """Audit a proposed window plan against the frozen pre-window state.

    ``placements`` maps container id → machine id for the containers of
    this window the plan places (omissions = left unplaced, which is
    always legal).  Containers are processed in ascending container id,
    so for intra-window breaches the *later* container is reported —
    deterministic and independent of dict ordering.
    """
    report = ValidationReport()
    by_id = {c.container_id: c for c in containers}
    n_machines = int(ctx.available.shape[0])
    cs = ctx.constraints

    # Accumulators over the window, keyed by (app, machine/rack).
    load = {}  # machine id -> accumulated demand vector
    app_on_machine: dict[tuple[int, int], int] = {}
    app_on_rack: dict[tuple[int, int], int] = {}
    apps_on_machine: dict[int, list[int]] = {}

    for cid in sorted(placements):
        machine = placements[cid]
        container = by_id.get(cid)
        if container is None:
            report.add(
                KIND_UNKNOWN, cid, machine,
                "placed container is not part of the window",
            )
            continue
        if not 0 <= machine < n_machines:
            report.add(
                KIND_RANGE, cid, machine,
                f"machine id outside [0, {n_machines})",
            )
            continue
        app = container.app_id
        demand = container.demand_vector(ctx.resources)

        # Equation 9: accumulated demand within the frozen capacity.
        total = load.get(machine)
        total = demand if total is None else total + demand
        load[machine] = total
        if (total > ctx.available[machine] + CAPACITY_EPS).any():
            report.add(
                KIND_CAPACITY, cid, machine,
                f"window demand {total} exceeds remaining "
                f"{ctx.available[machine]}",
            )

        # Equation 7: within-app anti-affinity (machine or rack scope).
        if cs.has_within(app):
            if cs.within_scope(app) == "rack":
                rack = int(ctx.rack_of[machine])
                pre = sum(
                    count
                    for m, count in ctx.app_machines.get(app, {}).items()
                    if int(ctx.rack_of[m]) == rack
                )
                seen = app_on_rack.get((app, rack), 0)
                if pre + seen >= 1:
                    report.add(
                        KIND_WITHIN, cid, machine,
                        f"app {app} already in rack {rack} "
                        "(rack-scoped within rule)",
                    )
                app_on_rack[(app, rack)] = seen + 1
            else:
                pre = ctx.app_machines.get(app, {}).get(machine, 0)
                seen = app_on_machine.get((app, machine), 0)
                if pre + seen >= 1:
                    report.add(
                        KIND_WITHIN, cid, machine,
                        f"app {app} already on machine (within rule)",
                    )
                app_on_machine[(app, machine)] = seen + 1

        # Equation 8: cross-application conflicts, against pre-window
        # residents and against window siblings already audited.
        if cs.has_conflicts(app):
            for other in ctx.resident_apps_on(machine):
                if cs.violates(app, other):
                    report.add(
                        KIND_CROSS, cid, machine,
                        f"conflicts with resident app {other}",
                    )
                    break
        for other in apps_on_machine.get(machine, ()):
            if other != app and cs.violates(app, other):
                report.add(
                    KIND_CROSS, cid, machine,
                    f"conflicts with window app {other}",
                )
                break
        apps_on_machine.setdefault(machine, []).append(app)
    return report


# ----------------------------------------------------------------------
# live-state validation (post-hoc audit of the resident population)
# ----------------------------------------------------------------------
def validate_state(state: ClusterState) -> ValidationReport:
    """Audit a live state: Equation 9 bookkeeping plus Equations 7–8.

    Recomputes every machine's resident demand from first principles and
    checks it against both the capacity vector and the maintained
    ``available`` array (a drifted ``available`` means an engine
    mutated capacity without going through deploy/evict), then sweeps
    the full anti-affinity rule set over the resident population.
    """
    report = ValidationReport()
    topo = state.topology
    cs = state.constraints
    resources = topo.resources

    resident = np.zeros_like(state.available)
    for cid, machine in state.assignment.items():
        resident[machine] += state.container(cid).demand_vector(resources)

    over = np.flatnonzero(
        (resident > topo.capacity + CAPACITY_EPS).any(axis=1)
    )
    for machine in over:
        report.add(
            KIND_CAPACITY, -1, int(machine),
            f"resident demand {resident[machine]} exceeds capacity "
            f"{topo.capacity[machine]}",
        )
    # Machines downed by fault injection have their ``available`` row
    # zeroed in place with no separate flag
    # (:func:`repro.sim.faults.fail_machines`); an all-zero row is
    # therefore read as administratively down, not as drift.  An
    # exactly-full machine also matches, and passes the check anyway.
    downed = (state.available == 0.0).all(axis=1)
    drift = np.flatnonzero(
        (np.abs(topo.capacity - resident - state.available) > CAPACITY_EPS)
        .any(axis=1)
        & ~downed
    )
    for machine in drift:
        report.add(
            KIND_BOOKKEEPING, -1, int(machine),
            f"available {state.available[machine]} != capacity - resident "
            f"{topo.capacity[machine] - resident[machine]}",
        )

    # Equations 7–8 over the resident population.  Mirrors the counting
    # semantics of ClusterState.anti_affinity_violations: each offending
    # container is reported once.
    for machine_id, cids in state.machine_containers.items():
        if len(cids) < 2:
            continue
        apps: dict[int, list[int]] = {}
        for cid in cids:
            apps.setdefault(state.container(cid).app_id, []).append(cid)
        app_ids = list(apps)
        for i, a in enumerate(app_ids):
            if (
                len(apps[a]) > 1
                and cs.has_within(a)
                and cs.within_scope(a) == "machine"
            ):
                for cid in apps[a]:
                    report.add(
                        KIND_WITHIN, cid, machine_id,
                        f"app {a} has {len(apps[a])} containers co-located",
                    )
            for b in app_ids[i + 1 :]:
                if cs.violates(a, b):
                    for cid in apps[a] + apps[b]:
                        report.add(
                            KIND_CROSS, cid, machine_id,
                            f"apps {a} and {b} conflict",
                        )
    for app_id, per_machine in state.app_machines.items():
        if not per_machine or not cs.has_within(app_id):
            continue
        if cs.within_scope(app_id) != "rack":
            continue
        rack_machines: dict[int, list[int]] = {}
        for m, count in per_machine.items():
            if count:
                rack = int(topo.rack_of[m])
                rack_machines.setdefault(rack, []).extend([m] * count)
        for rack, machines in rack_machines.items():
            if len(machines) > 1:
                for cid, m in state.assignment.items():
                    if (
                        state.container(cid).app_id == app_id
                        and int(topo.rack_of[m]) == rack
                    ):
                        report.add(
                            KIND_WITHIN, cid, m,
                            f"app {app_id} has {len(machines)} containers "
                            f"in rack {rack} (rack-scoped within rule)",
                        )
    return report


# ----------------------------------------------------------------------
# Fig. 9-style placement quality and the solver parity tolerances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualityMetrics:
    """The placement-quality triple of the Fig. 9 panels.

    ``fragmentation`` is the mean *unused* fraction across used
    machines — low is good, and a solver that strands capacity shows up
    here even when its used-machine count matches.
    """

    used_machines: int
    fragmentation: float
    blocked: int
    violations: int

    def as_dict(self) -> dict:
        return {
            "used_machines": self.used_machines,
            "fragmentation": self.fragmentation,
            "blocked": self.blocked,
            "violations": self.violations,
        }


def measure_quality(state: ClusterState, blocked: int = 0) -> QualityMetrics:
    """Sample the Fig. 9 quality metrics from a live state."""
    util = state.used_utilization(0)
    return QualityMetrics(
        used_machines=state.used_machines(),
        fragmentation=float(1.0 - util.mean()) if util.size else 0.0,
        blocked=blocked,
        violations=state.anti_affinity_violations(),
    )


#: Documented parity tolerances for the solver engine against the
#: reference engine on identical workloads (see tests/test_solver_parity
#: and EXPERIMENTS.md).  The LP relaxation + deterministic rounding may
#: pick different machines, but quality must be equivalent.  Every axis
#: is a cost, so the gate is one-sided: only a candidate *worse* than
#: the reference beyond tolerance fails (beating the reference — the
#: joint LP often packs tighter than the greedy walk — is never a gap):
#:
#: * ``used_machines``: within 10% relative or 2 machines absolute,
#:   whichever is looser (small clusters quantise hard);
#: * ``fragmentation``: within 0.10 absolute (mean unused fraction);
#: * ``blocked``: within 2 containers absolute or 10% of arrivals;
#: * ``violations``: exactly equal (both must be zero — legality is
#:   never a tolerance).
QUALITY_TOLERANCE = {
    "used_machines_rel": 0.10,
    "used_machines_abs": 2,
    "fragmentation_abs": 0.10,
    "blocked_abs": 2,
    "blocked_rel": 0.10,
}


def quality_gaps(
    reference: QualityMetrics,
    candidate: QualityMetrics,
    arrived: int | None = None,
    tolerance: dict | None = None,
) -> list[str]:
    """Ways ``candidate`` is *worse* than ``reference`` beyond tolerance.

    The gate is directional — every Fig. 9 axis is a cost (machines
    used, stranded capacity, blocked containers), so a candidate that
    beats the reference passes with room to spare; only regressions
    count against it.  Violations remain an exact-equality check in
    both directions.  Returns human-readable descriptions (empty list =
    within parity).  ``arrived`` scales the relative blocked tolerance;
    without it only the absolute blocked bound applies.
    """
    tol = dict(QUALITY_TOLERANCE)
    if tolerance:
        tol.update(tolerance)
    gaps: list[str] = []
    um_slack = max(
        tol["used_machines_abs"],
        tol["used_machines_rel"] * max(reference.used_machines, 1),
    )
    if candidate.used_machines - reference.used_machines > um_slack:
        gaps.append(
            f"used_machines {candidate.used_machines} vs reference "
            f"{reference.used_machines} (slack {um_slack:.1f})"
        )
    # Fragmentation is mean unused fraction over used machines, so a
    # candidate legitimately using ``um_slack`` more machines sees it
    # rise mechanically by up to um_slack·(1-f_ref)/(u_ref+um_slack)
    # even at identical packing — grant exactly that on top of the
    # absolute tolerance (at scale the add-on tends to the 10% relative
    # machine bound scaled by the reference's packing density).
    frag_slack = tol["fragmentation_abs"] + (
        um_slack
        * (1.0 - reference.fragmentation)
        / (reference.used_machines + um_slack)
        if reference.used_machines
        else 0.0
    )
    if candidate.fragmentation - reference.fragmentation > frag_slack:
        gaps.append(
            f"fragmentation {candidate.fragmentation:.3f} vs reference "
            f"{reference.fragmentation:.3f} "
            f"(slack {frag_slack:.3f})"
        )
    blocked_slack = float(tol["blocked_abs"])
    if arrived is not None:
        blocked_slack = max(blocked_slack, tol["blocked_rel"] * arrived)
    if candidate.blocked - reference.blocked > blocked_slack:
        gaps.append(
            f"blocked {candidate.blocked} vs reference "
            f"{reference.blocked} (slack {blocked_slack:.1f})"
        )
    if candidate.violations != reference.violations:
        gaps.append(
            f"violations {candidate.violations} vs reference "
            f"{reference.violations} (must be equal)"
        )
    return gaps
