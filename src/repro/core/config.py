"""Aladdin configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AladdinConfig:
    """Tunables of :class:`~repro.core.scheduler.AladdinScheduler`.

    Parameters
    ----------
    priority_weight_base:
        Floor on the class-to-class weight ratio of Equation 5; the
        evaluation sweeps 16/32/64/128 (Fig. 9a–d).  Any compliant value
        yields identical placements — asserted by tests — so the sweep
        is a robustness check, exactly as in the paper.
    enable_il:
        Isomorphism limiting (Section IV.A): one feasibility evaluation
        per *application* instead of per container.
    enable_dl:
        Depth limiting (Section IV.A): stop searching for more paths the
        moment a container has a valid placement.
    enable_migration / enable_preemption:
        The two flow-increasing mechanisms of Section III.B.
    enable_feasibility_cache:
        Persist IL feasibility verdicts across scheduling rounds
        (:mod:`repro.core.feascache`), invalidating only machines the
        state's dirty log reports as touched.  Only active together
        with ``enable_il`` — the cache *is* the cross-round form of
        isomorphism limiting, so disabling IL disables it (and keeps
        the IL/DL ablations honest).  Placements are provably identical
        with the cache on or off; the differential test harness replays
        randomized churn to enforce that.
    enable_batch_kernel:
        Place each application block in one vectorized sweep
        (:mod:`repro.core.batchkernel`) over the incrementally
        maintained packed-first machine index
        (:mod:`repro.core.machindex`) instead of one machine scan per
        container.  Only active together with ``enable_il`` *and*
        ``enable_dl`` — the kernel is the vectorized composition of the
        two prunings, so disabling either falls back to the
        per-container loop (and keeps the Fig. 12 IL/DL ablation
        honest).  Placements are provably identical with the kernel on
        or off; the differential harness replays randomized churn
        across the batched×loop axis to enforce that.
    enable_rescue_kernel:
        Plan migrations, consolidations and preemptions through the
        vectorized rescue kernel (:mod:`repro.core.rescuekernel`):
        admit masks come from a persistent dominance cache instead of a
        full-cluster scan per rescue attempt, packed-first candidate
        orders from the incremental machine index, mover/victim
        selection from per-machine resident summaries (prefix-summed
        freeable demand, synchronised against the state's dirty log),
        and relocation planning tracks reservations sparsely instead of
        copying the whole ``available`` matrix per mover.  The legacy
        per-machine loop remains the oracle: decisions are bit-identical
        — same machine freed, same victims in the same order — enforced
        by the rescue axis of the differential harness.
    window_apps:
        Scheduling-window width in applications.  Containers inside one
        window are re-ordered by weighted flow (priority); windows model
        the arrival stream, so the CHP/CLP/CLA/CSA orderings of
        Section V.C remain observable.
    migration_candidates:
        How many blocked machines to examine when trying to free one by
        migration (bounds the rescheduling cost of Section IV.D).
    max_migrations_per_container:
        How many deployed containers may be moved to admit one blocked
        container.
    final_repair:
        After the last window, retry every undeployed container with
        exhaustive (unbounded-scan) rescue.  This is the paper's
        rescheduling-to-the-bitter-end behaviour of Fig. 7: the cost is
        "bound to the worst complexity O(V·E²·c)" and only paid for
        containers that would otherwise fail.
    gang_scheduling:
        All-or-nothing application placement: if any container of an
        LLA cannot be deployed, the whole application is rolled back
        and reported undeployed.  Off by default (the paper deploys
        partially); useful for LLAs that need full replica quorums.
    engine:
        Which placement engine :func:`repro.core.engine_for` builds:
        ``"batch"`` (the vectorised incremental scheduler,
        :class:`~repro.core.scheduler.AladdinScheduler`), ``"flow"``
        (the flow-network reference engine,
        :class:`~repro.core.search.FlowPathSearch`) or ``"solver"``
        (the one-shot LP window engine,
        :class:`~repro.core.vecsolve.SolverScheduler`; needs scipy —
        install the ``solver`` extra).  The field is advisory for the
        concrete classes (constructing ``AladdinScheduler`` directly
        always builds the batch engine) — the factory is the switch.
    solver_objective:
        Objective of the solver engine's window LP: ``"packing"``
        (maximise weighted placed count with a packed-first tie-break,
        mirroring the incremental engines' preference order) or
        ``"maxmin"`` (two-phase max-min fairness over per-application
        placed fractions first, packing second — the Soroush-style
        scenario axis).  Ignored by the other engines.
    validate_placements:
        Run the shared Equation 7–9 validator
        (:func:`repro.core.validate.validate_state`) after every
        ``schedule()`` call and raise on any violation.  Off by default
        (it is a full-state audit); the differential and parity
        harnesses switch it on.
    workers:
        Process count for the rack-sharded parallel feasibility/scoring
        sweep (:mod:`repro.core.parallel`).  ``1`` (the default) keeps
        the serial code path untouched — same-seed runs stay
        byte-identical to previous releases.  With ``workers > 1`` the
        per-block sweep fans out over rack-aligned machine shards held
        in shared memory; it is only active together with ``enable_il``,
        ``enable_dl``, ``enable_batch_kernel`` and
        ``enable_feasibility_cache`` (the sweep parallelises exactly
        that pipeline), and placements are provably bit-identical to
        the serial path — the workers axis of
        ``tests/test_differential.py`` enforces it under churn.
    shard_rebalance:
        Resize the parallel sweep's shards by per-rack resident density
        at checkpoint boundaries (work-weighted :func:`shard_bounds`).
        Placement decisions are bit-identical either way — the merge
        re-establishes the serial total order for any rack-aligned
        partition — but a rebalance resets the shard workers' caches
        (cold resync), so the cache hit/miss telemetry differs from a
        never-rebalanced run.  Off by default to keep default runs
        byte-identical to previous releases; opt in via
        ``online/serve --rebalance-shards``.
    """

    priority_weight_base: float = 16.0
    enable_il: bool = True
    enable_dl: bool = True
    enable_migration: bool = True
    enable_preemption: bool = True
    enable_feasibility_cache: bool = True
    enable_batch_kernel: bool = True
    enable_rescue_kernel: bool = True
    window_apps: int = 64
    migration_candidates: int = 16
    max_migrations_per_container: int = 16
    final_repair: bool = True
    gang_scheduling: bool = False
    engine: str = "batch"
    solver_objective: str = "packing"
    validate_placements: bool = False
    workers: int = 1
    shard_rebalance: bool = False

    def __post_init__(self) -> None:
        if self.priority_weight_base < 1:
            raise ValueError("priority_weight_base must be >= 1")
        if self.window_apps < 1:
            raise ValueError("window_apps must be >= 1")
        if self.migration_candidates < 0:
            raise ValueError("migration_candidates must be >= 0")
        if self.max_migrations_per_container < 0:
            raise ValueError("max_migrations_per_container must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.engine not in ("batch", "flow", "solver"):
            raise ValueError(
                f"unknown engine {self.engine!r} "
                "(choose batch, flow or solver)"
            )
        if self.solver_objective not in ("packing", "maxmin"):
            raise ValueError(
                f"unknown solver_objective {self.solver_objective!r} "
                "(choose packing or maxmin)"
            )

    def variant_name(self) -> str:
        """Human-readable policy name as used in Fig. 12 legends."""
        suffix = ""
        if self.enable_il:
            suffix += "+IL"
        if self.enable_dl:
            suffix += "+DL"
        return f"Aladdin({self.priority_weight_base:g}){suffix}"
