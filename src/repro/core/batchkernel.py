"""Batched block placement kernel: one vectorized sweep per LLA block.

Isomorphism limiting says every container of an application block is
identical; depth limiting says each container takes the *first* machine
of the packed-first order that still admits it.  Chaining the two, the
whole block's placement is already determined at block start by
per-machine **fit quotas**: walking the candidate order, machine ``m``
absorbs ``floor(min(available[m] / demand))`` consecutive containers
before the walk moves on — one container for machine-scoped
within-anti-affinity applications, one rack representative for
rack-scoped ones.  The quota prefix-sum therefore maps container index
→ machine directly, so a block of ``k`` identical containers costs
O(m + k) NumPy work instead of ``k`` per-container machine scans, with
the running capacity decrements folded into the quotas themselves.

The kernel is a *plan*: it performs no state mutation, which keeps its
output comparable against the per-container walk (the differential
harness replays both paths and asserts bit-identical placements).  A
plan shorter than ``k`` means every quota is exhausted and the caller
must route the remaining containers through the rescue path — exactly
where the per-container walk would have handed over as well.

Contract (inputs, shard invariants, determinism)
------------------------------------------------
``block_plan`` takes the live state, the block's demand vector, the
admitting candidates in the engines' total preference order, the block
size ``k`` and the within-anti-affinity scope; every candidate must
admit at least one container (the feasibility mask guarantees it).
The function is deterministic and pure — same inputs, same plan.

Under the rack-sharded parallel sweep (:mod:`repro.core.parallel`) the
kernel is also the *merge point*: the coordinator feeds it the union of
per-shard candidate prefixes, re-ordered by the serial total order.
Two shard invariants make that sound: racks never span shards, so the
workers' shard-local rack deduplication composes into exactly the
global ``within_scope == "rack"`` dedup below (re-deduping the merged
set is a no-op on the same representatives); and a global prefix of
``k`` candidates contains at most ``k`` per shard, so the per-shard
``k``-prefixes always cover the global plan.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState

_EMPTY_PLAN = np.empty(0, dtype=np.int64)


def block_plan(
    state: ClusterState,
    demand: np.ndarray,
    candidates: np.ndarray,
    k: int,
    within_scope: str | None,
) -> np.ndarray:
    """Machines for the next ``k`` identical containers, packed-first.

    Parameters
    ----------
    demand:
        The block's per-container demand vector.
    candidates:
        Admitting machines in preference order (from
        :meth:`~repro.core.machindex.MachineIndex.candidates` under the
        block's feasibility mask — every entry fits at least one
        container).
    within_scope:
        ``None`` when the application has no within-anti-affinity rule,
        else ``"machine"`` or ``"rack"``.

    Returns the machine id per container, in deployment order; a result
    shorter than ``k`` means the quotas ran dry and the remainder
    overflows into rescue.
    """
    if candidates.size == 0 or k <= 0:
        return _EMPTY_PLAN
    if within_scope == "rack":
        # One container per rack: the per-container walk rejects every
        # later rack-mate via ``would_violate``, leaving the first
        # machine of each distinct rack, in candidate order.
        racks = state.topology.rack_of[candidates]
        _, first = np.unique(racks, return_index=True)
        candidates = candidates[np.sort(first)]
    if within_scope is not None:
        return candidates[:k].astype(np.int64, copy=False)
    # Every candidate admits at least one container (the feasibility
    # mask guarantees quota >= 1), so the k-th container lands within
    # the first k candidates — truncating before the quota division
    # keeps the kernel O(k), not O(candidates), per block.
    candidates = candidates[:k]
    with np.errstate(divide="ignore"):
        quota = np.floor(
            (state.available[candidates] / demand).min(axis=1)
        ).astype(np.int64)
    cum = np.cumsum(quota)
    placed = min(k, int(cum[-1]))
    if placed <= 0:
        return _EMPTY_PLAN
    # Container i (1-based) lands on the first machine whose cumulative
    # quota reaches i — the same machine the walk's fill counter yields.
    slots = np.searchsorted(cum, np.arange(1, placed + 1), side="left")
    return candidates[slots].astype(np.int64, copy=False)
