"""Aladdin core: the paper's primary contribution.

* :mod:`~repro.core.weights` — priority weight derivation (Equations 3–5);
* :mod:`~repro.core.blacklist` — the nonlinear set-based capacity
  function expressing anti-affinity (Equations 7–8);
* :mod:`~repro.core.network_builder` — the layered
  ``source → T → A → G → R → N → sink`` flow network (Section III.A);
* :mod:`~repro.core.search` — the optimised maximum-flow search with
  isomorphism limiting and depth limiting (Algorithm 1, Section IV.A);
* :mod:`~repro.core.machindex` — the incrementally maintained
  packed-first machine ordering shared by both engines;
* :mod:`~repro.core.batchkernel` — the batched block placement kernel
  (one vectorized sweep per application block);
* :mod:`~repro.core.parallel` — the rack-sharded process-parallel
  feasibility/scoring sweep (``AladdinConfig(workers=N)``),
  bit-identical to the serial pipeline;
* :mod:`~repro.core.migration` — priority-aware preemption and
  migration (Section III.B, Fig. 3 and Fig. 7);
* :mod:`~repro.core.validate` — the shared Equation 7–9 placement
  validator and the Fig. 9 quality metrics all engines are held to;
* :mod:`~repro.core.vecsolve` — the one-shot LP window engine
  (``AladdinConfig(engine="solver")``; needs the ``solver`` extra);
* :mod:`~repro.core.scheduler` — :class:`AladdinScheduler`, the
  end-to-end scheduler; :func:`engine_for` picks the engine a config
  names.
"""

from repro.core.config import AladdinConfig
from repro.core.weights import derive_priority_weights, weighted_flow_value
from repro.core.batchkernel import block_plan
from repro.core.blacklist import BlacklistFunction
from repro.core.feascache import FeasibilityCache
from repro.core.machindex import MachineIndex
from repro.core.network_builder import LayeredNetwork, build_layered_network
from repro.core.parallel import (
    ParallelSweep,
    merge_candidates,
    rack_work_weights,
    shard_bounds,
)
from repro.core.scheduler import AladdinScheduler
from repro.core.search import FlowPathSearch
from repro.core.validate import (
    QUALITY_TOLERANCE,
    PlacementInvalidError,
    QualityMetrics,
    ValidationReport,
    WindowContext,
    measure_quality,
    quality_gaps,
    validate_state,
    validate_window,
)


def engine_for(config: AladdinConfig | None = None):
    """Build the placement engine ``config.engine`` names.

    ``"batch"`` → :class:`AladdinScheduler`, ``"flow"`` →
    :class:`FlowPathSearch`, ``"solver"`` →
    :class:`~repro.core.vecsolve.SolverScheduler` (imported lazily so
    the default engines stay importable without scipy; selecting the
    solver without the ``solver`` extra raises an actionable
    ImportError).
    """
    config = config if config is not None else AladdinConfig()
    if config.engine == "flow":
        return FlowPathSearch(config)
    if config.engine == "solver":
        from repro.core.vecsolve import SolverScheduler

        return SolverScheduler(config)
    return AladdinScheduler(config)


__all__ = [
    "AladdinConfig",
    "derive_priority_weights",
    "weighted_flow_value",
    "BlacklistFunction",
    "FeasibilityCache",
    "MachineIndex",
    "block_plan",
    "LayeredNetwork",
    "build_layered_network",
    "ParallelSweep",
    "merge_candidates",
    "rack_work_weights",
    "shard_bounds",
    "AladdinScheduler",
    "FlowPathSearch",
    "engine_for",
    "QUALITY_TOLERANCE",
    "PlacementInvalidError",
    "QualityMetrics",
    "ValidationReport",
    "WindowContext",
    "measure_quality",
    "quality_gaps",
    "validate_state",
    "validate_window",
]
