"""Priority-aware preemption and migration (Section III.B, Fig. 3/7).

Plain maximum-flow offers two flow-increasing mechanisms — preemption
and migration — but neither is priority-aware.  Aladdin constrains them:

* **Migration** (Fig. 3b, Fig. 7): a blocked container may be admitted
  by *moving* deployed containers elsewhere — either containers whose
  anti-affinity blacklists the machine, or small containers whose
  eviction-by-relocation frees enough resources (consolidation).  Moved
  containers stay deployed, so migration never harms any priority class.
* **Preemption**: a machine may be freed by *evicting* strictly
  lower-priority containers; the weighted-flow ordering (Equation 5)
  guarantees the reverse never happens.  Victims are re-queued by the
  scheduler and may land elsewhere or end up undeployed.

The planner is shared by the vectorised scheduler and the flow-path
search engine; every successful rescue leaves the
:class:`~repro.cluster.state.ClusterState` consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.base import FailureReason
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.config import AladdinConfig


@dataclass
class RescueOutcome:
    """Result of one rescue attempt for one blocked container."""

    machine_id: int | None = None
    migrations: int = 0
    preempted: list[Container] = field(default_factory=list)
    explored: int = 0
    #: candidate machines examined by the strategy loops (a decision
    #: count, identical across the legacy/kernel paths by construction)
    scanned: int = 0
    failure: FailureReason | None = None

    @property
    def ok(self) -> bool:
        return self.machine_id is not None


def _rack_blocked(state: ClusterState, app_id: int, machine_id: int) -> bool:
    """True when a rack-scoped within-rule dooms ``machine_id``:
    relocating or evicting its residents cannot clear a conflict seated
    on a rack-mate."""
    cs = state.constraints
    if not (cs.has_within(app_id) and cs.within_scope(app_id) == "rack"):
        return False
    rack = int(state.topology.rack_of[machine_id])
    return any(
        m != machine_id and int(state.topology.rack_of[m]) == rack
        for m in state.app_machines.get(app_id, ())
    )


class RescuePlanner:
    """Attempts migration, consolidation and preemption, in that order.

    ``weights`` (priority class → Equation-5 weight) lets preemption
    honour the weighted-flow objective (Equation 9): a preemption whose
    victims carry at least as much weighted flow as the container being
    admitted would not increase the objective and is refused.

    When an engine wires in a :class:`~repro.core.rescuekernel.RescueKernel`
    (and its :class:`~repro.core.machindex.MachineIndex`), planning runs
    through the kernel's cached/vectorized twin of the strategies below;
    decisions are bit-identical — the legacy loop here is the oracle the
    differential harness replays against.
    """

    def __init__(
        self,
        state: ClusterState,
        config: AladdinConfig,
        weights: dict[int, float] | None = None,
        machine_index=None,
        kernel=None,
    ) -> None:
        self.state = state
        self.config = config
        self.weights = weights or {}
        self.machine_index = machine_index
        self.kernel = kernel
        if kernel is not None and machine_index is None:
            # The kernel reads candidate orders off a machine index;
            # grow a private one when the caller has none to share.
            from repro.core.machindex import MachineIndex

            self.machine_index = MachineIndex()

    def _weighted_flow(self, container: Container) -> float:
        return self.weights.get(container.priority, 1.0) * container.cpu

    # ------------------------------------------------------------------
    def rescue(
        self,
        container: Container,
        demand: np.ndarray,
        allow_preemption: bool = True,
        exhaustive: bool = False,
    ) -> RescueOutcome:
        """Try to free a machine for ``container``.

        On success the state already reflects every migration/eviction
        performed (the *placement* of ``container`` itself is left to
        the caller, which owns deployment bookkeeping).  ``exhaustive``
        lifts the candidate-scan bounds (used by the scheduler's final
        repair pass, where thoroughness beats latency).

        Wall time is reported to the active telemetry collector as the
        ``rescue`` phase (it overlaps the caller's search phase — rescue
        runs *inside* the search loop), alongside the deterministic
        ``rescue_*`` counters: attempts, migrations, preemptions and
        machines scanned are identical across the legacy/kernel paths
        (the decisions are), while ``rescue_kernel_invocations`` tells
        the two apart.
        """
        t0 = time.perf_counter()
        tele = telemetry.current()
        if tele is not None:
            tele.rescue_attempts += 1
        try:
            if self.kernel is not None:
                out = self.kernel.rescue_plan(
                    self, container, demand, allow_preemption, exhaustive
                )
                if tele is not None:
                    tele.rescue_kernel_invocations += 1
            else:
                out = self._rescue(
                    container, demand, allow_preemption, exhaustive
                )
            if tele is not None:
                tele.rescue_migrations += out.migrations
                tele.rescue_preemptions += len(out.preempted)
                tele.rescue_machines_scanned += out.scanned
            return out
        finally:
            if tele is not None:
                tele.add_phase_time("rescue", time.perf_counter() - t0)

    def _rescue(
        self,
        container: Container,
        demand: np.ndarray,
        allow_preemption: bool,
        exhaustive: bool,
    ) -> RescueOutcome:
        out = RescueOutcome()
        fits = (self.state.available >= demand).all(axis=1)
        forbidden = self.state.forbidden_mask(container.app_id)
        out.explored += self.state.n_machines

        if self.config.enable_migration:
            machine = self._migrate_blockers(
                container, fits & forbidden, out, exhaustive=exhaustive
            )
            if machine is None:
                machine = self._consolidate(
                    container, demand, ~fits & ~forbidden, out, exhaustive=exhaustive
                )
            if machine is not None:
                out.machine_id = machine
                return out
        if allow_preemption and self.config.enable_preemption:
            machine = self._preempt(container, demand, out)
            if machine is not None:
                out.machine_id = machine
                return out

        # Classify the failure for the Fig. 9(e) breakdown: anti-affinity
        # when resources existed somewhere but every such machine was
        # blacklisted; resource exhaustion otherwise.
        blocked_only_by_affinity = bool((fits & forbidden).any()) and not bool(
            (fits & ~forbidden).any()
        )
        out.failure = (
            FailureReason.ANTI_AFFINITY
            if blocked_only_by_affinity
            else FailureReason.RESOURCES
        )
        return out

    # ------------------------------------------------------------------
    # strategy 1: move anti-affinity blockers off a machine that has room
    # ------------------------------------------------------------------
    def _migrate_blockers(
        self,
        container: Container,
        candidates: np.ndarray,
        out: RescueOutcome,
        exhaustive: bool = False,
    ) -> int | None:
        state = self.state
        cs = state.constraints
        # Machines with few residents come first: fewer blockers to
        # relocate means a higher chance the whole plan lands.
        ids = np.flatnonzero(candidates)
        order = ids[np.argsort(state.container_count[ids], kind="stable")]
        if not exhaustive:
            order = order[: max(1, self.config.migration_candidates)]
        for machine_id in order:
            machine_id = int(machine_id)
            out.explored += 1
            out.scanned += 1
            blockers = [
                c
                for c in state.deployed_containers(machine_id)
                if cs.violates(container.app_id, c.app_id)
            ]
            if not blockers:
                continue
            if not exhaustive and (
                len(blockers) > self.config.max_migrations_per_container
            ):
                continue
            # Rack-scoped within-rules: relocating this machine's
            # residents cannot clear a conflict seated on a rack-mate.
            if _rack_blocked(state, container.app_id, machine_id):
                continue
            moves = self._plan_relocations(blockers, exclude=machine_id, out=out)
            if moves is None:
                continue
            for blocker, target in moves:
                state.migrate(blocker.container_id, target)
                out.migrations += 1
            return machine_id
        return None

    # ------------------------------------------------------------------
    # strategy 2: consolidate small containers away to free resources
    # (the Fig. 7 rescheduling example)
    # ------------------------------------------------------------------
    def _consolidate(
        self,
        container: Container,
        demand: np.ndarray,
        candidates: np.ndarray,
        out: RescueOutcome,
        exhaustive: bool = False,
    ) -> int | None:
        state = self.state
        # Roomiest machines first: they need the fewest relocations.
        order = self._packed_first(candidates)[::-1]
        if not exhaustive:
            # max(1, …) like every other strategy bound: candidates=0
            # means "cheapest possible scan", not "skip consolidation
            # while migration still scans one machine".
            order = order[: max(1, self.config.migration_candidates)]
        mover_limit = (
            state.n_machines if exhaustive else self.config.max_migrations_per_container
        )
        for machine_id in order:
            out.explored += 1
            out.scanned += 1
            shortfall = demand - state.available[machine_id]
            movers: list[Container] = []
            freed = np.zeros_like(demand)
            # Move low-priority, small containers first.
            residents = sorted(
                state.deployed_containers(machine_id),
                key=lambda c: (c.priority, c.cpu),
            )
            for resident in residents:
                if (freed >= shortfall).all():
                    break
                movers.append(resident)
                freed = freed + resident.demand_vector(state.topology.resources)
                if len(movers) > mover_limit:
                    break
            if not (freed >= shortfall).all():
                continue
            if len(movers) > mover_limit:
                continue
            moves = self._plan_relocations(movers, exclude=machine_id, out=out)
            if moves is None:
                continue
            for mover, target in moves:
                state.migrate(mover.container_id, target)
                out.migrations += 1
            return machine_id
        return None

    # ------------------------------------------------------------------
    # strategy 3: evict strictly lower-priority containers
    # ------------------------------------------------------------------
    def _preempt(
        self, container: Container, demand: np.ndarray, out: RescueOutcome
    ) -> int | None:
        """Free a machine at the expense of strictly lower-priority pods.

        Fig. 3(b)'s lesson applies here too: a displaced container that
        *can* run elsewhere should be migrated, not killed.  Victims
        are therefore relocated when any admitting machine exists and
        only evicted (re-queued by the scheduler) when the cluster
        genuinely has no room for them right now.
        """
        state = self.state
        cs = state.constraints
        scanned = 0
        for machine_id in self._packed_first(np.ones(state.n_machines, dtype=bool)):
            if scanned >= max(1, self.config.migration_candidates) * 4:
                break
            scanned += 1
            out.explored += 1
            out.scanned += 1
            residents = state.deployed_containers(machine_id)
            blockers = [
                c for c in residents if cs.violates(container.app_id, c.app_id)
            ]
            if any(c.priority >= container.priority for c in blockers):
                continue  # cannot displace an equal-or-higher priority blocker
            # Rack-scoped within-rules: evicting this machine's residents
            # cannot clear a conflict seated on a rack-mate.
            if _rack_blocked(state, container.app_id, machine_id):
                continue
            victims = list(blockers)
            freed = sum(
                (v.demand_vector(state.topology.resources) for v in victims),
                np.zeros_like(demand),
            )
            if not ((state.available[machine_id] + freed) >= demand).all():
                lower = sorted(
                    (
                        c
                        for c in residents
                        if c.priority < container.priority and c not in victims
                    ),
                    key=lambda c: (c.priority, c.cpu),
                )
                for extra in lower:
                    victims.append(extra)
                    freed = freed + extra.demand_vector(state.topology.resources)
                    if ((state.available[machine_id] + freed) >= demand).all():
                        break
            if not ((state.available[machine_id] + freed) >= demand).all():
                continue
            # Equation 9 guard: admitting this container must add more
            # weighted flow than the worst case of losing every victim.
            if self.weights and sum(
                self._weighted_flow(v) for v in victims
            ) >= self._weighted_flow(container):
                continue
            # Relocate what can be relocated, evict the rest.
            moves = self._plan_relocations(victims, exclude=machine_id, out=out)
            if moves is not None:
                for victim, target in moves:
                    state.migrate(victim.container_id, target)
                    out.migrations += 1
                return machine_id
            for victim in victims:
                target = self._relocation_target(victim, exclude=machine_id, out=out)
                if target is not None:
                    state.migrate(victim.container_id, target)
                    out.migrations += 1
                else:
                    state.evict(victim.container_id)
                    out.preempted.append(victim)
            return machine_id
        return None

    def _relocation_target(
        self, mover: Container, exclude: int, out: RescueOutcome
    ) -> int | None:
        """Best single-container relocation target, or ``None``."""
        state = self.state
        demand = mover.demand_vector(state.topology.resources)
        ok = (state.available >= demand).all(axis=1)
        ok &= ~state.forbidden_mask(mover.app_id)
        ok[exclude] = False
        out.explored += 1
        ids = np.flatnonzero(ok)
        if ids.size == 0:
            return None
        return int(ids[np.argmin(state.available[ids, 0])])

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _packed_first(self, mask: np.ndarray) -> np.ndarray:
        """Candidate machine ids, most-packed (least available CPU) first.

        Sorted by the canonical packing key of
        :func:`~repro.core.machindex.packing_keys` — the same total
        order the incrementally maintained machine index serves the
        rescue kernel, so the two paths agree machine for machine.
        (The key folds the id tie-break into the score; it only differs
        from a plain ``(cpu, id)`` lexicographic sort for sub-unit
        fractional CPU gaps, where either order is a valid packing.)
        """
        from repro.core.machindex import packing_keys

        ids = np.flatnonzero(mask)
        if ids.size == 0:
            return ids
        order = np.argsort(packing_keys(self.state, ids), kind="stable")
        return ids[order]

    def _plan_relocations(
        self, movers: list[Container], exclude: int, out: RescueOutcome
    ) -> list[tuple[Container, int]] | None:
        """Find a distinct-target relocation per mover, or ``None``.

        Targets are chosen most-packed-first among machines that fit the
        mover's demand and respect *its* constraints.  Reservations are
        tracked so two movers do not race for the last slot on one
        machine.
        """
        state = self.state
        reserved: dict[int, np.ndarray] = {}
        plan: list[tuple[Container, int]] = []
        for mover in movers:
            demand = mover.demand_vector(state.topology.resources)
            avail = state.available.copy()
            for m, used in reserved.items():
                avail[m] = avail[m] - used
            ok = (avail >= demand).all(axis=1)
            ok &= ~state.forbidden_mask(mover.app_id)
            ok[exclude] = False
            for mover_prev, target_prev in plan:
                if state.constraints.violates(mover.app_id, mover_prev.app_id):
                    ok[target_prev] = False
            ids = np.flatnonzero(ok)
            out.explored += 1
            if ids.size == 0:
                return None
            target = ids[np.argmin(avail[ids, 0])]
            plan.append((mover, int(target)))
            reserved[int(target)] = reserved.get(
                int(target), np.zeros_like(demand)
            ) + demand
        return plan
