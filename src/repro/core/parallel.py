"""Rack-sharded, process-parallel feasibility/scoring sweep.

The per-block hot loop of both engines is a cluster-wide sweep: one
feasibility evaluation over every machine (Equation 6 dominance plus
the live blacklist) followed by a packed-first candidate ordering.  The
cross-round cache (:mod:`repro.core.feascache`) and the incremental
index (:mod:`repro.core.machindex`) already made that sweep incremental;
this module makes it *parallel*, which is what full-paper scale
(10,000 machines, ~100,000 containers, Fig. 12–13) needs.

Contract
--------
**Inputs.**  :meth:`ParallelSweep.plan_block` takes the live
:class:`~repro.cluster.state.ClusterState`, one application block's
demand vector, its ``app_id``, the block size ``k`` and its
within-anti-affinity scope.  The call must happen *before* the block's
deploys, exactly where the serial engine would evaluate its feasibility
mask — the sweep and the serial path then see identical machine state.

**Shard invariants.**  Machines are partitioned by rack into
``workers`` contiguous ``[lo, hi)`` ranges (:func:`shard_bounds`); a
rack never spans two shards, so rack-scoped deduplication can run
shard-locally.  Each worker process holds a
:class:`~repro.cluster.state.ShardView` over a
``multiprocessing.shared_memory`` view of the coordinator's
``available`` array — workers read current capacities with zero copies
— plus its own :class:`~repro.core.feascache.FeasibilityCache` and
:class:`~repro.core.machindex.MachineIndex`, resynced per query from
the shard-local dirty ids the coordinator extracts from the state's
dirty log.  App-specific terms (the Equation 7–8 blacklist, soft
affinity) are evaluated coordinator-side and shipped as id lists, so a
worker's cache holds only the app-independent dominance term.

**Determinism guarantee.**  Each worker returns its shard's first
``min(k, shard candidates)`` admitting machines in the engines' total
preference order together with their *global-form* packing keys; the
coordinator merges the prefixes with the exact ordering rules of
:meth:`~repro.core.machindex.MachineIndex.candidates` (affinity tier,
packing key, machine id) and feeds the merged order to the same
:func:`~repro.core.batchkernel.block_plan` the serial path uses.  A
global prefix of length ``k`` contains at most ``k`` candidates of any
shard, so the per-shard ``k``-prefixes always cover it — the planned
machines are therefore **bit-identical to the serial path's**, which
``tests/test_differential.py`` enforces across the
workers × batched × cached axis under randomized churn.  All messaging
is synchronous lockstep (one query round per block, no concurrent
state mutation), so repeated runs are deterministic as well.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
from multiprocessing import shared_memory

import numpy as np

from repro import telemetry
from repro.cluster.state import ClusterState, ShardView
from repro.core.batchkernel import block_plan
from repro.core.feascache import FeasibilityCache
from repro.core.machindex import MachineIndex, affinity_tier

_EMPTY = np.empty(0, dtype=np.int64)


def shard_bounds(
    n_machines: int,
    machines_per_rack: int,
    workers: int,
    rack_weights: np.ndarray | None = None,
) -> list[tuple[int, int]]:
    """Rack-aligned contiguous ``[lo, hi)`` machine ranges, one per worker.

    Without ``rack_weights`` racks are split as evenly as possible *by
    count* — the historical layout, bit-for-bit.  With weights (one
    non-negative work estimate per rack, e.g. resident-container
    density from :func:`rack_work_weights`) the cut points equalise
    cumulative *work* instead: a shard full of packed racks gets fewer
    racks than an idle one, so the per-query worker times converge.
    Every rack also carries one unit of baseline cost (the sweep scans
    empty racks too), which keeps the cuts defined when all weights are
    zero.  Either way the ranges are rack-aligned, non-empty, and
    partition ``[0, n_machines)`` exactly — the properties the merge's
    determinism proof needs; the worker count is capped at the rack
    count (an empty shard would be pure overhead).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n_racks = -(-n_machines // machines_per_rack)
    workers = min(workers, n_racks)
    if rack_weights is None:
        base, extra = divmod(n_racks, workers)
        bounds: list[tuple[int, int]] = []
        lo_rack = 0
        for w in range(workers):
            hi_rack = lo_rack + base + (1 if w < extra else 0)
            lo = lo_rack * machines_per_rack
            hi = min(hi_rack * machines_per_rack, n_machines)
            bounds.append((lo, hi))
            lo_rack = hi_rack
        return bounds
    weights = np.asarray(rack_weights, dtype=np.float64)
    if weights.shape != (n_racks,):
        raise ValueError(
            f"rack_weights must have one entry per rack ({n_racks}), "
            f"got shape {weights.shape}"
        )
    if (weights < 0).any():
        raise ValueError("rack_weights must be non-negative")
    cum = np.cumsum(weights + 1.0)
    total = float(cum[-1])
    rack_cuts = [0]
    for w in range(1, workers):
        cut = int(np.searchsorted(cum, total * w / workers, side="left")) + 1
        # Monotone and non-empty: every shard keeps at least one rack.
        cut = max(cut, rack_cuts[-1] + 1)
        cut = min(cut, n_racks - (workers - w))
        rack_cuts.append(cut)
    rack_cuts.append(n_racks)
    return [
        (
            rack_cuts[w] * machines_per_rack,
            min(rack_cuts[w + 1] * machines_per_rack, n_machines),
        )
        for w in range(workers)
    ]


def rack_work_weights(state: ClusterState) -> np.ndarray:
    """Per-rack resident-container density, as shard-sizing weights.

    Resident count is the live proxy for per-shard sweep cost: packed
    racks mean more dirty machines per deploy, more cache
    invalidations, and more admitted candidates to score.  (Telemetry
    ``worker_time_s`` would be the direct signal, but it aggregates per
    worker, not per rack — density is the rack-resolved stand-in.)
    """
    topo = state.topology
    n_racks = -(-state.n_machines // topo.spec.machines_per_rack)
    return np.bincount(
        np.asarray(topo.rack_of, dtype=np.int64),
        weights=state.container_count.astype(np.float64),
        minlength=n_racks,
    )[:n_racks]


def merge_candidates(
    gids: np.ndarray,
    keys: np.ndarray,
    affine: np.ndarray | None,
    n_machines: int,
) -> np.ndarray:
    """Order the concatenated shard prefixes by the engines' total order.

    ``keys`` are global-form packing keys
    (:func:`~repro.core.machindex.packing_keys` evaluated with the full
    cluster's machine count); ``affine`` marks machines hosting an
    affine application.  The branch structure replicates
    :meth:`~repro.core.machindex.MachineIndex.candidates` exactly —
    stable affinity partition when the tier constant dominates, exact
    tier-augmented rescoring otherwise — so the merged order is
    bit-identical to the serial order restricted to the union of the
    shard prefixes.
    """
    if gids.size == 0:
        return _EMPTY
    if affine is None or not affine.any() or affine.all():
        return gids[np.lexsort((gids, keys))]
    tier = affinity_tier(n_machines)
    rest = ~affine
    if float(keys[affine].max()) >= float(keys[rest].min()) + tier:
        # Heterogeneous corner: redo the exact tier-augmented scoring
        # over the id-sorted candidate set, as the serial index does.
        by_id = np.argsort(gids, kind="stable")
        ids = gids[by_id]
        score = keys[by_id] + np.where(affine[by_id], 0.0, tier)
        return ids[np.argsort(score, kind="stable")]
    a = gids[affine][np.lexsort((gids[affine], keys[affine]))]
    r = gids[rest][np.lexsort((gids[rest], keys[rest]))]
    return np.concatenate([a, r])


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    The coordinator owns the segment's lifetime (it created it and
    unlinks it on detach); a worker must only map it.  Pre-3.13 Python
    registers attachments with the resource tracker too, which makes
    worker exit double-unlink or warn — suppress the registration, via
    the ``track=False`` keyword where available and a no-op register
    shim otherwise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:
    """One shard worker: feascache + machindex pipeline over a ShardView.

    Protocol (coordinator → worker):

    * ``("bind", shm_name, shape, lo, hi, rack_local)`` — attach the
      shared-memory ``available`` array, adopt shard ``[lo, hi)``,
      reset caches; acknowledged with ``("ok",)``.
    * ``("query", dirty_local, demand, k, scope, forbidden, affine)`` —
      resync from ``dirty_local`` (``None`` = full), answer with the
      shard's candidate ``k``-prefix as
      ``(gids, keys, affine_bits, admitted, stats)``.
    * ``("dump",)`` — reply with a serialisable image of the worker's
      view watermark (local version, dirty-log segments, base) and its
      cache/index checkpoints, for the coordinator's checkpoint.
    * ``("load", image)`` — adopt a previously dumped image onto the
      freshly bound view (restoring the local dirty-log numbering the
      cache/index entries are keyed to); acknowledged with ``("ok",)``.
    * ``("stop",)`` — exit.
    """
    shm: shared_memory.SharedMemory | None = None
    view: ShardView | None = None
    cache = FeasibilityCache()
    index = MachineIndex()
    n_total = 0
    lo = 0
    rack_local: np.ndarray | None = None
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "bind":
                _, shm_name, shape, lo, hi, rack_local = msg
                if shm is not None:
                    shm.close()
                shm = _attach_shm(shm_name)
                full = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
                view = ShardView(full[lo:hi])
                cache = FeasibilityCache()
                index = MachineIndex()
                n_total = int(shape[0])
                conn.send(("ok",))
                continue
            if kind == "dump":
                conn.send(
                    {
                        "view_version": view.version,
                        "segments": [s.copy() for s in view._segments],
                        "base": view._base,
                        "cache": cache.checkpoint(),
                        "index": index.checkpoint(),
                    }
                )
                continue
            if kind == "load":
                _, image = msg
                view.version = image["view_version"]
                view._segments = [np.array(s) for s in image["segments"]]
                view._base = image["base"]
                cache.restore(image["cache"], view.state_uid)
                index.restore(image["index"], view.state_uid)
                conn.send(("ok",))
                continue
            _, dirty_local, demand, k, scope, forbidden, affine = msg
            t0 = time.perf_counter()
            view.advance(dirty_local)
            hits0, inv0, resyncs0 = cache.hits, cache.invalidations, index.resyncs
            mask = cache.feasible_mask(view, demand, app_id=0)
            recomputed = cache.last_recomputed
            if forbidden is not None and forbidden.size:
                mask[forbidden] = False
            aff = None
            if affine is not None:
                aff = np.zeros(view.n_machines, dtype=bool)
                aff[affine] = True
            order = index.candidates(view, mask, aff)
            admitted = int(order.size)
            if scope == "rack" and order.size:
                _, first = np.unique(rack_local[order], return_index=True)
                order = order[np.sort(first)]
            prefix = order[:k]
            gids = prefix.astype(np.int64) + lo
            keys = view.available[prefix, 0] * (n_total + 1) + gids.astype(
                np.float64
            )
            stats = {
                "recomputed": recomputed,
                "hits": cache.hits - hits0,
                "invalidations": cache.invalidations - inv0,
                "resyncs": index.resyncs - resyncs0,
                "elapsed_s": time.perf_counter() - t0,
            }
            conn.send(
                (gids, keys, aff[prefix] if aff is not None else None,
                 admitted, stats)
            )
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        if shm is not None:
            shm.close()
        conn.close()


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class ParallelSweep:
    """Coordinator of the sharded parallel feasibility/scoring sweep.

    One instance lives on a scheduler (next to its serial cache and
    index) and survives across ``schedule()`` calls.  Worker processes
    are spawned lazily on the first :meth:`plan_block`, rebound when the
    scheduler is handed a different :class:`ClusterState`, and torn down
    by :meth:`close` (after which the sweep is restartable).  While a
    state is attached, its ``available`` array is *adopted* into shared
    memory — replaced by an equal-valued shared-memory-backed view, so
    every coordinator-side mutation (deploys, evictions, fault
    injection) is immediately visible to the workers; :meth:`close`
    restores a private copy.

    Attributes
    ----------
    workers:
        Requested worker count (the effective count is capped at the
        cluster's rack count).
    sweeps:
        Lifetime number of parallel block plans served.
    cold_restarts:
        Times a dead shard worker forced :meth:`plan_block` through the
        cold-restart path (fresh workers, full resync).
    rebalances:
        Times :meth:`rebalance` actually moved a shard boundary.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.sweeps = 0
        self.cold_restarts = 0
        self.rebalances = 0
        self._procs: list[mp.process.BaseProcess] = []
        self._conns: list = []
        self._bounds: list[tuple[int, int]] = []
        self._state: ClusterState | None = None
        self._uid: int | None = None
        self._shm: shared_memory.SharedMemory | None = None
        self._synced_version = -1
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _spawn(self, n_shards: int) -> None:
        if len(self._procs) == n_shards and all(p.is_alive() for p in self._procs):
            return
        self._stop_procs()
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        for i in range(n_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child,),
                daemon=True,
                name=f"aladdin-shard-{i}",
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    def _attach(self, state: ClusterState) -> None:
        if state is self._state and state.state_uid == self._uid:
            return
        self._detach_state()
        n, d = state.available.shape
        bounds = shard_bounds(
            n, state.topology.spec.machines_per_rack, self.workers
        )
        self._spawn(len(bounds))
        shm = shared_memory.SharedMemory(create=True, size=max(8, n * d * 8))
        shared = np.ndarray((n, d), dtype=np.float64, buffer=shm.buf)
        shared[:] = state.available
        state.available = shared
        self._shm = shm
        self._state = state
        self._uid = state.state_uid
        self._bounds = bounds
        rack_of = state.topology.rack_of
        for conn, (lo, hi) in zip(self._conns, bounds):
            conn.send(
                ("bind", shm.name, (n, d), lo, hi,
                 np.asarray(rack_of[lo:hi], dtype=np.int64))
            )
        for conn in self._conns:
            conn.recv()
        self._synced_version = state.version

    def _rebind(self, state: ClusterState, bounds: list[tuple[int, int]]) -> None:
        """Re-shard the live workers onto ``bounds`` over the same
        shared-memory segment.

        Binding resets each worker's cache and index, so the first query
        after a rebind resyncs every shard cold regardless of the dirty
        log — decisions are unaffected (a fresh cache recomputes exactly
        the serial verdicts), only the hit/miss telemetry shifts.
        """
        n, d = state.available.shape
        rack_of = state.topology.rack_of
        for conn, (lo, hi) in zip(self._conns, bounds):
            conn.send(
                ("bind", self._shm.name, (n, d), lo, hi,
                 np.asarray(rack_of[lo:hi], dtype=np.int64))
            )
        for conn in self._conns:
            conn.recv()
        self._bounds = list(bounds)
        self._synced_version = state.version

    # ------------------------------------------------------------------
    def rebalance(
        self, state: ClusterState, rack_weights: np.ndarray | None = None
    ) -> bool:
        """Re-cut the shards by ``rack_weights`` (work-weighted sizing).

        Returns whether any boundary actually moved; a no-op re-cut
        (the weighted bounds equal the current ones) costs nothing and
        keeps the worker caches warm.  Callers fire this at checkpoint
        boundaries — *before* the snapshot is taken, so a resumed run
        adopts the post-rebalance layout from the checkpoint payload.
        """
        self._attach(state)
        bounds = shard_bounds(
            state.n_machines,
            state.topology.spec.machines_per_rack,
            self.workers,
            rack_weights,
        )
        if bounds == self._bounds or len(bounds) != len(self._conns):
            return False
        self._rebind(state, bounds)
        self.rebalances += 1
        return True

    # ------------------------------------------------------------------
    def plan_block(
        self,
        state: ClusterState,
        demand: np.ndarray,
        app_id: int,
        k: int,
        within_scope: str | None,
    ) -> tuple[np.ndarray, int, int]:
        """Machines for the next ``k`` identical containers, in parallel.

        Returns ``(machines, recomputed, admitted)``: the planned
        machine ids (bit-identical to the serial
        :func:`~repro.core.batchkernel.block_plan` output; shorter than
        ``k`` means the quotas ran dry and the caller falls back to the
        serial overflow path), the number of per-machine dominance
        verdicts actually recomputed across all shards (the honest
        ``explored`` charge), and the total admitted-candidate count
        (for the ``machines_skipped`` telemetry).
        """
        self._attach(state)
        dirty = state.dirty_array_since(self._synced_version)
        cs = state.constraints
        forbidden = None
        if cs.has_within(app_id) or cs.has_conflicts(app_id):
            forbidden = np.flatnonzero(state.forbidden_mask(app_id))
        affinity = state.affinity_mask(app_id)
        affine_ids = (
            np.flatnonzero(affinity) if affinity is not None else None
        )
        for attempt in range(2):
            try:
                for conn, (lo, hi) in zip(self._conns, self._bounds):
                    if dirty is None:
                        d_local = None
                    else:
                        seg = dirty[(dirty >= lo) & (dirty < hi)]
                        d_local = seg - lo
                    f_local = _slice_ids(forbidden, lo, hi)
                    a_local = _slice_ids(affine_ids, lo, hi)
                    conn.send(
                        ("query", d_local, demand, int(k), within_scope,
                         f_local, a_local)
                    )
                replies = [conn.recv() for conn in self._conns]
                break
            except (EOFError, BrokenPipeError, OSError):
                if attempt:
                    raise
                # A shard worker died mid-sweep.  Take the documented
                # cold path: tear everything down (detach hands the
                # state back a private `available` copy), re-attach
                # (fresh workers, fresh shared memory, empty caches)
                # and retry the exchange once.  Fresh workers recompute
                # every verdict regardless of the dirty list, so the
                # planned machines stay bit-identical — only the
                # hit/miss cost counters differ from an uninterrupted
                # run.
                self.cold_restarts += 1
                self.close()
                self._attach(state)
                dirty = None
        self._synced_version = state.version
        self.sweeps += 1

        gids = np.concatenate([r[0] for r in replies])
        keys = np.concatenate([r[1] for r in replies])
        aff = None
        if affinity is not None:
            aff = (
                np.concatenate([r[2] for r in replies])
                if gids.size
                else np.empty(0, dtype=bool)
            )
        merged = merge_candidates(gids, keys, aff, state.n_machines)
        machines = block_plan(state, demand, merged, k, within_scope)
        recomputed = sum(r[4]["recomputed"] for r in replies)
        admitted = sum(r[3] for r in replies)

        tele = telemetry.current()
        if tele is not None:
            tele.parallel_sweeps += 1
            tele.cache_hits += sum(r[4]["hits"] for r in replies)
            tele.cache_misses += recomputed
            tele.cache_invalidations += sum(
                r[4]["invalidations"] for r in replies
            )
            tele.index_resyncs += sum(r[4]["resyncs"] for r in replies)
            for i, r in enumerate(replies):
                tele.add_worker_time(f"w{i}", r[4]["elapsed_s"])
        return machines, recomputed, admitted

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict | None:
        """Serialisable image of the sweep's watermark and worker state.

        ``None`` when no state is attached (nothing to persist) or a
        worker cannot answer (died mid-run) — the restore side then
        starts the sweep cold, which costs one full resync but never
        corrupts.  The per-worker images carry each shard's local
        dirty-log watermark plus its cache/index checkpoints, so a
        restored sweep resumes with the exact per-shard sync points the
        uninterrupted run would have had.
        """
        if self._state is None or not self._conns:
            return None
        try:
            for conn in self._conns:
                conn.send(("dump",))
            workers = [conn.recv() for conn in self._conns]
        except (EOFError, BrokenPipeError, OSError):  # pragma: no cover
            return None
        return {
            "bounds": list(self._bounds),
            "synced_version": self._synced_version,
            "sweeps": self.sweeps,
            "rebalances": self.rebalances,
            "workers": workers,
        }

    def restore(self, state: ClusterState, payload: dict | None) -> None:
        """Re-attach to ``state`` and adopt a :meth:`checkpoint` image.

        Workers are re-spawned and the restored ``available`` array is
        re-adopted into fresh shared memory by the ordinary attach
        path; the image then reloads each worker's shard-local
        watermark and caches.  A checkpoint taken after a work-weighted
        :meth:`rebalance` carries the moved boundaries: when the
        payload's bounds form a valid rack-aligned partition for the
        same worker count, the workers are re-bound onto them first, so
        the resumed run keeps the rebalanced layout.  A ``None``
        payload or an incompatible layout (different worker count or
        cluster size) falls back to the cold attach — a full resync,
        never silent corruption.
        """
        self._attach(state)
        if payload is None:
            return
        bounds = [(int(lo), int(hi)) for lo, hi in payload["bounds"]]
        if bounds != self._bounds:
            if len(bounds) != len(self._conns) or not _is_rack_partition(
                bounds,
                state.n_machines,
                state.topology.spec.machines_per_rack,
            ):
                return
            self._rebind(state, bounds)
        self.sweeps = payload["sweeps"]
        self.rebalances = payload.get("rebalances", 0)
        for conn, image in zip(self._conns, payload["workers"]):
            conn.send(("load", image))
        for conn in self._conns:
            conn.recv()
        # The persisted watermark is typically older than the attach
        # point (deploys follow the last plan_block); the next query
        # ships exactly the machines dirtied since, as the
        # uninterrupted run would.
        self._synced_version = payload["synced_version"]

    # ------------------------------------------------------------------
    def _detach_state(self) -> None:
        if self._state is not None and self._shm is not None:
            # Hand the state back a private copy before the shared
            # buffer goes away — callers may keep using it serially.
            self._state.available = np.array(self._state.available)
        if self._shm is not None:
            # Unlink *before* close: close() raises BufferError while
            # any live view still maps the buffer, and the old
            # close-then-unlink order leaked the /dev/shm segment
            # whenever that happened.  Unlinking first removes the name
            # unconditionally; the mapping itself is released when the
            # last view dies.
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                self._shm.close()
            except BufferError:  # a live external view; freed with it
                pass
            self._shm = None
        self._state = None
        self._uid = None
        self._synced_version = -1

    def _stop_procs(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs = []
        self._conns = []

    def close(self) -> None:
        """Stop the workers and release the shared memory.

        Idempotent and safe against dead children: a worker killed
        mid-sweep must not keep the shared segment alive, so the
        detach (which unlinks the segment) runs even when stopping the
        workers fails.
        """
        try:
            self._stop_procs()
        finally:
            self._detach_state()


def _slice_ids(ids: np.ndarray | None, lo: int, hi: int) -> np.ndarray | None:
    """Restrict a global id list to ``[lo, hi)`` as shard-local ids."""
    if ids is None:
        return None
    seg = ids[(ids >= lo) & (ids < hi)]
    return seg - lo


def _is_rack_partition(
    bounds: list[tuple[int, int]], n_machines: int, machines_per_rack: int
) -> bool:
    """Whether ``bounds`` is a valid non-empty rack-aligned partition of
    ``[0, n_machines)`` — the invariants the merge's determinism proof
    (and shard-local rack dedup) relies on."""
    if not bounds or bounds[0][0] != 0 or bounds[-1][1] != n_machines:
        return False
    prev_hi = 0
    for lo, hi in bounds:
        if lo != prev_hi or hi <= lo or lo % machines_per_rack != 0:
            return False
        prev_hi = hi
    return True
