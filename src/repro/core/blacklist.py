"""The nonlinear set-based capacity function (Equations 7–8).

Linear N-tuple capacities cannot express anti-affinity, so Aladdin
extends the admission test ``c(s,Ti) ≤ c(Nj,t)`` to a set-membership
test: after a container is deployed, every application conflicting with
it joins the machine's *blacklist*, and Equation 8 admits a container
only when its application is not blacklisted.

:class:`BlacklistFunction` is the queryable object form used by the
flow-path search and exposed as the ``predicate`` of a
:class:`~repro.flownet.capacity.VectorCapacity`; the vectorised
scheduler fast-path uses the equivalent
:meth:`repro.cluster.state.ClusterState.forbidden_mask`.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState


class BlacklistFunction:
    """Equations 7–8 over a live :class:`ClusterState`.

    The blacklist is *derived* state: it is always computed from the
    deployed-container sets ``d`` and the anti-affinity rules ``p``, so
    it can never drift out of sync with deployments.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state = state

    def blacklist(self, machine_id: int) -> set[int]:
        """Equation 7: application ids forbidden on ``machine_id``.

        For every application ``d`` deployed on the machine, its
        conflict partners are forbidden; ``d`` itself is forbidden too
        when it carries within-app anti-affinity.  Rack-scoped
        within-rules extend the forbidden domain to every machine in a
        rack hosting the application.
        """
        state = self._state
        cs = state.constraints
        forbidden: set[int] = set()
        for container in state.deployed_containers(machine_id):
            forbidden.update(cs.conflicts_of(container.app_id))
            if cs.has_within(container.app_id):
                forbidden.add(container.app_id)
        rack = int(state.topology.rack_of[machine_id])
        for app_id, per_machine in state.app_machines.items():
            if app_id in forbidden or not per_machine:
                continue
            if cs.has_within(app_id) and cs.within_scope(app_id) == "rack":
                if any(
                    int(state.topology.rack_of[m]) == rack
                    for m in per_machine
                ):
                    forbidden.add(app_id)
        return forbidden

    def admits(self, app_id: int, machine_id: int) -> bool:
        """Equation 8: 1 when ``app_id`` is deployable on ``machine_id``."""
        return app_id not in self.blacklist(machine_id)

    def admission_vector(self, app_id: int) -> np.ndarray:
        """Equation 8 evaluated for every machine at once (0/1 array).

        Equivalent to ``~state.forbidden_mask(app_id)`` — asserted
        equivalent by the property tests — but computed from the
        per-machine blacklist definition for fidelity to the paper.
        """
        out = np.ones(self._state.n_machines, dtype=bool)
        for machine_id in self._state.machine_containers:
            if not self.admits(app_id, machine_id):
                out[machine_id] = False
        return out
