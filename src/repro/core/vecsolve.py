"""One-shot LP window placement: the solver engine.

The incremental engines place a window block by block: each application
pays a feasibility sweep against the *current* state, deploys, and
dirties the machines the next block must resync.  This module
formulates the whole window as one vectorized assignment problem
instead, in the CvxCluster style: isomorphism limiting makes all
containers of a block identical, so the decision variable is simply
``x[b, j]`` — how many of block ``b``'s containers land on its ``j``-th
candidate machine — and one sparse LP over the frozen pre-window state
replaces the per-block sweep/deploy interleaving.

Formulation (per scheduling window)
-----------------------------------
* **Candidates.**  Per block, the same admit mask the batch engine
  computes (Equation 6 dominance + the Equation 7–8 blacklist, served
  by the cross-round cache) ordered by the incremental
  :class:`~repro.core.machindex.MachineIndex` packed-first order, then
  *capped*: the prefix whose fit quotas cover ``~1.5k`` containers.
  The cap is what keeps the LP small — O(Σk) variables, not O(blocks ×
  machines) — and the slack absorbs cross-block capacity contention.
* **Variables.**  ``x[b, j] ∈ [0, quota]`` (quota 1 for
  within-anti-affinity blocks, rack-deduplicated for rack scope).
* **Constraints** (assembled with the Medea ILP's
  :class:`~repro.baselines.ilp.SparseLinearModel`): per-machine,
  per-dimension capacity rows for machines shared by several blocks
  (single-block machines are already bounded by their quota), and the
  standard LP surrogate ``q_b·x[a,m] + q_a·x[b,m] <= q_a·q_b`` for
  window-internal conflicting pairs sharing a candidate.
* **Objective.**  ``packing``: maximise weighted placed units
  (Equation 3–5 class weights) with an ε-scaled packed-first bonus —
  ε is small enough that the LP never trades a placeable unit for
  packing.  ``maxmin``: two-phase max-min fairness (maximise the
  minimum per-block placed fraction ``t``, then re-optimise packing
  subject to that floor) — the Soroush-style fairness axis.
* **Rounding + repair.**  ``linprog(method="highs")`` relaxes
  integrality; a deterministic floor + largest-remainder pass restores
  it per block (candidate order breaks ties), and commitment guards
  every deploy with the live ``fits``/``would_violate`` checks — a
  rejected slot is counted as a *rounding repair* and its container
  falls back to the incremental per-block path (walk + rescue), which
  also absorbs whole blocks the LP left unplaced.

Decisions are deliberately **not** bit-identical to the batch engine —
the LP optimises jointly where the walk commits greedily — so the
engine is held to the shared Equation 7–9 validator
(:mod:`repro.core.validate`) and the Fig. 9 quality-parity harness
(``tests/test_solver_parity.py``) instead of the differential harness.

scipy is required (the ``solver`` packaging extra); constructing
:class:`SolverScheduler` without it raises an actionable ImportError
while the rest of the package stays importable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.base import ScheduleResult
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.config import AladdinConfig
from repro.core.migration import RescuePlanner
from repro.core.scheduler import (
    AladdinScheduler,
    _derive_weights_for,
    _group_blocks,
    drain_requeue,
    final_repair,
)
from repro.core.validate import WindowContext, validate_window

#: candidate quotas must cover ``ceil(CANDIDATE_SLACK * k) + CANDIDATE_PAD``
#: containers per block — slack for cross-block capacity contention the
#: per-block admit masks cannot see.
CANDIDATE_SLACK = 1.5
CANDIDATE_PAD = 4

#: floating-point guards for the rounding pass
_FLOOR_EPS = 1e-9
_SUM_EPS = 1e-6


def _require_scipy() -> None:
    """Fail fast, and actionably, when the ``solver`` extra is missing."""
    try:
        import scipy.optimize  # noqa: F401
        import scipy.sparse  # noqa: F401
    except ImportError as exc:
        raise ImportError(
            "the solver engine needs scipy, which is packaged as the "
            "optional 'solver' extra — install it with "
            "`pip install 'repro[solver]'` (or `pip install scipy`), "
            "or select the default engine (AladdinConfig(engine='batch'))"
        ) from exc


class _FairnessPlanner:
    """A :class:`RescuePlanner` view with preemption disabled.

    Max-min mode grants every block a placed-fraction floor through the
    LP; the fallback path's rescue preemption is strictly
    priority-ordered and would evict those floors away again inside the
    same round.  Rescues are therefore restricted to the mechanisms
    that never shrink anyone's placement — migration and consolidation.
    """

    def __init__(self, planner: RescuePlanner) -> None:
        self._planner = planner

    def rescue(self, container, demand, allow_preemption=True, exhaustive=False):
        return self._planner.rescue(container, demand, False, exhaustive)

    def __getattr__(self, name):
        return getattr(self._planner, name)


class _BlockModel:
    """One application block's slice of the window LP."""

    __slots__ = (
        "block", "demand", "candidates", "quota", "weight", "offset",
    )

    def __init__(self, block, demand, candidates, quota, weight):
        self.block = block
        self.demand = demand
        self.candidates = candidates
        self.quota = quota
        self.weight = weight
        self.offset = 0  # variable offset, assigned at model build

    @property
    def k(self) -> int:
        return len(self.block)

    @property
    def n_vars(self) -> int:
        return int(self.candidates.size)


class SolverScheduler(AladdinScheduler):
    """The LP window engine; see the module docstring for the model.

    Subclasses :class:`~repro.core.scheduler.AladdinScheduler`: the
    cross-round ledgers (feasibility cache, machine index, rescue
    kernel, optional parallel sweep), checkpoint/restore and the
    per-container fallback path are all inherited — the LP replaces
    only the in-window placement loop.
    """

    def __init__(self, config: AladdinConfig | None = None) -> None:
        _require_scipy()
        super().__init__(config)
        self.name = self.config.variant_name() + "[solver]"
        #: lifetime count of containers committed straight from LP plans
        self.solver_placed = 0

    # ------------------------------------------------------------------
    def _schedule(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        tele = result.telemetry
        blocks = _group_blocks(containers)
        self.last_weights = _derive_weights_for(containers, self.config)
        guard_weights = _derive_weights_for(containers, self.config, base=1.0)
        planner = RescuePlanner(
            state,
            self.config,
            guard_weights,
            machine_index=self.machine_index,
            kernel=self.rescue_kernel,
        )
        if self.config.solver_objective == "maxmin":
            planner = _FairnessPlanner(planner)

        window = self.config.window_apps
        for start in range(0, len(blocks), window):
            window_blocks = sorted(
                blocks[start : start + window],
                key=lambda b: -self.last_weights[b[0].priority],
            )
            requeue: list[Container] = []
            if self.config.gang_scheduling:
                # Gang atomicity needs the per-block rollback semantics
                # of the incremental path; the LP plans containers, not
                # all-or-nothing applications.
                pending = window_blocks
            else:
                with tele.phase("solver"):
                    pending = self._solve_window(window_blocks, state, result)
            with tele.phase("search"):
                for block in pending:
                    self._place_block(block, state, planner, result, requeue)
            with tele.phase("requeue"):
                drain_requeue(self, requeue, state, planner, result)
        if self.config.final_repair and result.undeployed:
            with tele.phase("repair"):
                final_repair(self, containers, state, planner, result)
        # Rescue migrations move already-placed containers; re-read their
        # final machine from the authoritative state.
        for cid in result.placements:
            result.placements[cid] = state.assignment[cid]

    # ------------------------------------------------------------------
    def _solve_window(
        self,
        window_blocks: list[list[Container]],
        state: ClusterState,
        result: ScheduleResult,
    ) -> list[list[Container]]:
        """Plan and commit one window via the LP; returns leftover blocks.

        Leftovers (blocks the LP could not model or containers its
        rounded plan could not commit) keep their window priority order
        and flow into the inherited per-block path.
        """
        from scipy import optimize

        tele = result.telemetry
        ctx = WindowContext.capture(state)
        models: list[_BlockModel] = []
        pending: list[list[Container]] = []
        seen_apps: set[int] = set()
        for block in window_blocks:
            app_id = block[0].app_id
            if app_id in seen_apps:
                # A duplicate block of the same app inside one window
                # (possible with non-contiguous submission streams)
                # would need within-rule coupling the LP does not
                # model; the incremental path handles it exactly.
                pending.append(block)
                continue
            seen_apps.add(app_id)
            # Later blocks must see past the packed prefix the earlier
            # blocks will consume: every block's candidate quotas target
            # the same packed-first machines, so without the extra
            # coverage the joint capacity rows bind and the LP strands
            # units the fallback path then has to place one by one.
            preceding = sum(m.k for m in models)
            model = self._block_model(block, state, result, preceding)
            if model is None:
                pending.append(block)
            else:
                models.append(model)
        if not models:
            return pending

        n_vars = 0
        for model in models:
            model.offset = n_vars
            n_vars += model.n_vars
        base = self._assemble_constraints(models, ctx)
        bounds = np.empty((n_vars, 2))
        bounds[:, 0] = 0.0
        for model in models:
            bounds[model.offset : model.offset + model.n_vars, 1] = (
                model.quota
            )

        objective = self._packing_objective(models, ctx, n_vars)
        floors: np.ndarray | None = None
        if self.config.solver_objective == "maxmin":
            floors = self._maxmin_floors(
                models, base, bounds, n_vars, tele
            )
            if floors is not None:
                for model, floor in zip(models, floors):
                    if floor <= 0.0:
                        continue
                    row = base.n_rows
                    for j in range(model.n_vars):
                        base.add_entry(row, model.offset + j, -1.0)
                    base.close_row(-floor)

        a_ub = base.matrix(n_vars) if base.n_rows else None
        b_ub = np.array(base.ub) if base.n_rows else None
        if tele is not None:
            tele.solver_calls += 1
        res = optimize.linprog(
            objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
        )
        if res.x is None or res.status != 0:
            # Infeasible/failed relaxation (the maxmin floor can be
            # over-tight under degenerate ties): the whole window takes
            # the incremental path — never a dropped container.
            return pending + [m.block for m in models]

        lp_units = float(np.clip(res.x, 0.0, None).sum())
        committed = self._commit(models, res.x, state, result, tele)
        if tele is not None:
            tele.solver_relaxation_gap += max(0.0, lp_units - committed)
        if self.config.validate_placements:
            window_containers = [c for b in window_blocks for c in b]
            placed_now = {
                c.container_id: result.placements[c.container_id]
                for c in window_containers
                if c.container_id in result.placements
            }
            validate_window(ctx, window_containers, placed_now).raise_if_invalid(
                "solver window commit"
            )

        leftovers = [m.block for m in models if m.block]
        return pending + leftovers

    # ------------------------------------------------------------------
    def _block_model(
        self,
        block: list[Container],
        state: ClusterState,
        result: ScheduleResult,
        preceding: int = 0,
    ) -> _BlockModel | None:
        """Candidate set, quotas and weight for one block (None = no fit).

        ``preceding`` is the unit count of earlier blocks in the same
        window: the candidate prefix is widened past the capacity those
        blocks may consume, so the cap never starves the LP.
        """
        app_id = block[0].app_id
        demand = block[0].demand_vector(state.topology.resources)
        mask = self._feasible_mask(state, demand, app_id, result)
        affinity = state.affinity_mask(app_id)
        order = self.machine_index.candidates(state, mask, affinity)
        if order.size == 0:
            return None
        cs = state.constraints
        scope = cs.within_scope(app_id) if cs.has_within(app_id) else None
        if scope == "rack":
            racks = state.topology.rack_of[order]
            _, first = np.unique(racks, return_index=True)
            order = order[np.sort(first)]
        k = len(block)
        want = math.ceil(CANDIDATE_SLACK * k) + CANDIDATE_PAD + preceding
        if scope is not None:
            cands = order[:want].astype(np.int64, copy=False)
            quota = np.ones(cands.size, dtype=np.int64)
        else:
            head = order[: want]  # quota >= 1 per admitted candidate
            with np.errstate(divide="ignore"):
                quota = np.floor(
                    (state.available[head] / demand).min(axis=1)
                ).astype(np.int64)
            quota = np.minimum(quota, k)
            cum = np.cumsum(quota)
            stop = int(np.searchsorted(cum, want, side="left")) + 1
            cands = head[:stop].astype(np.int64, copy=False)
            quota = quota[:stop]
        result.explored += int(cands.size)
        weight = float(self.last_weights[block[0].priority])
        return _BlockModel(block, demand, cands, quota, weight)

    # ------------------------------------------------------------------
    @staticmethod
    def _assemble_constraints(models: list[_BlockModel], ctx: WindowContext):
        """Capacity + window-conflict rows over the frozen pre-state.

        Assembled with numpy over the concatenated candidate arrays —
        the row count scales with the window's candidate footprint, so
        per-entry Python loops dominated the solve time before this was
        vectorized.
        """
        from repro.baselines.ilp import SparseLinearModel

        lp = SparseLinearModel()
        var_machine = np.concatenate([m.candidates for m in models])
        var_block = np.concatenate(
            [np.full(m.n_vars, i, dtype=np.int64) for i, m in enumerate(models)]
        )
        n_vars = int(var_machine.size)
        # Per-block placement cap: never plan more units than the block
        # has containers (the objective rewards every placed unit).
        lp.rows.extend(var_block.tolist())
        lp.cols.extend(range(n_vars))
        lp.vals.extend([1.0] * n_vars)
        lp.ub.extend(float(m.k) for m in models)
        lp.n_rows += len(models)
        # Machines referenced by several blocks need joint capacity
        # rows; single-block machines are already bounded by the quota.
        # (A block lists a machine at most once, so a machine appearing
        # twice in the concatenation is shared.)
        demands = np.stack([m.demand for m in models])  # (n_blocks, d)
        n_dims = demands.shape[1]
        order = np.argsort(var_machine, kind="stable")
        sorted_m = var_machine[order]
        starts = np.flatnonzero(np.r_[True, sorted_m[1:] != sorted_m[:-1]])
        counts = np.diff(np.r_[starts, sorted_m.size])
        grp = np.repeat(np.arange(starts.size), counts)
        keep = counts[grp] >= 2
        if keep.any():
            sel_vars = order[keep]
            sel_grp = np.unique(grp[keep], return_inverse=True)[1]
            sel_machines = sorted_m[starts[counts >= 2]]
            base_row = lp.n_rows
            # One row per (shared machine, dim), rows interleaved by dim.
            rows = (
                base_row
                + (sel_grp[:, None] * n_dims + np.arange(n_dims)).ravel()
            )
            cols = np.repeat(sel_vars, n_dims)
            vals = demands[var_block[sel_vars]].ravel()
            lp.rows.extend(rows.tolist())
            lp.cols.extend(cols.tolist())
            lp.vals.extend(vals.tolist())
            lp.ub.extend(ctx.available[sel_machines].ravel().tolist())
            lp.n_rows += int(sel_machines.size) * n_dims
        # Window-internal Equation 8 surrogate on shared machines:
        # q_b·x[a,m] + q_a·x[b,m] <= q_a·q_b per conflicting pair.
        cs = ctx.constraints
        for i, a in enumerate(models):
            app_a = a.block[0].app_id
            if not cs.has_conflicts(app_a):
                continue
            for b in models[i + 1 :]:
                if not cs.violates(app_a, b.block[0].app_id):
                    continue
                _, ja, jb = np.intersect1d(
                    a.candidates, b.candidates, return_indices=True
                )
                if ja.size == 0:
                    continue
                qa = a.quota[ja].astype(np.float64)
                qb = b.quota[jb].astype(np.float64)
                base_row = lp.n_rows
                rows = np.repeat(np.arange(base_row, base_row + ja.size), 2)
                cols = np.column_stack(
                    [a.offset + ja, b.offset + jb]
                ).ravel()
                vals = np.column_stack([qb, qa]).ravel()
                lp.rows.extend(rows.tolist())
                lp.cols.extend(cols.tolist())
                lp.vals.extend(vals.tolist())
                lp.ub.extend((qa * qb).tolist())
                lp.n_rows += int(ja.size)
        return lp

    # ------------------------------------------------------------------
    def _packing_objective(
        self,
        models: list[_BlockModel],
        ctx: WindowContext,
        n_vars: int,
    ) -> np.ndarray:
        """Minimisation coefficients: weighted units + ε packing bonus.

        The bonus prefers packed machines (low frozen remaining CPU)
        exactly like the walk's packed-first order, but at ε scale: the
        total bonus over every possible unit stays below the smallest
        per-unit weight, so the LP never sacrifices a placement for it.
        """
        total_units = sum(m.k for m in models)
        min_weight = min(m.weight for m in models)
        eps = min_weight / (2.0 + total_units)
        cap0 = float(ctx.available[:, 0].max()) + 1.0
        c = np.zeros(n_vars)
        for model in models:
            pref = 1.0 - ctx.available[model.candidates, 0] / cap0
            c[model.offset : model.offset + model.n_vars] = -(
                model.weight + eps * pref
            )
        return c

    # ------------------------------------------------------------------
    @staticmethod
    def _maxmin_floors(
        models: list[_BlockModel],
        base,
        bounds: np.ndarray,
        n_vars: int,
        tele,
    ) -> np.ndarray | None:
        """Phase-1 of the max-min objective: per-block placed floors.

        Maximises ``t`` with ``Σ_j x[b, j] >= k_b · t`` per block and
        returns each block's resulting floor ``k_b · t*`` (slightly
        relaxed for LP arithmetic).  ``None`` when the phase fails —
        the caller falls back to plain packing.
        """
        from scipy import optimize

        rows = list(base.rows)
        cols = list(base.cols)
        vals = list(base.vals)
        ub = list(base.ub)
        row = base.n_rows
        for model in models:
            for j in range(model.n_vars):
                rows.append(row)
                cols.append(model.offset + j)
                vals.append(-1.0)
            rows.append(row)
            cols.append(n_vars)  # the t variable
            vals.append(float(model.k))
            ub.append(0.0)
            row += 1
        from scipy import sparse

        a_ub = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, n_vars + 1)
        )
        c = np.zeros(n_vars + 1)
        c[n_vars] = -1.0
        t_bounds = np.vstack([bounds, [0.0, 1.0]])
        if tele is not None:
            tele.solver_calls += 1
        res = optimize.linprog(
            c, A_ub=a_ub, b_ub=np.array(ub), bounds=t_bounds,
            method="highs",
        )
        if res.x is None or res.status != 0:
            return None
        t_star = max(0.0, float(res.x[n_vars]) - 1e-9)
        return np.array([model.k * t_star for model in models])

    # ------------------------------------------------------------------
    def _commit(
        self,
        models: list[_BlockModel],
        x: np.ndarray,
        state: ClusterState,
        result: ScheduleResult,
        tele,
    ) -> int:
        """Round each block's LP slice and deploy it under live guards.

        Mutates each model's ``block`` down to its uncommitted
        containers (the caller routes those to the fallback path).
        Returns the number of containers committed.
        """
        committed = 0
        for model in models:
            xs = x[model.offset : model.offset + model.n_vars]
            counts = _round_counts(xs, model.quota, model.k)
            plan = np.repeat(model.candidates, counts)
            leftovers: list[Container] = []
            i = 0
            scan = 0  # in-block recovery pointer over the candidate set
            placed_here = 0
            for container in model.block:
                # Commit at most the rounded allocation: the recovery
                # scan may re-home a *rejected* plan slot, but never
                # place past the block's LP share — later blocks in
                # this window still own their slice of the capacity
                # (the maxmin floors depend on this).
                if placed_here >= plan.size:
                    leftovers.append(container)
                    continue
                placed = False
                while i < plan.size:
                    machine = int(plan[i])
                    i += 1
                    if state.fits(model.demand, machine) and not (
                        state.would_violate(container, machine)
                    ):
                        state.deploy(container, machine, model.demand)
                        result.placements[container.container_id] = machine
                        result.explored += 1
                        committed += 1
                        placed_here += 1
                        placed = True
                        break
                    if tele is not None:
                        tele.solver_rounding_repairs += 1
                if not placed:
                    # Plan exhausted (per-block rounding can overshoot
                    # joint capacity): recover inside the block's own
                    # candidate set under live guards before falling
                    # back.  Containers of a block are identical, so a
                    # rejection is permanent and the scan pointer never
                    # revisits; a machine that admitted stays current
                    # until a sibling's guard rejects it (capacity dry
                    # or the within rule), which advances the scan.
                    while scan < model.candidates.size:
                        machine = int(model.candidates[scan])
                        result.explored += 1
                        if state.fits(model.demand, machine) and not (
                            state.would_violate(container, machine)
                        ):
                            state.deploy(container, machine, model.demand)
                            result.placements[
                                container.container_id
                            ] = machine
                            committed += 1
                            placed_here += 1
                            placed = True
                            break
                        scan += 1
                if not placed:
                    leftovers.append(container)
            model.block = leftovers
        self.solver_placed += committed
        return committed


def _round_counts(x: np.ndarray, quota: np.ndarray, k: int) -> np.ndarray:
    """Deterministic floor + largest-remainder rounding of one block.

    Targets ``min(k, floor(Σx))`` units: floors first, then the
    remaining units go to the largest fractional parts (candidate
    position breaks ties), never exceeding a candidate's quota.
    """
    if x.size == 0:
        return np.zeros(0, dtype=np.int64)
    x = np.clip(x, 0.0, quota.astype(np.float64))
    counts = np.floor(x + _FLOOR_EPS).astype(np.int64)
    counts = np.minimum(counts, quota)
    target = min(k, int(math.floor(float(x.sum()) + _SUM_EPS)))
    deficit = target - int(counts.sum())
    if deficit > 0:
        frac = x - counts
        order = np.lexsort((np.arange(x.size), -frac))
        for j in order:
            if deficit <= 0:
                break
            take = min(int(quota[j] - counts[j]), deficit)
            if take > 0:
                counts[j] += take
                deficit -= take
    elif deficit < 0:
        # Out-of-contract input (the LP's per-block cap keeps Σx <= k,
        # so floors cannot overshoot the target in-engine): shed the
        # excess from the smallest fractional parts, last position
        # first, keeping the helper total.
        frac = x - counts
        order = np.lexsort((np.arange(x.size), -frac))
        for j in order[::-1]:
            if deficit >= 0:
                break
            give = min(int(counts[j]), -deficit)
            counts[j] -= give
            deficit += give
    return counts
