"""Algorithm 1 executed literally over the layered flow network.

:class:`FlowPathSearch` is the *reference* engine: it enumerates
augmenting paths ``s → T_i → A_j → G_k → R_x → N_y → t`` through a real
:class:`~repro.flownet.graph.FlowNetwork`, admitting a path only when the
machine's multidimensional remaining capacity dominates the container's
demand (Equation 6 via :class:`~repro.flownet.capacity.VectorCapacity`)
and the machine's blacklist admits the application (Equations 7–8 via
:class:`~repro.core.blacklist.BlacklistFunction`).  Flow is pushed along
every accepted path, so the resulting assignment *is* a feasible flow —
checked by :func:`repro.flownet.validation.validate_flow`.

The engine applies the same isomorphism-limiting and depth-limiting
prunings and the same packed-first machine preference as the vectorised
:class:`~repro.core.scheduler.AladdinScheduler`, and the test-suite
asserts both engines produce identical placements on randomized
workloads.  It is quadratic-ish and meant for small instances; large
experiments use the vectorised engine.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.blacklist import BlacklistFunction
from repro.core.config import AladdinConfig
from repro.core.feascache import FeasibilityCache
from repro.core.machindex import MachineIndex
from repro.core.migration import RescuePlanner
from repro.core.network_builder import LayeredNetwork, build_layered_network
from repro.core.parallel import ParallelSweep
from repro.core.rescuekernel import RescueKernel
from repro.core.scheduler import (
    _derive_weights_for,
    _group_blocks,
    drain_requeue,
    engine_checkpoint,
    engine_restore,
    final_repair,
)
from repro.core.validate import validate_state
from repro.flownet.capacity import VectorCapacity
from repro.flownet.validation import validate_flow


class FlowPathSearch(Scheduler):
    """Reference flow-network engine for Aladdin (small instances)."""

    def __init__(self, config: AladdinConfig | None = None) -> None:
        self.config = config if config is not None else AladdinConfig()
        self.name = self.config.variant_name() + "[flow]"
        self.last_network: LayeredNetwork | None = None
        self.last_weights: dict[int, float] = {}
        #: cross-round IL feasibility verdicts, shared semantics with
        #: the vectorised engine (the differential harness compares both)
        self.feas_cache = FeasibilityCache()
        #: incrementally maintained packed-first ordering; replaces the
        #: per-container full argsort whenever the cache yields an
        #: admit mask to restrict it to
        self.machine_index = MachineIndex()
        #: vectorized rescue planning, shared semantics with the
        #: vectorised engine (``None`` = legacy per-machine loop)
        self.rescue_kernel = (
            RescueKernel() if self.config.enable_rescue_kernel else None
        )
        #: rack-sharded parallel sweep for the cached+DL path; gated
        #: exactly like the vectorised engine's (workers=1 → serial)
        cfg = self.config
        self.parallel: ParallelSweep | None = None
        if (
            cfg.workers > 1
            and cfg.enable_il
            and cfg.enable_dl
            and cfg.enable_feasibility_cache
        ):
            self.parallel = ParallelSweep(cfg.workers)

    def close(self) -> None:
        """Release parallel-sweep workers and shared memory (idempotent)."""
        if self.parallel is not None:
            self.parallel.close()

    # ------------------------------------------------------------------
    def rebalance_shards(self, state: ClusterState) -> bool:
        """Work-weighted shard resize at checkpoint boundaries; same
        semantics as the vectorised engine's hook (opt-in, decisions
        unaffected, worker caches resync cold)."""
        if not self.config.shard_rebalance or self.parallel is None:
            return False
        from repro.core.parallel import rack_work_weights

        return self.parallel.rebalance(state, rack_work_weights(state))

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of the cross-round ledgers (shared layout
        with the vectorised engine).  ``last_network`` is rebuilt per
        window and deliberately not persisted."""
        return engine_checkpoint(self)

    def restore_checkpoint(self, payload: dict, state: ClusterState) -> None:
        """Adopt a :meth:`checkpoint` image against a restored state."""
        engine_restore(self, payload, state)

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict,
        state: ClusterState,
        config: AladdinConfig | None = None,
    ) -> "FlowPathSearch":
        """Build a flow engine whose ledgers resume from ``payload``."""
        engine = cls(config)
        engine.restore_checkpoint(payload, state)
        return engine

    # ------------------------------------------------------------------
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        t0 = time.perf_counter()
        result = ScheduleResult()
        result.telemetry = telemetry.SchedulerTelemetry()
        with telemetry.collect(result.telemetry):
            self._schedule(containers, state, result)
        if self.config.validate_placements:
            validate_state(state).raise_if_invalid(self.name)
        result.elapsed_s = time.perf_counter() - t0
        return result

    def _schedule(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        self.last_weights = _derive_weights_for(containers, self.config)
        guard_weights = _derive_weights_for(containers, self.config, base=1.0)
        planner = RescuePlanner(
            state,
            self.config,
            guard_weights,
            machine_index=self.machine_index,
            kernel=self.rescue_kernel,
        )
        blocks = _group_blocks(containers)
        window = self.config.window_apps
        for start in range(0, len(blocks), window):
            window_blocks = sorted(
                blocks[start : start + window],
                key=lambda b: -self.last_weights[b[0].priority],
            )
            with result.telemetry.phase("search"):
                self._schedule_window(window_blocks, state, planner, result)
        if self.config.final_repair and result.undeployed:
            # The same exhaustive repair pass the vectorised engine
            # runs; skipping it here made the engines diverge on
            # workloads where only an unbounded rescue scan succeeds.
            version_before = state.version
            with result.telemetry.phase("repair"):
                final_repair(self, containers, state, planner, result)
            if self.last_network is not None:
                touched = state.dirty_array_since(version_before)
                if touched is None:
                    # Log compacted: conservatively re-truthify every
                    # sink residual (the patch is idempotent).
                    touched = np.arange(state.n_machines)
                _patch_residuals(self.last_network, state, touched)
        # Rescue migrations move already-placed containers; re-read their
        # final machine from the authoritative state.
        for cid in result.placements:
            result.placements[cid] = state.assignment[cid]

    # ------------------------------------------------------------------
    def _schedule_window(
        self,
        window_blocks: list[list[Container]],
        state: ClusterState,
        planner: RescuePlanner,
        result: ScheduleResult,
    ) -> None:
        flat = [c for block in window_blocks for c in block]
        network = build_layered_network(flat, state)
        self.last_network = network
        blacklist = BlacklistFunction(state)
        requeue: list[Container] = []

        # Per-application pruning state for IL.
        dead_apps: dict[int, FailureReason] = {}

        tele = result.telemetry
        for block in window_blocks:
            app_id = block[0].app_id
            demand = block[0].demand_vector(state.topology.resources)
            for container in block:
                if app_id in dead_apps:
                    result.undeployed[container.container_id] = dead_apps[app_id]
                    if tele is not None:
                        tele.il_prune_hits += 1
                    continue
                machine = self._find_path(
                    container, demand, state, network, blacklist, result
                )
                if machine is None:
                    version_before = state.version
                    outcome = planner.rescue(container, demand)
                    result.explored += outcome.explored
                    if outcome.ok and state.would_violate(
                        container, outcome.machine_id
                    ):
                        # Defensive, mirrors the vectorised engine: a
                        # rescue target the constraints still forbid is
                        # a failure, not a placement.
                        outcome.machine_id = None
                        outcome.failure = FailureReason.ANTI_AFFINITY
                    if outcome.ok:
                        result.migrations += outcome.migrations
                        result.preemptions += len(outcome.preempted)
                        requeue.extend(outcome.preempted)
                        machine = outcome.machine_id
                        state.deploy(container, machine, demand)
                        result.placements[container.container_id] = machine
                        # Rescue mutated machine loads outside the
                        # network; only the touched machines' sink
                        # residuals can have gone stale (interior edges
                        # are infinite), so patch those in place instead
                        # of rebuilding the whole network per rescue.
                        touched = state.dirty_array_since(version_before)
                        if touched is None:
                            # Dirty log compacted past us: fall back to
                            # the full rebuild over the live containers.
                            flat = [c for c in flat if c.container_id not in
                                    result.placements and c.container_id not in
                                    result.undeployed]
                            network = build_layered_network(flat, state)
                            self.last_network = network
                        else:
                            _patch_residuals(network, state, touched)
                        continue
                    result.undeployed[container.container_id] = outcome.failure
                    if self.config.enable_il:
                        dead_apps[app_id] = outcome.failure
                    continue
                self._augment(container, demand, machine, network)
                state.deploy(container, machine, demand)
                result.placements[container.container_id] = machine

        if requeue:
            # Same victim re-placement pass as the vectorised engine —
            # including its migration fallback — so tight clusters where
            # a victim no longer fits anywhere directly cannot make the
            # engines drift.  Rescues mutate machines behind the
            # network's back; re-truthify the touched sink residuals.
            version_before = state.version
            drain_requeue(self, requeue, state, planner, result)
            touched = state.dirty_array_since(version_before)
            if touched is None:
                touched = np.arange(state.n_machines)
            _patch_residuals(network, state, touched)

    # ------------------------------------------------------------------
    def _find_path(
        self,
        container: Container,
        demand: np.ndarray,
        state: ClusterState,
        network: LayeredNetwork,
        blacklist: BlacklistFunction,
        result: ScheduleResult,
    ) -> int | None:
        """Explore machine paths packed-first; DL stops at the first hit.

        The exploration order is the same total order as the vectorised
        engine's (`_scores`): affinity tier, packing level, machine id.

        With the cross-round cache enabled the per-machine admission
        test is answered from the persistent IL verdicts (synchronised
        against the state's dirty log) instead of evaluating the
        ``VectorCapacity`` + blacklist pair afresh; the admitted set is
        identical — ``capacity.admits`` *is* Equation 6 ∧ Equation 8,
        which is exactly what ``ClusterState.feasible_mask`` vectorises.
        On that path the exploration order comes from the incrementally
        maintained :class:`~repro.core.machindex.MachineIndex`
        restricted to the admit mask — no per-container ``argsort`` over
        every machine — and the first candidate *is* the answer, since
        every entry of the restricted order is admitted by construction.
        """
        from repro.core.scheduler import _scores

        cfg = self.config
        tele = result.telemetry
        if self.parallel is not None:
            # The sharded sweep answers the k=1 query: per-shard cached
            # admission + index prefix, merged into the serial order —
            # the winner is the exact machine ``order[0]`` below yields.
            machines, recomputed, admitted = self.parallel.plan_block(
                state, demand, container.app_id, 1, None
            )
            result.explored += recomputed
            if tele is not None:
                tele.machines_skipped += state.n_machines - admitted
            if machines.size == 0:
                return None
            result.explored += 1
            if tele is not None:
                tele.dl_prune_hits += 1
            return int(machines[0])
        if cfg.enable_il and cfg.enable_feasibility_cache:
            admit = self.feas_cache.feasible_mask(
                state, demand, container.app_id
            )
            result.explored += self.feas_cache.last_recomputed
            order = self.machine_index.candidates(
                state, admit, state.affinity_mask(container.app_id)
            )
            if tele is not None:
                tele.machines_skipped += state.n_machines - int(order.size)
            if order.size == 0:
                return None
            if cfg.enable_dl:
                result.explored += 1
                if tele is not None:
                    tele.dl_prune_hits += 1
            else:
                # No DL: the whole admitted candidate set is the honest
                # exploration cost; the winner is unchanged.
                result.explored += int(order.size)
            return int(order[0])

        order = np.argsort(
            _scores(
                state,
                np.arange(state.n_machines),
                state.affinity_mask(container.app_id),
            ),
            kind="stable",
        )
        chosen: int | None = None
        for machine_id in order:
            machine_id = int(machine_id)
            result.explored += 1
            capacity = VectorCapacity(
                state.available[machine_id],
                predicate=lambda _d, ctx: blacklist.admits(
                    container.app_id, ctx
                ),
            )
            if capacity.admits(demand, machine_id):
                if chosen is None:
                    chosen = machine_id
                if cfg.enable_dl:
                    if tele is not None:
                        tele.dl_prune_hits += 1
                    break
        return chosen

    def _augment(
        self,
        container: Container,
        demand: np.ndarray,
        machine_id: int,
        network: LayeredNetwork,
    ) -> None:
        """Push the container's flow along its accepted path."""
        net = network.net
        flow = demand[0]
        rack = int(network.topology.rack_of[machine_id])
        cluster = int(network.topology.cluster_of[machine_id])
        t_node = network.task_node[container.container_id]
        a_node = network.app_node[container.app_id]
        g_node = network.cluster_node[cluster]
        r_node = network.rack_node[rack]
        n_node = network.machine_node[machine_id]
        net.push(network.task_edge[container.container_id], flow)
        self._push_between(net, t_node, a_node, flow)
        self._push_between(net, a_node, g_node, flow)
        self._push_between(net, g_node, r_node, flow)
        self._push_between(net, r_node, n_node, flow)
        net.push(network.machine_edge[machine_id], flow)

    @staticmethod
    def _push_between(net, tail: int, head: int, flow: float) -> None:
        """Push along the unique forward edge tail → head."""
        for i in net.adj[tail]:
            if i % 2 == 0 and net.edges[i].head == head:
                net.push(i, flow)
                return
        raise ValueError(f"no forward edge {tail} -> {head}")

    def validate(self) -> None:
        """Assert the accumulated flow on the last window is feasible."""
        if self.last_network is None:
            raise RuntimeError("no window has been scheduled yet")
        validate_flow(
            self.last_network.net,
            self.last_network.source,
            self.last_network.sink,
        )


def _patch_residuals(
    network: LayeredNetwork,
    state: ClusterState,
    touched: np.ndarray,
    flow_dim: int = 0,
) -> None:
    """Re-truthify the sink residuals of rescue-touched machines.

    Every interior edge of the layered network is infinite; only the
    machine → sink edges carry state-dependent capacity, so a rescue
    that migrates or preempts containers can only stale *those* — and
    only for the machines the dirty log reports as touched.  Setting
    ``capacity = flow + available`` keeps the already-pushed flow
    feasible (``validate_flow`` stays green: flow ≤ capacity by
    construction) while restoring the invariant ``residual ==
    state.available[m, flow_dim]`` that :meth:`FlowPathSearch._augment`
    relies on for subsequent pushes.
    """
    net = network.net
    for m in touched:
        edge = net.edges[network.machine_edge[int(m)]]
        edge.capacity = edge.flow + float(state.available[int(m), flow_dim])
