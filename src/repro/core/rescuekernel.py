"""Vectorized rescue kernel: batched migration/consolidation/preemption.

The legacy :class:`~repro.core.migration.RescuePlanner` strategies are
pure-Python per-machine loops: every rescue attempt opens with a
full-cluster ``(available >= demand).all(axis=1)`` scan, every candidate
machine re-lists and re-sorts its residents, and every relocation query
copies the whole ``available`` matrix to apply reservations.  At high
utilization — the regime where the paper's Fig. 9/12 advantage is
actually measured — nearly every blocked container triggers a rescue,
so that per-rescue O(machines × dims) work dominates the round.

The kernel re-plans the *same decisions* on the substrate PRs 1–3 built:

* **Admit masks** come from a private, telemetry-quiet
  :class:`~repro.core.feascache.FeasibilityCache` serving Equation-6
  dominance verdicts per demand *shape* (movers and victims recycle a
  handful of shapes), synchronised against the
  :class:`~repro.cluster.state.ClusterState` dirty log — the full scan
  per rescue becomes a per-dirty-machine update.
* **Candidate orders** come from the engine's incrementally maintained
  :class:`~repro.core.machindex.MachineIndex` instead of a fresh
  ``argsort`` over all machines per strategy call.
* **Resident summaries** (:class:`ResidentLedger`) cache, per machine:
  the residents in their authoritative enumeration order, their
  app/priority/demand arrays, the ``(priority, cpu)``-sorted
  permutation, and the prefix-summed freeable demand in that order —
  so consolidation's mover prefix is a ``searchsorted`` over cumulative
  freed resources and preemption's victim sets are boolean masks, not
  sorted Python loops.  Rows are dropped lazily for machines the dirty
  log reports as touched.
* **Relocation planning** tracks reservations sparsely: the dominance
  mask is fixed up only on the handful of reserved machines instead of
  copying ``available`` per mover.

Decisions are bit-identical to the legacy loop — same machine freed,
same victims in the same order, same failure verdicts — because every
float is accumulated in the same sequence (``np.cumsum`` performs the
legacy loop's left-to-right additions) and every tie-break replays the
legacy order.  The rescue axis of ``tests/test_differential.py``
enforces the equivalence under randomized churn; the unit oracles in
``tests/core/test_rescuekernel.py`` pin each strategy against the
legacy planner directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.base import FailureReason
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.feascache import FeasibilityCache


@dataclass
class _Residents:
    """Per-machine resident summary (one :class:`ResidentLedger` row).

    ``containers`` is in the machine's authoritative enumeration order
    (what :meth:`ClusterState.deployed_containers` returns at the row's
    build version — stable until the machine is next mutated, at which
    point the dirty log drops the row).  ``by_prio_cpu`` is the stable
    ``(priority, cpu)`` argsort of that order — the exact permutation
    the legacy strategies' ``sorted(..., key=(priority, cpu))`` yields —
    and ``sorted_cum`` the running demand sum along it, accumulated
    left-to-right like the legacy mover loop.
    """

    containers: list[Container]
    app_ids: np.ndarray  # int64, enumeration order
    priorities: np.ndarray  # int64, enumeration order
    demands: np.ndarray  # (k, dims) float64, enumeration order
    by_prio_cpu: np.ndarray  # int64 permutation, stable (priority, cpu)
    sorted_cum: np.ndarray  # (k, dims) cumsum of demands[by_prio_cpu]


class ResidentLedger:
    """Dirty-log-synchronised cache of per-machine resident summaries.

    Rows are built lazily on first query and dropped for exactly the
    machines the :class:`ClusterState` dirty log reports as touched —
    the same synchronisation discipline as the feasibility cache and
    the machine index.  A compacted log or an unfamiliar state instance
    drops every row; the ledger degrades to per-query rebuilds, never
    to stale residents.
    """

    def __init__(self) -> None:
        self._state_uid: int | None = None
        self._version: int = -1
        self._rows: dict[int, _Residents] = {}
        #: lifetime count of rows built (the ledger's work measure)
        self.builds = 0

    def sync(self, state: ClusterState) -> None:
        """Drop rows for machines mutated since the last sync."""
        if state.state_uid != self._state_uid:
            self._rows.clear()
            self._state_uid = state.state_uid
            self._version = state.version
            return
        if state.version == self._version:
            return
        dirty = state.dirty_array_since(self._version)
        if dirty is None:
            self._rows.clear()
        else:
            for machine_id in dirty.tolist():
                self._rows.pop(machine_id, None)
        self._version = state.version

    def row(self, state: ClusterState, machine_id: int) -> _Residents:
        """The (synced) resident summary of ``machine_id``."""
        self.sync(state)
        row = self._rows.get(machine_id)
        if row is None:
            row = self._build(state, machine_id)
            self._rows[machine_id] = row
        return row

    def _build(self, state: ClusterState, machine_id: int) -> _Residents:
        containers = state.deployed_containers(machine_id)
        k = len(containers)
        dims = state.available.shape[1]
        resources = state.topology.resources
        app_ids = np.fromiter((c.app_id for c in containers), np.int64, k)
        priorities = np.fromiter((c.priority for c in containers), np.int64, k)
        if k:
            demands = np.stack([c.demand_vector(resources) for c in containers])
            cpus = np.fromiter((c.cpu for c in containers), np.float64, k)
            # lexsort is stable: equal (priority, cpu) keep enumeration
            # order, exactly like the legacy ``sorted`` call.
            by_prio_cpu = np.lexsort((cpus, priorities)).astype(np.int64)
            sorted_cum = np.cumsum(demands[by_prio_cpu], axis=0)
        else:
            demands = np.zeros((0, dims))
            by_prio_cpu = np.empty(0, dtype=np.int64)
            sorted_cum = np.zeros((0, dims))
        self.builds += 1
        return _Residents(
            containers=containers,
            app_ids=app_ids,
            priorities=priorities,
            demands=demands,
            by_prio_cpu=by_prio_cpu,
            sorted_cum=sorted_cum,
        )


class RescueKernel:
    """Vectorized twin of the legacy rescue strategies.

    One instance lives on each engine (next to its feasibility cache
    and machine index) and survives across ``schedule()`` calls.  The
    planner dispatches to :meth:`rescue_plan` when the kernel is
    wired in (``AladdinConfig.enable_rescue_kernel``); the legacy loop
    remains the oracle the differential harness replays against.
    """

    def __init__(self) -> None:
        #: private Equation-6 dominance verdicts per demand shape.  Not
        #: the engine's ``feas_cache``: rescue demand shapes would
        #: perturb the search path's hit statistics, and the quiet mode
        #: keeps engine-level ``cache_*`` telemetry counters meaning
        #: "search-path verdicts" across the rescue axis.
        self.dominance = FeasibilityCache(report_telemetry=False)
        self.ledger = ResidentLedger()
        #: app id -> [state uid, version, blacklist mask].  The live
        #: Equation 7–8 blacklist is cheap once but the relocation
        #: planner asks for the same few mover apps hundreds of times,
        #: so the kernel keeps per-app masks synchronised against the
        #: dirty log: a mutation on machine ``m`` can only flip verdict
        #: ``m`` (an app's hosting set changes only where the log says
        #: so), except for rack-scoped within-rules, where the dirty
        #: set widens to every machine sharing a rack with a dirty one
        #: — the same widening argument the feasibility cache documents.
        self._forbidden: dict[int, list] = {}
        #: (app id, demand bytes) -> (uid, version, ascending machine
        #: ids admitting the pair).  The relocation planner's unit of
        #: work, version-keyed like :attr:`_forbidden`: a failed plan
        #: attempt leaves the state untouched, so consolidation's walk
        #: over hundreds of candidate machines re-asks for the same few
        #: (mover app, shape) pairs and each is answered O(1).
        self._admissible: dict[
            tuple[int, bytes], tuple[int, int, np.ndarray]
        ] = {}
        #: relocation-plan memo.  A plan attempt is fully determined by
        #: (state uid, version, strategy key): consolidation's movers
        #: are the ``(machine, prefix length)`` of the ledger row's
        #: (priority, cpu) order, blocker migration's are the
        #: ``(machine, app)`` blocker set.  Failed attempts leave the
        #: state unmutated, so an exhaustive repair pass retrying the
        #: same machines for many blocked containers shares one version
        #: window — and most attempts are repeats of known failures.
        #: Successful plans mutate the state, bumping the version, so a
        #: hit can never replay a stale success.
        self._plans: dict[tuple, tuple[int, int, list | None]] = {}
        #: failed-rescue memo.  A rescue that ends in failure never
        #: mutated the state, and its verdict is determined by the
        #: (app, demand shape, flags, weights) of the attempt — during
        #: exhaustive repair, sibling containers of one application
        #: retry the identical hopeless rescue back to back.  The
        #: stored ``scanned`` is replayed so the strategy-walk visit
        #: counters stay bit-identical to the legacy loop's.
        self._failures: dict[tuple, tuple] = {}
        #: lifetime count of kernel-planned rescues
        self.invocations = 0

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of the memos that carry *charged* costs.

        What is persisted and what is deliberately dropped follows the
        bit-identity requirement of checkpoint/restore:

        * ``dominance`` entries and the ``_plans``/``_failures`` memos
          **must** survive — a failure-memo hit replays its stored
          ``scanned``/``explored`` charges and a plan-memo hit skips
          the per-mover ``explored`` charges, so a cold restart would
          change the resumed run's counters.
        * ``_forbidden``, ``_admissible`` and the resident ledger are
          dropped: rebuilding them is charge-free (pure state reads, or
          dominance syncs that are no-ops because every admissible-memo
          store synced its dominance entry at the same version the
          checkpoint captured), so the restored run stays bit-identical
          while the snapshot stays small.
        """
        uid = self.dominance._state_uid
        return {
            "dominance": self.dominance.checkpoint(),
            "plans": {
                key: value[1:]
                for key, value in self._plans.items()
                if value[0] == uid
            },
            "failures": {
                key: value[1:]
                for key, value in self._failures.items()
                if value[0] == uid
            },
            "invocations": self.invocations,
        }

    def restore(self, payload: dict, state: ClusterState) -> None:
        """Adopt a :meth:`checkpoint` image against the restored state.

        Memo entries are rewritten to the restored state's uid; their
        stored versions remain valid because the state checkpoint
        persists the dirty log with identical numbering.
        """
        uid = state.state_uid
        self.dominance.restore(payload["dominance"], uid)
        self._plans = {
            key: (uid, *rest) for key, rest in payload["plans"].items()
        }
        self._failures = {
            key: (uid, *rest) for key, rest in payload["failures"].items()
        }
        self.invocations = payload["invocations"]
        self._forbidden = {}
        self._admissible = {}
        self.ledger = ResidentLedger()

    def _forbidden_mask(self, state: ClusterState, app_id: int) -> np.ndarray:
        """Incrementally synced ``state.forbidden_mask`` (read-only)."""
        hit = self._forbidden.get(app_id)
        if hit is None or hit[0] != state.state_uid:
            mask = state.forbidden_mask(app_id)
            self._forbidden[app_id] = [state.state_uid, state.version, mask]
            return mask
        if hit[1] == state.version:
            return hit[2]
        dirty = state.dirty_array_since(hit[1])
        if dirty is None:
            hit[2] = state.forbidden_mask(app_id)
        elif dirty.size:
            self._resync_forbidden(state, app_id, hit[2], dirty)
        hit[1] = state.version
        return hit[2]

    def _resync_forbidden(
        self,
        state: ClusterState,
        app_id: int,
        mask: np.ndarray,
        dirty: np.ndarray,
    ) -> None:
        """Recompute Equation 7–8 verdicts for the dirty machines only."""
        cs = state.constraints
        rack_within = (
            cs.has_within(app_id) and cs.within_scope(app_id) == "rack"
        )
        if rack_within:
            # A mutation can flip the verdict of every rack-mate.
            rack_of = state.topology.rack_of
            dirty = np.flatnonzero(
                np.isin(rack_of, np.unique(rack_of[dirty]))
            )
        # Dirty sets are a handful of machines; hosting sets are the
        # live ``app_machines`` entries.  Plain set intersections beat
        # an ``np.isin`` per conflict partner by an order of magnitude
        # at this size.
        dirty_set = set(dirty.tolist())
        hits: set[int] = set()
        if cs.has_within(app_id):
            hosting = state.app_machines.get(app_id)
            if hosting:
                if rack_within:
                    rack_of = state.topology.rack_of
                    racks = {int(rack_of[m]) for m in hosting}
                    hits.update(
                        m for m in dirty_set if int(rack_of[m]) in racks
                    )
                else:
                    hits.update(hosting.keys() & dirty_set)
        for other in cs.conflicts_of(app_id):
            hosting = state.app_machines.get(other)
            if hosting:
                hits.update(hosting.keys() & dirty_set)
        mask[dirty] = False
        if hits:
            mask[list(hits)] = True

    def _admissible_ids(
        self, state: ClusterState, app_id: int, demand: np.ndarray
    ) -> np.ndarray:
        """Ascending ids of machines admitting ``(app, demand shape)``.

        Equation 6 ∧ ¬(Equation 7–8), memoised per state version —
        read-only; callers filter with boolean keeps, never in place.
        """
        key = (app_id, demand.tobytes())
        hit = self._admissible.get(key)
        if (
            hit is not None
            and hit[0] == state.state_uid
            and hit[1] == state.version
        ):
            return hit[2]
        fit = self.dominance.dominance_mask(state, demand)
        ids = np.flatnonzero(fit & ~self._forbidden_mask(state, app_id))
        self._admissible[key] = (state.state_uid, state.version, ids)
        return ids

    # ------------------------------------------------------------------
    def rescue_plan(self, planner, container, demand, allow_preemption, exhaustive):
        """Mirror of ``RescuePlanner._rescue`` on the cached substrate."""
        from repro.core.migration import RescueOutcome

        self.invocations += 1
        state = planner.state
        config = planner.config
        wkey = (
            tuple(sorted(planner.weights.items()))
            if planner.weights
            else None
        )
        key = (
            container.app_id,
            demand.tobytes(),
            allow_preemption,
            exhaustive,
            wkey,
        )
        hit = self._failures.get(key)
        if (
            hit is not None
            and hit[0] == state.state_uid
            and hit[1] == state.version
        ):
            out = RescueOutcome()
            out.failure = hit[2]
            out.scanned = hit[3]
            out.explored = hit[4]
            return out
        version_in = state.version
        out = RescueOutcome()
        # The shared dominance entry replaces the legacy full-cluster
        # scan; ``explored`` is charged the honest incremental cost
        # (the verdicts actually recomputed), like the search path's
        # cached feasibility queries.
        fit = self.dominance.dominance_mask(state, demand)
        out.explored += self.dominance.last_recomputed
        forbidden = self._forbidden_mask(state, container.app_id)

        if config.enable_migration:
            machine = self._migrate_blockers(
                planner, container, fit & forbidden, out, exhaustive
            )
            if machine is None:
                machine = self._consolidate(
                    planner, container, demand, ~fit & ~forbidden, out, exhaustive
                )
            if machine is not None:
                out.machine_id = machine
                return out
        if allow_preemption and config.enable_preemption:
            machine = self._preempt(planner, container, demand, out)
            if machine is not None:
                out.machine_id = machine
                return out

        blocked_only_by_affinity = bool((fit & forbidden).any()) and not bool(
            (fit & ~forbidden).any()
        )
        out.failure = (
            FailureReason.ANTI_AFFINITY
            if blocked_only_by_affinity
            else FailureReason.RESOURCES
        )
        if state.version == version_in:
            self._failures[key] = (
                state.state_uid,
                version_in,
                out.failure,
                out.scanned,
                out.explored,
            )
        return out

    # ------------------------------------------------------------------
    def _blocker_mask(self, state, app_id: int, row: _Residents) -> np.ndarray:
        """Boolean mask over ``row``'s residents violating ``app_id``.

        Vectorizes ``constraints.violates(app_id, c.app_id)`` over the
        resident app array: cross-application conflicts via ``isin``,
        the within-rule via an equality test.
        """
        cs = state.constraints
        conflicts = np.fromiter(cs.conflicts_of(app_id), np.int64)
        mask = np.isin(row.app_ids, conflicts)
        if cs.has_within(app_id):
            mask |= row.app_ids == app_id
        return mask

    # ------------------------------------------------------------------
    def _migrate_blockers(
        self, planner, container, candidates, out, exhaustive
    ) -> int | None:
        from repro.core.migration import _rack_blocked

        state = planner.state
        config = planner.config
        ids = np.flatnonzero(candidates)
        if ids.size == 0:
            return None
        order = ids[np.argsort(state.container_count[ids], kind="stable")]
        if not exhaustive:
            order = order[: max(1, config.migration_candidates)]
        app_id = container.app_id
        for machine_id in order.tolist():
            out.explored += 1
            out.scanned += 1
            row = self.ledger.row(state, machine_id)
            bmask = self._blocker_mask(state, app_id, row)
            n_blockers = int(np.count_nonzero(bmask))
            if n_blockers == 0:
                continue
            if not exhaustive and (
                n_blockers > config.max_migrations_per_container
            ):
                continue
            if _rack_blocked(state, app_id, machine_id):
                continue
            bidx = np.flatnonzero(bmask)
            moves = self._planned_relocations(
                planner,
                ("b", machine_id, app_id),
                lambda: (
                    [row.containers[i] for i in bidx.tolist()],
                    row.demands[bidx],
                ),
                machine_id,
                out,
            )
            if moves is None:
                continue
            for blocker, target in moves:
                state.migrate(blocker.container_id, target)
                out.migrations += 1
            return machine_id
        return None

    # ------------------------------------------------------------------
    def _consolidate(
        self, planner, container, demand, candidates, out, exhaustive
    ) -> int | None:
        state = planner.state
        config = planner.config
        # Roomiest machines first: the maintained packed-first order,
        # restricted to the candidate mask and reversed.
        order = planner.machine_index.candidates(state, candidates)[::-1]
        if not exhaustive:
            order = order[: max(1, config.migration_candidates)]
        mover_limit = (
            state.n_machines
            if exhaustive
            else config.max_migrations_per_container
        )
        # One vectorized shortfall matrix for the whole walk instead of
        # a small allocation per machine; plain-int count and deficient
        # lists keep the per-machine iteration free of numpy scalar
        # boxing (the walk visits every candidate, most of them dead
        # ends).
        shortfalls = demand - state.available[order]
        counts = state.container_count[order].tolist()
        n_res = shortfalls.shape[1]
        deficient = (shortfalls > 0.0).tolist()
        shortfall_rows = shortfalls.tolist()
        for pos, machine_id in enumerate(order.tolist()):
            out.explored += 1
            out.scanned += 1
            k = counts[pos]
            if k == 0:
                continue
            row = self.ledger.row(state, machine_id)
            # Minimal mover prefix of the (priority, cpu) order whose
            # cumulative freed demand covers the shortfall on every
            # deficient dimension: one searchsorted per such dimension
            # (the cumsums are nondecreasing — demands are positive).
            cum = row.sorted_cum
            deficient_pos = deficient[pos]
            shortfall = shortfall_rows[pos]
            movers_needed = 1
            feasible = True
            for d in range(n_res):
                if not deficient_pos[d]:
                    continue
                idx = int(
                    cum[:, d].searchsorted(shortfall[d], side="left")
                )
                if idx >= k:
                    feasible = False
                    break
                movers_needed = max(movers_needed, idx + 1)
            if not feasible or movers_needed > mover_limit:
                continue

            def movers_fn(row=row, n=movers_needed):
                mover_idx = row.by_prio_cpu[:n]
                return (
                    [row.containers[i] for i in mover_idx.tolist()],
                    row.demands[mover_idx],
                )

            moves = self._planned_relocations(
                planner,
                ("c", machine_id, movers_needed),
                movers_fn,
                machine_id,
                out,
            )
            if moves is None:
                continue
            for mover, target in moves:
                state.migrate(mover.container_id, target)
                out.migrations += 1
            return machine_id
        return None

    # ------------------------------------------------------------------
    def _preempt(self, planner, container, demand, out) -> int | None:
        from repro.core.migration import _rack_blocked

        state = planner.state
        config = planner.config
        order = planner.machine_index.candidates(state, None)
        bound = max(1, config.migration_candidates) * 4
        app_id = container.app_id
        scanned = 0
        for machine_id in order.tolist():
            if scanned >= bound:
                break
            scanned += 1
            out.explored += 1
            out.scanned += 1
            row = self.ledger.row(state, machine_id)
            bmask = self._blocker_mask(state, app_id, row)
            bidx = np.flatnonzero(bmask)
            if bidx.size and int(
                row.priorities[bidx].max()
            ) >= container.priority:
                continue  # cannot displace an equal-or-higher blocker
            if _rack_blocked(state, app_id, machine_id):
                continue
            victim_rows = bidx.tolist()
            victims = [row.containers[i] for i in victim_rows]
            avail_m = state.available[machine_id]
            if bidx.size:
                blocker_cum = np.cumsum(row.demands[bidx], axis=0)
                freed = blocker_cum[-1]
            else:
                freed = np.zeros_like(demand)
            if not ((avail_m + freed) >= demand).all():
                # Extend with strictly lower-priority residents in
                # (priority, cpu) order until the machine fits, the
                # same left-to-right accumulation as the legacy loop.
                lower = [
                    i
                    for i in row.by_prio_cpu.tolist()
                    if row.priorities[i] < container.priority
                    and not bmask[i]
                ]
                if lower:
                    seq = np.concatenate(
                        [row.demands[bidx], row.demands[lower]], axis=0
                    )
                    cum = np.cumsum(seq, axis=0)
                    fits_after = (
                        (avail_m + cum[bidx.size :]) >= demand
                    ).all(axis=1)
                    hit = np.flatnonzero(fits_after)
                    take = int(hit[0]) + 1 if hit.size else len(lower)
                    victim_rows += lower[:take]
                    victims += [row.containers[i] for i in lower[:take]]
                    freed = cum[bidx.size + take - 1]
            if not ((avail_m + freed) >= demand).all():
                continue
            # Equation 9 guard, accumulated in victim order like the
            # legacy planner (victims are few; the guard is not the
            # bottleneck and the float order must match bit for bit).
            if planner.weights and sum(
                planner._weighted_flow(v) for v in victims
            ) >= planner._weighted_flow(container):
                continue
            victim_demands = row.demands[np.asarray(victim_rows, dtype=np.int64)]
            moves = self._plan_relocations(
                planner, victims, machine_id, out, demands=victim_demands
            )
            if moves is not None:
                for victim, target in moves:
                    state.migrate(victim.container_id, target)
                    out.migrations += 1
                return machine_id
            for i, victim in enumerate(victims):
                target = self._relocation_target(
                    planner, victim, machine_id, out,
                    demand=victim_demands[i],
                )
                if target is not None:
                    state.migrate(victim.container_id, target)
                    out.migrations += 1
                else:
                    state.evict(victim.container_id)
                    out.preempted.append(victim)
            return machine_id
        return None

    # ------------------------------------------------------------------
    def _planned_relocations(
        self, planner, key, movers_fn, exclude: int, out
    ) -> list[tuple[Container, int]] | None:
        """Version-keyed front of :meth:`_plan_relocations`.

        ``key`` names the strategy-determined mover set (see
        :attr:`_plans`); ``movers_fn`` lazily materialises the movers
        and their demand rows only on a miss.  Hits skip the per-mover
        ``explored`` charges — costs may differ from the legacy loop,
        decisions never do.
        """
        state = planner.state
        hit = self._plans.get(key)
        if (
            hit is not None
            and hit[0] == state.state_uid
            and hit[1] == state.version
        ):
            return hit[2]
        movers, demands = movers_fn()
        moves = self._plan_relocations(
            planner, movers, exclude, out, demands=demands
        )
        self._plans[key] = (state.state_uid, state.version, moves)
        return moves

    def _plan_relocations(
        self, planner, movers, exclude: int, out, demands=None
    ) -> list[tuple[Container, int]] | None:
        """Sparse-reservation twin of the legacy relocation planner.

        The legacy loop recomputes a full admit mask and copies the
        whole ``available`` matrix per mover to apply reservations;
        here each mover starts from the memoised admissible-id list of
        its ``(app, shape)`` pair and only the handful of excluded or
        reserved machines are filtered out — reservations can only
        *shrink* feasibility, so narrowing the cached verdicts is
        exact.  ``demands`` optionally supplies the movers' demand rows
        (the ledger already stacked them) to skip per-mover
        ``demand_vector`` rebuilds.
        """
        state = planner.state
        resources = state.topology.resources
        reserved: dict[int, np.ndarray] = {}
        plan: list[tuple[Container, int]] = []
        for i, mover in enumerate(movers):
            demand = (
                demands[i] if demands is not None
                else mover.demand_vector(resources)
            )
            ids = self._admissible_ids(state, mover.app_id, demand)
            out.explored += 1
            drop = [exclude]
            for mover_prev, target_prev in plan:
                if state.constraints.violates(mover.app_id, mover_prev.app_id):
                    drop.append(target_prev)
            for machine_id, used in reserved.items():
                if not ((state.available[machine_id] - used) >= demand).all():
                    drop.append(machine_id)
            if ids.size and drop:
                keep = np.ones(ids.size, dtype=bool)
                for machine_id in drop:
                    pos = int(ids.searchsorted(machine_id))
                    if pos < ids.size and ids[pos] == machine_id:
                        keep[pos] = False
                ids = ids[keep]
            if ids.size == 0:
                return None
            cpu = state.available[ids, 0]
            if reserved:
                cpu = cpu.copy()
                for machine_id, used in reserved.items():
                    pos = int(ids.searchsorted(machine_id))
                    if pos < ids.size and ids[pos] == machine_id:
                        cpu[pos] -= used[0]
            target = int(ids[np.argmin(cpu)])
            plan.append((mover, target))
            reserved[target] = (
                reserved.get(target, np.zeros_like(demand)) + demand
            )
        return plan

    def _relocation_target(
        self, planner, mover: Container, exclude: int, out, demand=None
    ) -> int | None:
        """Cached-dominance twin of ``RescuePlanner._relocation_target``."""
        state = planner.state
        if demand is None:
            demand = mover.demand_vector(state.topology.resources)
        ids = self._admissible_ids(state, mover.app_id, demand)
        out.explored += 1
        pos = int(ids.searchsorted(exclude))
        if pos < ids.size and ids[pos] == exclude:
            ids = np.delete(ids, pos)
        if ids.size == 0:
            return None
        return int(ids[np.argmin(state.available[ids, 0])])
