"""Incrementally maintained packed-first machine index.

Both engines prefer machines in one total order — affinity tier first,
then packing level (least remaining CPU), then machine id — and until
now re-derived that order from scratch with an ``argsort`` over every
candidate machine for every application block.  Between two blocks,
however, only the machines touched by the intervening deploys, evicts,
migrations and faults can move inside the order, and the
:class:`~repro.cluster.state.ClusterState` dirty log already records
exactly which ones those are.

:class:`MachineIndex` keeps the packing order alive across blocks and
scheduling rounds, synchronised the same way the cross-round
:class:`~repro.core.feascache.FeasibilityCache` synchronises verdicts:
on each query the machines dirtied since the last sync are removed from
the sorted order and merge-inserted at their new positions — two O(m)
array copies plus an O(d log d) sort of the d dirty machines, instead
of a full O(m log m) re-sort.  A compacted log or an unfamiliar state
instance degrades to a full rebuild, never to a stale order.

The affinity tier is application-specific, so it is applied per query
as a stable partition of the maintained order (affine hosts first).
The partition equals ``argsort`` of the tier-augmented score whenever
the tier constant dominates every packing key — always true for the
paper's homogeneous 32-CPU machines — and the index verifies that
dominance on each query, falling back to an exact re-scoring of the
candidate set in the heterogeneous corner where it fails.  Either way
the returned order is bit-identical to the scratch-built one, which is
what lets the batch kernel promise placement-identical results.

Contract (inputs, shard invariants, determinism)
------------------------------------------------
:meth:`MachineIndex.candidates` takes a state (anything exposing
``available``, ``n_machines``, ``state_uid``, ``version`` and the
dirty-log accessors — a full :class:`~repro.cluster.state.ClusterState`
or a per-shard :class:`~repro.cluster.state.ShardView`), an optional
boolean admit mask and an optional boolean affinity mask, both indexed
by machine id in that state's id space.

Under the rack-sharded parallel sweep (:mod:`repro.core.parallel`) one
index instance lives in each worker process over its shard's
``ShardView``; because the packed-first key of a machine depends only
on its own ``available`` row and its id, per-shard orders concatenated
in shard order relate to the global order by a single stable merge on
the (tier-augmented) key — the coordinator's ``merge_candidates``
exploits exactly this.  Shard-local ids translate to global ids by
adding the shard's offset, which preserves the id tie-break since
shards are contiguous, ascending id ranges.

Determinism guarantee: given the same state contents, mask and
affinity, ``candidates`` returns the same array, bit for bit,
regardless of the resync history (incremental reinsertions vs a fresh
rebuild) — the property the differential harness replays for, and the
reason the parallel sweep can promise byte-identical placements.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.cluster.state import ClusterState


def packing_keys(state: ClusterState, ids: np.ndarray) -> np.ndarray:
    """Packed-first score of ``ids``: remaining CPU, machine id tie-break.

    This is the affinity-free term of the schedulers' total order; the
    ``(n_machines + 1)`` spread keeps the id tie-break strictly weaker
    than any remaining-CPU difference of at least one unit.
    """
    return state.available[ids, 0] * (state.n_machines + 1) + ids.astype(
        np.float64
    )


def affinity_tier(n_machines: int) -> float:
    """Score penalty demoting non-affine machines behind every affine one."""
    return 32.0 * (n_machines + 1) + n_machines + 1


class MachineIndex:
    """Persistent packed-first machine ordering with dirty-log resync.

    One instance lives on each scheduler (next to its
    ``FeasibilityCache``) and survives across ``schedule()`` calls,
    rebinding automatically when handed a different
    :class:`ClusterState`.

    Attributes
    ----------
    rebuilds / resyncs:
        Lifetime counts of full O(m log m) re-sorts and incremental
        dirty-machine reinsertions.  Resyncs are also reported to the
        active telemetry collector.
    last_resynced:
        Machines re-keyed by the most recent :meth:`sync`.
    """

    def __init__(self) -> None:
        self._state_uid: int | None = None
        self._version: int = -1
        #: machine ids sorted by (packing key, id); None until first sync
        self._order: np.ndarray | None = None
        #: per-machine packing key, indexed by machine id
        self._keys: np.ndarray | None = None
        self.rebuilds = 0
        self.resyncs = 0
        self.last_resynced = 0

    def reset(self) -> None:
        """Drop the maintained order (next query rebuilds from scratch)."""
        self._state_uid = None
        self._version = -1
        self._order = None
        self._keys = None

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of the maintained order and counters.

        The order itself must be persisted (not just rebuilt on
        restore): a cold ``_rebuild`` reports no ``index_resyncs``
        telemetry while the incremental ``_reinsert`` path does, so a
        restored run that rebuilt cold would drift from the
        uninterrupted run's telemetry — and a warm resync is the point
        of checkpointing in the first place.
        """
        return {
            "order": None if self._order is None else self._order.copy(),
            "keys": None if self._keys is None else self._keys.copy(),
            "version": self._version,
            "rebuilds": self.rebuilds,
            "resyncs": self.resyncs,
            "last_resynced": self.last_resynced,
        }

    def restore(self, payload: dict, state_uid: int) -> None:
        """Adopt a :meth:`checkpoint` image, rebinding to ``state_uid``.

        The persisted ``version`` stays valid against the restored
        state's dirty log (persisted with identical numbering), so the
        next :meth:`sync` reinserts only the machines dirtied since the
        checkpoint.
        """
        order = payload["order"]
        keys = payload["keys"]
        self._order = None if order is None else np.array(order)
        self._keys = None if keys is None else np.array(keys)
        self._version = payload["version"]
        self._state_uid = state_uid if self._order is not None else None
        self.rebuilds = payload["rebuilds"]
        self.resyncs = payload["resyncs"]
        self.last_resynced = payload["last_resynced"]

    # ------------------------------------------------------------------
    def sync(self, state: ClusterState) -> None:
        """Bring the order up to date with ``state``'s current version."""
        if state.state_uid != self._state_uid or self._order is None:
            self._rebuild(state)
            return
        if state.version == self._version:
            self.last_resynced = 0
            return
        dirty = state.dirty_array_since(self._version)
        if dirty is None:
            # The log no longer reaches back to our version: rebuild.
            self._rebuild(state)
            return
        if dirty.size:
            self._reinsert(state, dirty)
        else:
            self.last_resynced = 0
        self._version = state.version

    def _rebuild(self, state: ClusterState) -> None:
        ids = np.arange(state.n_machines, dtype=np.int64)
        self._keys = packing_keys(state, ids)
        self._order = np.argsort(self._keys, kind="stable")
        self._state_uid = state.state_uid
        self._version = state.version
        self.rebuilds += 1
        self.last_resynced = state.n_machines

    def _reinsert(self, state: ClusterState, dirty: np.ndarray) -> None:
        """Move the dirty machines to their new sorted positions."""
        dirty_mask = np.zeros(state.n_machines, dtype=bool)
        dirty_mask[dirty] = True
        kept = self._order[~dirty_mask[self._order]]
        kept_keys = self._keys[kept]
        new_keys = packing_keys(state, dirty)
        # ``dirty`` is ascending, so a stable key sort orders equal-key
        # insertions by machine id — the canonical tie-break.
        by_key = np.argsort(new_keys, kind="stable")
        ins_ids = dirty[by_key]
        ins_keys = new_keys[by_key]
        pos = np.searchsorted(kept_keys, ins_keys, side="left")
        # Exact key collisions between an inserted and a kept machine
        # (possible with fractional CPU demands) break ties by id too.
        right = np.searchsorted(kept_keys, ins_keys, side="right")
        for i in np.flatnonzero(right > pos):
            p, stop = int(pos[i]), int(right[i])
            while p < stop and kept[p] < ins_ids[i]:
                p += 1
            pos[i] = p
        self._order = np.insert(kept, pos, ins_ids)
        self._keys[dirty] = new_keys
        self.resyncs += 1
        self.last_resynced = int(dirty.size)
        tele = telemetry.current()
        if tele is not None:
            tele.index_resyncs += 1

    # ------------------------------------------------------------------
    def candidates(
        self,
        state: ClusterState,
        mask: np.ndarray | None = None,
        affinity: np.ndarray | None = None,
    ) -> np.ndarray:
        """Machine ids in the engines' total preference order.

        ``mask`` (boolean, e.g. an IL admit mask) restricts the result;
        ``affinity`` promotes machines hosting an affine application to
        the front.  Bit-identical to sorting ``flatnonzero(mask)`` by
        ``scheduler._scores`` — the contract the differential harness
        enforces through the batch kernel.

        With ``mask is None`` and no ``affinity`` the *internal* order
        array is returned directly to keep the rescue kernel's
        per-attempt cost flat — callers on that path (and any caller
        that may hold the result across a ``sync``) must treat it as
        read-only.
        """
        self.sync(state)
        order = self._order
        if mask is not None:
            order = order[mask[order]]
        if affinity is None or order.size == 0:
            return order
        aff = affinity[order]
        affine = order[aff]
        rest = order[~aff]
        if affine.size == 0 or rest.size == 0:
            return order
        tier = affinity_tier(state.n_machines)
        if float(self._keys[affine].max()) >= float(self._keys[rest].min()) + tier:
            # The tier constant does not dominate the packing keys (a
            # machine offers more than the homogeneous 32 CPUs): redo
            # the exact tier-augmented scoring over the candidate set.
            ids = np.sort(order)
            score = self._keys[ids] + np.where(affinity[ids], 0.0, tier)
            return ids[np.argsort(score, kind="stable")]
        return np.concatenate([affine, rest])
