"""Priority weights (the paper's Equations 3–5).

Aladdin distinguishes priorities by *weighting* the flow a container
pushes: the weighted flow ``w_k · f(i,j)`` of any higher-priority
container must exceed the weighted flow of any lower-priority one, which
is what makes the maximum-flow objective (Equation 9) prefer — and never
preempt — high-priority containers.

Equation 3 partitions containers into priority classes ``x(i)``;
Equation 4 fixes ``w_1 = 1`` for the lowest class; Equation 5 requires

    w_{i+1} · min_demand(x(i+1))  >  w_i · max_demand(x(i))

so each class's weakest member outweighs the previous class's strongest.
The evaluation additionally sweeps a floor on the ratio — "we set the
priority w_n to 16, 32, 64, 128 according to Equation 4 (the maximum
resource requirement for one application is 16 CPUs)" — which we expose
as ``base``: each derived ratio is at least ``base``.
"""

from __future__ import annotations

import math

from repro.cluster.container import Application


def classify_by_priority(
    apps: list[Application],
) -> dict[int, list[Application]]:
    """Equation 3: partition applications into priority classes."""
    classes: dict[int, list[Application]] = {}
    for app in apps:
        classes.setdefault(app.priority, []).append(app)
    return classes


def derive_priority_weights(
    apps: list[Application],
    base: float = 16.0,
    dim: str = "cpu",
) -> dict[int, float]:
    """Derive one weight per priority class present in ``apps``.

    Parameters
    ----------
    apps:
        The workload; demands along ``dim`` bound the required ratios.
    base:
        Floor on the class-to-class weight ratio (the paper's 16/32/64/128
        sweep).  Any value satisfying Equation 5 avoids priority
        inversions; larger values only change the absolute objective.
    dim:
        Resource dimension whose demand range drives Equation 5.

    Returns
    -------
    Mapping priority class → weight, with the lowest class at 1.0.
    """
    if base < 1.0:
        raise ValueError(f"base must be >= 1, got {base}")
    classes = classify_by_priority(apps)
    if not classes:
        return {}
    levels = sorted(classes)
    weights: dict[int, float] = {levels[0]: 1.0}
    for prev, cur in zip(levels, levels[1:]):
        prev_max = max(getattr(a, dim) for a in classes[prev])
        cur_min = min(getattr(a, dim) for a in classes[cur])
        # Equation 5 with a strict-inequality nudge, floored at ``base``.
        ratio = max(base, math.ceil(prev_max / cur_min) + 1)
        weights[cur] = weights[prev] * ratio
    return weights


def weighted_flow_value(
    weights: dict[int, float], priority: int, flow: float
) -> float:
    """The weighted flow ``w_k · f`` contributed by one placement."""
    try:
        w = weights[priority]
    except KeyError:
        raise KeyError(
            f"priority class {priority} has no derived weight; known "
            f"classes: {sorted(weights)}"
        ) from None
    return w * flow


def verify_no_inversion(
    weights: dict[int, float],
    apps: list[Application],
    dim: str = "cpu",
) -> bool:
    """Check the Equation-5 guarantee on a concrete workload.

    True when, for every adjacent pair of classes, the smallest weighted
    flow in the higher class strictly exceeds the largest weighted flow
    in the lower class — i.e. no low-priority container can ever win a
    capacity contest against a high-priority one.
    """
    classes = classify_by_priority(apps)
    levels = sorted(classes)
    for prev, cur in zip(levels, levels[1:]):
        prev_max = max(getattr(a, dim) for a in classes[prev]) * weights[prev]
        cur_min = min(getattr(a, dim) for a in classes[cur]) * weights[cur]
        if cur_min <= prev_max:
            return False
    return True
